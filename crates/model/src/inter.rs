//! Inter-cluster mean message latency — §3.2 of the paper (Eqs. (20)–(39)).
//!
//! An inter-cluster message from cluster `i` to cluster `j` crosses three
//! networks back-to-back under wormhole flow control: `r` links up the
//! source ECN1(i), the concentrator, `2l` links through the global ICN2,
//! the dispatcher, and `v` links down the destination ECN1(j). The paper
//! treats the wormhole pipeline across the three networks as one merged
//! journey (Eq. (20)), weighting each `(r, v) + l` combination by the
//! product of the per-network hop distributions (Eq. (21)).

use crate::condis::concentrator_wait;
use crate::error::{ModelError, SaturationSite};
use crate::mg1::{mg1_wait, Mg1Wait};
use crate::model::{ModelOptions, VarianceApprox};
use crate::prob::{hop_distribution, mean_distance};
use crate::stages::{journey_latency, Stage};
use crate::workload::Workload;
use cocnet_topology::SystemSpec;
use serde::{Deserialize, Serialize};

/// Component breakdown of the inter-cluster latency `L_out` (Eq. (39)),
/// averaged over all destination clusters `j ≠ i` (Eqs. (35), (38)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterBreakdown {
    /// Average `W_ex`: M/G/1 wait at the inter-cluster source queue (Eq. (31)).
    pub source_wait: f64,
    /// Average `T_ex`: merged network latency across ECN1(i)/ICN2/ECN1(j)
    /// (Eq. (20)).
    pub network: f64,
    /// Average `E_ex`: tail-flit drain time (Eq. (33)).
    pub tail: f64,
    /// `W_d`: mean concentrator + dispatcher wait (Eq. (38)).
    pub condis_wait: f64,
}

impl InterBreakdown {
    /// `L_out = L_ex + W_d` with `L_ex = W_ex + T_ex + E_ex` (Eqs. (32), (39)).
    pub fn total(&self) -> f64 {
        self.source_wait + self.network + self.tail + self.condis_wait
    }
}

/// Latency components of one `(i, j)` cluster pair before averaging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairLatency {
    /// `W_ex^{(i,j)}` (Eq. (31)).
    pub source_wait: f64,
    /// `T_ex^{(i,j)}` (Eq. (20)).
    pub network: f64,
    /// `E_ex^{(i,j)}` (Eq. (33)).
    pub tail: f64,
    /// `2·W_c^{(i,j)}`: concentrate + dispatch buffer waits (Eqs. (37)–(38)).
    pub condis_wait: f64,
}

/// Evaluates the `(i, j)` pair terms of §3.2 under uniform destinations.
pub fn pair_latency(
    spec: &SystemSpec,
    wl: &Workload,
    i: usize,
    j: usize,
    opts: &ModelOptions,
) -> Result<PairLatency, ModelError> {
    pair_latency_with_u(
        spec,
        wl,
        i,
        j,
        opts,
        spec.outgoing_probability(i),
        spec.outgoing_probability(j),
    )
}

/// Evaluates the `(i, j)` pair terms with explicit outgoing probabilities.
#[allow(clippy::too_many_arguments)]
pub fn pair_latency_with_u(
    spec: &SystemSpec,
    wl: &Workload,
    i: usize,
    j: usize,
    opts: &ModelOptions,
    u_i: f64,
    u_j: f64,
) -> Result<PairLatency, ModelError> {
    assert_ne!(i, j, "pair latency needs distinct clusters");
    let m = spec.m;
    let (n_i, n_j) = (spec.clusters[i].n, spec.clusters[j].n);
    let n_c = spec.icn2_height()?;
    let (big_n_i, big_n_j) = (spec.cluster_nodes(i) as f64, spec.cluster_nodes(j) as f64);
    let m_flits = wl.msg_flits as f64;

    let e1_i = &spec.clusters[i].ecn1;
    let e1_j = &spec.clusters[j].ecn1;
    let i2 = &spec.icn2;
    let t_cs_e1i = e1_i.t_cs(wl.flit_bytes);
    let t_cs_e1j = e1_j.t_cs(wl.flit_bytes);
    let t_cs_i2 = i2.t_cs(wl.flit_bytes);
    let t_cn_e1i = e1_i.t_cn(wl.flit_bytes);
    let t_cn_e1j = e1_j.t_cn(wl.flit_bytes);

    // Eq. (22): traffic carried by the pair's ECN1 networks (outgoing from
    // i plus incoming to i, approximated from the (i, j) viewpoint).
    let lambda_e1 = wl.lambda_g * (big_n_i * u_i + big_n_j * u_j);
    // Eq. (23) (reconstructed; see DESIGN.md): per-cluster average share of
    // the ICN2 traffic from the pair's viewpoint.
    let lambda_i2 = 0.5 * lambda_e1;

    // Eqs. (24)–(25): per-channel rates.
    let eta_e1 = lambda_e1 * mean_distance(m, n_i) / (4.0 * n_i as f64 * big_n_i);
    let eta_i2 = lambda_i2 * mean_distance(m, n_c) / (4.0 * n_c as f64);
    // Eqs. (27)–(28): relaxing factor discounts ICN2-stage waits by the
    // ICN2/ECN1 bandwidth ratio.
    let delta = if opts.relaxing_factor {
        spec.relaxing_factor(i)
    } else {
        1.0
    };
    let eta_i2_relaxed = eta_i2 * delta;

    let p_r = hop_distribution(m, n_i);
    let p_v = hop_distribution(m, n_j);
    let p_l = hop_distribution(m, n_c);

    let mut t_ex = 0.0;
    let mut e_ex = 0.0;
    let mut stages: Vec<Stage> = Vec::with_capacity((n_i + 2 * n_c + n_j) as usize);
    for r in 1..=n_i {
        for v in 1..=n_j {
            for l in 1..=n_c {
                let p = p_r[(r - 1) as usize] * p_v[(v - 1) as usize] * p_l[(l - 1) as usize];
                if p == 0.0 {
                    continue;
                }
                // K = r + 2l + v − 1 stages; Eq. (30) assigns each stage its
                // network's switch-to-switch time, and Eq. (29) makes the
                // final ejection stage charge t_cn of ECN1(j).
                let k = (r + 2 * l + v - 1) as usize;
                stages.clear();
                for s in 0..k {
                    let (transfer, eta) = if s == k - 1 {
                        (m_flits * t_cn_e1j, eta_e1)
                    } else if (s as u32) < r {
                        (m_flits * t_cs_e1i, eta_e1)
                    } else if (s as u32) < r + 2 * l - 1 {
                        (m_flits * t_cs_i2, eta_i2_relaxed)
                    } else {
                        (m_flits * t_cs_e1j, eta_e1)
                    };
                    stages.push(Stage { transfer, eta });
                }
                t_ex += p * journey_latency(&stages).t0;
                // Eq. (34): tail drain across the merged path.
                e_ex += p
                    * ((r as f64 - 1.0) * t_cs_e1i
                        + (v as f64 - 1.0) * t_cs_e1j
                        + 2.0 * l as f64 * t_cs_i2
                        + t_cn_e1j);
            }
        }
    }

    // Eq. (31): M/G/1 source queue for outgoing messages; per-node arrival
    // rate λ_g·U_i (DESIGN.md choice 3), variance via Eq. (17)'s scheme with
    // minimum service M·t_cn^{ECN1(i)}.
    let sigma2 = match opts.variance {
        VarianceApprox::DraperGhosh => {
            let d = t_ex - m_flits * t_cn_e1i;
            d * d
        }
        VarianceApprox::Zero => 0.0,
    };
    let w_ex = match mg1_wait(wl.lambda_g * u_i, t_ex, sigma2) {
        Mg1Wait::Stable(w) => w,
        Mg1Wait::Saturated(rho) => {
            return Err(ModelError::Saturated {
                site: SaturationSite::InterSourceQueue(i),
                rho,
            })
        }
    };

    // Eqs. (36)–(38): concentrate + dispatch buffers (same rate, same law).
    let w_c = match concentrator_wait(lambda_i2, m_flits, t_cs_i2, t_cs_e1i, opts.variance) {
        Mg1Wait::Stable(w) => w,
        Mg1Wait::Saturated(rho) => {
            return Err(ModelError::Saturated {
                site: SaturationSite::Concentrator(i, j),
                rho,
            })
        }
    };

    Ok(PairLatency {
        source_wait: w_ex,
        network: t_ex,
        tail: e_ex,
        condis_wait: 2.0 * w_c,
    })
}

/// Evaluates the inter-cluster latency of cluster `i`, averaging the pair
/// terms over every destination cluster `j ≠ i` (Eqs. (35) and (38)).
///
/// Clusters with identical specifications are grouped so each distinct pair
/// shape is evaluated once (the paper's organizations have at most three
/// distinct cluster classes).
pub fn inter_latency(
    spec: &SystemSpec,
    wl: &Workload,
    i: usize,
    opts: &ModelOptions,
) -> Result<InterBreakdown, ModelError> {
    let us: Vec<f64> = (0..spec.num_clusters())
        .map(|j| spec.outgoing_probability(j))
        .collect();
    inter_latency_with_us(spec, wl, i, opts, &us)
}

/// [`inter_latency`] with explicit per-cluster outgoing probabilities.
pub fn inter_latency_with_us(
    spec: &SystemSpec,
    wl: &Workload,
    i: usize,
    opts: &ModelOptions,
    us: &[f64],
) -> Result<InterBreakdown, ModelError> {
    // Group destination clusters by identical (ClusterSpec, U_j).
    let mut classes: Vec<(usize, f64)> = Vec::new(); // (example index, weight)
    for j in 0..spec.num_clusters() {
        if j == i {
            continue;
        }
        if let Some(entry) = classes
            .iter_mut()
            .find(|(jx, _)| spec.clusters[*jx] == spec.clusters[j] && us[*jx] == us[j])
        {
            entry.1 += 1.0;
        } else {
            classes.push((j, 1.0));
        }
    }
    let total_weight: f64 = classes.iter().map(|(_, w)| w).sum();
    debug_assert_eq!(total_weight as usize, spec.num_clusters() - 1);

    let mut out = InterBreakdown {
        source_wait: 0.0,
        network: 0.0,
        tail: 0.0,
        condis_wait: 0.0,
    };
    for &(j, weight) in &classes {
        let pair = pair_latency_with_u(spec, wl, i, j, opts, us[i], us[j])?;
        let w = weight / total_weight;
        out.source_wait += w * pair.source_wait;
        out.network += w * pair.network;
        out.tail += w * pair.tail;
        out.condis_wait += w * pair.condis_wait;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};

    fn spec(m: u32, heights: &[u32]) -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let clusters = heights
            .iter()
            .map(|&n| ClusterSpec {
                n,
                icn1: net1,
                ecn1: net2,
                topology: Default::default(),
            })
            .collect();
        SystemSpec::new(m, clusters, net1).unwrap()
    }

    fn wl(rate: f64) -> Workload {
        Workload::new(rate, 32, 256.0).unwrap()
    }

    #[test]
    fn zero_load_has_no_waits() {
        let s = spec(4, &[2, 2, 3, 3]);
        let out = inter_latency(&s, &wl(0.0), 0, &ModelOptions::default()).unwrap();
        assert_eq!(out.source_wait, 0.0);
        assert_eq!(out.condis_wait, 0.0);
        assert!(out.network > 0.0);
        assert!(out.tail > 0.0);
    }

    #[test]
    fn pair_vs_average_consistency_homogeneous() {
        // With identical clusters every pair is the same, so the average
        // must equal any single pair.
        let s = spec(4, &[2, 2, 2, 2]);
        let opts = ModelOptions::default();
        let avg = inter_latency(&s, &wl(1e-4), 0, &opts).unwrap();
        let pair = pair_latency(&s, &wl(1e-4), 0, 1, &opts).unwrap();
        assert!((avg.network - pair.network).abs() < 1e-12);
        assert!((avg.source_wait - pair.source_wait).abs() < 1e-12);
        assert!((avg.tail - pair.tail).abs() < 1e-12);
        assert!((avg.condis_wait - pair.condis_wait).abs() < 1e-12);
    }

    #[test]
    fn grouping_matches_explicit_average() {
        // Heterogeneous clusters: the grouped average must equal the naive
        // j-loop average.
        let s = spec(4, &[1, 1, 2, 3]);
        let opts = ModelOptions::default();
        let w = wl(5e-5);
        let grouped = inter_latency(&s, &w, 0, &opts).unwrap();
        let mut network = 0.0;
        for j in 1..4 {
            network += pair_latency(&s, &w, 0, j, &opts).unwrap().network;
        }
        network /= 3.0;
        assert!((grouped.network - network).abs() < 1e-12);
    }

    #[test]
    fn latency_monotone_in_load() {
        let s = spec(4, &[2, 2, 3, 3]);
        let opts = ModelOptions::default();
        let mut last = 0.0;
        for rate in [0.0, 5e-5, 1e-4, 2e-4] {
            let out = inter_latency(&s, &wl(rate), 0, &opts).unwrap();
            assert!(out.total() >= last);
            last = out.total();
        }
    }

    #[test]
    fn inter_longer_than_intra_at_zero_load() {
        // The merged three-network journey must beat the single-network one.
        let s = spec(4, &[2, 2, 2, 2]);
        let opts = ModelOptions::default();
        let inter = inter_latency(&s, &wl(0.0), 0, &opts).unwrap();
        let intra = crate::intra::intra_latency(&s, &wl(0.0), 0, &opts).unwrap();
        assert!(inter.total() > intra.total());
    }

    #[test]
    fn relaxing_factor_reduces_latency_under_load() {
        let s = spec(4, &[2, 2, 3, 3]);
        let with = inter_latency(&s, &wl(3e-4), 0, &ModelOptions::default()).unwrap();
        let without = inter_latency(
            &s,
            &wl(3e-4),
            0,
            &ModelOptions {
                relaxing_factor: false,
                ..ModelOptions::default()
            },
        )
        .unwrap();
        assert!(with.network <= without.network);
    }

    #[test]
    fn concentrator_saturates_under_heavy_load() {
        let s = spec(4, &[2, 2, 3, 3]);
        let err = inter_latency(&s, &wl(0.05), 0, &ModelOptions::default()).unwrap_err();
        assert!(matches!(err, ModelError::Saturated { .. }));
    }

    #[test]
    #[should_panic(expected = "distinct clusters")]
    fn pair_latency_rejects_same_cluster() {
        let s = spec(4, &[2, 2, 2, 2]);
        let _ = pair_latency(&s, &wl(0.0), 1, 1, &ModelOptions::default());
    }
}
