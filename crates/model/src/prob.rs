//! Hop-distance distribution and mean message distance in an m-port n-tree
//! under uniform traffic — Eqs. (5)–(9) of the paper.
//!
//! With destinations uniform over the other `N − 1` nodes, the probability
//! that a message's nearest common ancestor sits at level `h` follows from
//! counting the nodes first reachable at each level:
//!
//! * a level-`h` switch (`h < n`) subtends `(m/2)^h` nodes, so exactly
//!   `(m/2)^h − (m/2)^{h−1} = (m/2 − 1)(m/2)^{h−1}` destinations have their
//!   NCA at level `h`;
//! * the remaining `(m − 1)(m/2)^{n−1}` destinations require a root
//!   (`h = n`).
//!
//! Dividing by `N − 1` gives Eq. (6); the counts sum to `N − 1` exactly, so
//! the distribution is proper by construction. A message whose NCA is at
//! level `h` crosses `2h` links (`h` ascending, `h` descending), giving the
//! mean distance of Eq. (8).

/// The hop-distance distribution `P(h, n)` for `h ∈ 1..=n` in an m-port
/// n-tree (Eq. (6)). Entry `h−1` of the returned vector is `P(h, n)`.
///
/// # Panics
/// Panics if `m` is odd or `< 2`, or `n == 0` (callers construct trees
/// through [`cocnet_topology::MPortNTree`], which validates first).
pub fn hop_distribution(m: u32, n: u32) -> Vec<f64> {
    assert!(m >= 2 && m.is_multiple_of(2), "m must be even and >= 2");
    assert!(n >= 1, "n must be >= 1");
    let k = (m / 2) as f64;
    let nodes = 2.0 * k.powi(n as i32);
    let denom = nodes - 1.0;
    let mut p = Vec::with_capacity(n as usize);
    for h in 1..n {
        p.push((k - 1.0) * k.powi(h as i32 - 1) / denom);
    }
    p.push((m as f64 - 1.0) * k.powi(n as i32 - 1) / denom);
    p
}

/// `P(h, n)` for a single `h` (1-based). See [`hop_distribution`].
pub fn hop_probability(m: u32, n: u32, h: u32) -> f64 {
    assert!((1..=n).contains(&h), "h must be in 1..=n");
    let k = (m / 2) as f64;
    let nodes = 2.0 * k.powi(n as i32);
    let denom = nodes - 1.0;
    if h < n {
        (k - 1.0) * k.powi(h as i32 - 1) / denom
    } else {
        (m as f64 - 1.0) * k.powi(n as i32 - 1) / denom
    }
}

/// Mean link distance `D = 2·Σ_h h·P(h, n)` (Eq. (8)); the closed form the
/// paper gives as Eq. (9) is recovered by summing the geometric series.
pub fn mean_distance(m: u32, n: u32) -> f64 {
    hop_distribution(m, n)
        .iter()
        .enumerate()
        .map(|(i, p)| 2.0 * (i as f64 + 1.0) * p)
        .sum()
}

/// Closed-form mean distance, derived by evaluating the series of Eq. (8):
///
/// `D = 2·[ n(m−1)k^{n−1} + (k−1)·Σ_{h=1}^{n−1} h·k^{h−1} ] / (N−1)`
/// with `Σ_{h=1}^{n−1} h·k^{h−1} = ((n−1)k^n − n·k^{n−1} + 1)/(k−1)²`
/// for `k > 1` (and `n(n−1)/2` for `k = 1`).
///
/// Exercised against [`mean_distance`] in tests; both must agree to float
/// precision for all valid `(m, n)`.
pub fn mean_distance_closed_form(m: u32, n: u32) -> f64 {
    let k = (m / 2) as f64;
    let nf = n as f64;
    let nodes = 2.0 * k.powi(n as i32);
    let denom = nodes - 1.0;
    let geo = if (k - 1.0).abs() < f64::EPSILON {
        nf * (nf - 1.0) / 2.0
    } else {
        ((nf - 1.0) * k.powi(n as i32) - nf * k.powi(n as i32 - 1) + 1.0) / (k - 1.0).powi(2)
    };
    2.0 * (nf * (m as f64 - 1.0) * k.powi(n as i32 - 1) + (k - 1.0) * geo) / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::MPortNTree;

    const CASES: &[(u32, u32)] = &[
        (4, 1),
        (4, 2),
        (4, 3),
        (4, 4),
        (8, 1),
        (8, 2),
        (8, 3),
        (16, 2),
    ];

    #[test]
    fn distribution_sums_to_one() {
        for &(m, n) in CASES {
            let p = hop_distribution(m, n);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "m={m} n={n} sum={sum}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn matches_brute_force_topology_counts() {
        for &(m, n) in CASES {
            let tree = MPortNTree::new(m, n).unwrap();
            let hist = tree.nca_histogram();
            let total: u64 = hist.iter().sum();
            let p = hop_distribution(m, n);
            for h in 1..=n {
                let empirical = hist[(h - 1) as usize] as f64 / total as f64;
                assert!(
                    (p[(h - 1) as usize] - empirical).abs() < 1e-12,
                    "m={m} n={n} h={h}: analytic {} vs empirical {empirical}",
                    p[(h - 1) as usize]
                );
            }
        }
    }

    #[test]
    fn single_probability_agrees_with_vector() {
        for &(m, n) in CASES {
            let p = hop_distribution(m, n);
            for h in 1..=n {
                assert_eq!(hop_probability(m, n, h), p[(h - 1) as usize]);
            }
        }
    }

    #[test]
    fn mean_distance_matches_closed_form() {
        for &(m, n) in CASES {
            let series = mean_distance(m, n);
            let closed = mean_distance_closed_form(m, n);
            assert!(
                (series - closed).abs() < 1e-10,
                "m={m} n={n}: series {series} vs closed {closed}"
            );
        }
    }

    #[test]
    fn mean_distance_matches_brute_force() {
        for &(m, n) in CASES {
            let tree = MPortNTree::new(m, n).unwrap();
            let brute = tree.mean_distance_brute_force();
            let analytic = mean_distance(m, n);
            assert!(
                (brute - analytic).abs() < 1e-10,
                "m={m} n={n}: brute {brute} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn degenerate_k1_tree() {
        // m=2 -> k=1: two nodes, all traffic at the root, D = 2n.
        let p = hop_distribution(2, 3);
        assert_eq!(p, vec![0.0, 0.0, 1.0]);
        assert!((mean_distance(2, 3) - 6.0).abs() < 1e-12);
        assert!((mean_distance_closed_form(2, 3) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn bigger_trees_have_longer_paths() {
        assert!(mean_distance(8, 2) > mean_distance(8, 1));
        assert!(mean_distance(8, 3) > mean_distance(8, 2));
    }

    #[test]
    #[should_panic(expected = "h must be in 1..=n")]
    fn hop_probability_rejects_h_zero() {
        hop_probability(8, 2, 0);
    }
}
