//! Top-level model evaluation — Eqs. (1)–(3) of the paper.
//!
//! [`evaluate`] combines each cluster's intra- and inter-cluster latencies
//! (weighted by the outgoing probability `U_i` of Eq. (2)) and averages the
//! per-cluster means weighted by cluster size (Eq. (3)).

use crate::error::ModelError;
use crate::inter::{inter_latency_with_us, InterBreakdown};
use crate::intra::{intra_latency_with_u, IntraBreakdown};
use crate::profile::OutgoingProfile;
use crate::workload::Workload;
use cocnet_topology::{SystemSpec, TopologyError};
use serde::{Deserialize, Serialize};

/// Whether the analytical model's equations apply to a spec.
///
/// The paper's Eqs. (1)–(39) are derived for m-port n-tree networks; a
/// spec using any other topology backend (e.g. a torus cluster) can still
/// be simulated, but the model has nothing to say about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCoverage {
    /// Every network is an m-port n-tree: the model fully applies.
    Full,
    /// At least one network uses a non-tree backend: results come from
    /// simulation only.
    SimOnly {
        /// Which network broke coverage and why.
        reason: String,
    },
}

impl ModelCoverage {
    /// Whether the model fully covers the spec.
    pub fn is_full(&self) -> bool {
        matches!(self, ModelCoverage::Full)
    }
}

/// Classifies `spec` by model coverage (see [`ModelCoverage`]).
pub fn coverage(spec: &SystemSpec) -> ModelCoverage {
    for (i, c) in spec.clusters.iter().enumerate() {
        if !c.topology.is_tree() {
            return ModelCoverage::SimOnly {
                reason: format!(
                    "cluster {i} uses the {} backend; the paper's equations \
                     model m-port n-trees only",
                    c.topology.backend_name()
                ),
            };
        }
    }
    if !spec.topology.is_tree() {
        return ModelCoverage::SimOnly {
            reason: format!(
                "ICN2 uses the {} backend; the paper's equations model \
                 m-port n-trees only",
                spec.topology.backend_name()
            ),
        };
    }
    ModelCoverage::Full
}

/// How the service-time variance of the M/G/1 queues is approximated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum VarianceApprox {
    /// The paper's choice (after Draper & Ghosh \[9\]): `σ² = (x̄ − x_min)²`,
    /// where `x_min` is the uncontended service time (Eqs. (17), (36)).
    #[default]
    DraperGhosh,
    /// Deterministic service (`σ² = 0`) — ablation baseline; the paper
    /// itself names Eq. (17) as a source of inaccuracy near saturation.
    Zero,
}

/// Evaluation options (ablation switches; defaults reproduce the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default, deny_unknown_fields)]
pub struct ModelOptions {
    /// Apply the relaxing factor `δ_i` of Eqs. (27)–(28) to ICN2 stages.
    pub relaxing_factor: bool,
    /// Service-variance approximation for all M/G/1 queues.
    pub variance: VarianceApprox,
}

impl Default for ModelOptions {
    fn default() -> Self {
        Self {
            relaxing_factor: true,
            variance: VarianceApprox::default(),
        }
    }
}

/// Per-cluster latency report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterLatency {
    /// Cluster index `i`.
    pub cluster: usize,
    /// Outgoing probability `U_i` (Eq. (2)).
    pub outgoing_probability: f64,
    /// Intra-cluster breakdown `L_in` (Eq. (4)).
    pub intra: IntraBreakdown,
    /// Inter-cluster breakdown `L_out` (Eq. (39)).
    pub inter: InterBreakdown,
    /// The cluster's mean message latency
    /// `ℓ_i = (1−U_i)·L_in + U_i·L_out` (Eq. (1)).
    pub mean: f64,
}

/// Whole-system latency report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemLatency {
    /// System mean message latency (Eq. (3)).
    pub latency: f64,
    /// Per-cluster reports, one per cluster, in cluster order.
    pub per_cluster: Vec<ClusterLatency>,
}

/// Evaluates the analytical model for `spec` under `wl`.
///
/// Clusters with identical specifications share one evaluation (the paper's
/// organizations have at most three distinct cluster classes), so sweeps
/// over large systems stay fast.
pub fn evaluate(
    spec: &SystemSpec,
    wl: &Workload,
    opts: &ModelOptions,
) -> Result<SystemLatency, ModelError> {
    spec.validate()?;
    evaluate_with_profile(spec, wl, opts, &OutgoingProfile::uniform(spec))
}

/// Evaluates the model under a non-uniform destination pattern, expressed
/// as per-cluster outgoing probabilities (the paper's future-work
/// generalisation; see [`crate::profile::OutgoingProfile`]).
pub fn evaluate_with_profile(
    spec: &SystemSpec,
    wl: &Workload,
    opts: &ModelOptions,
    profile: &OutgoingProfile,
) -> Result<SystemLatency, ModelError> {
    wl.validate()?;
    spec.validate()?;
    if let ModelCoverage::SimOnly { .. } = coverage(spec) {
        // Defense in depth: callers surface sim-only coverage before ever
        // invoking the model, but a direct call must not silently produce
        // tree numbers for a non-tree system.
        let backend = spec
            .clusters
            .iter()
            .map(|c| &c.topology)
            .chain(std::iter::once(&spec.topology))
            .find(|t| !t.is_tree())
            .map(|t| t.backend_name())
            .unwrap_or("non-tree");
        return Err(ModelError::Topology(TopologyError::UnsupportedByBackend {
            backend,
            what: "the analytical latency model",
        }));
    }
    if profile.values().len() != spec.num_clusters() {
        return Err(ModelError::BadWorkload {
            what: "profile length must equal the cluster count",
        });
    }
    let us = profile.values();

    // Representative index per distinct (ClusterSpec, U_i).
    let mut class_of: Vec<usize> = Vec::with_capacity(spec.num_clusters());
    let mut reps: Vec<usize> = Vec::new();
    for i in 0..spec.num_clusters() {
        match reps
            .iter()
            .position(|&r| spec.clusters[r] == spec.clusters[i] && us[r] == us[i])
        {
            Some(c) => class_of.push(c),
            None => {
                class_of.push(reps.len());
                reps.push(i);
            }
        }
    }

    // Evaluate each class once.
    let mut class_results: Vec<(IntraBreakdown, InterBreakdown)> = Vec::with_capacity(reps.len());
    for &r in &reps {
        let intra = intra_latency_with_u(spec, wl, r, opts, us[r])?;
        let inter = inter_latency_with_us(spec, wl, r, opts, us)?;
        class_results.push((intra, inter));
    }

    let total_nodes = spec.total_nodes() as f64;
    let mut latency = 0.0;
    let mut per_cluster = Vec::with_capacity(spec.num_clusters());
    for i in 0..spec.num_clusters() {
        let (intra, inter) = class_results[class_of[i]];
        let u = us[i];
        let mean = (1.0 - u) * intra.total() + u * inter.total();
        latency += spec.cluster_nodes(i) as f64 / total_nodes * mean;
        per_cluster.push(ClusterLatency {
            cluster: i,
            outgoing_probability: u,
            intra,
            inter,
            mean,
        });
    }
    Ok(SystemLatency {
        latency,
        per_cluster,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};

    fn spec(m: u32, heights: &[u32]) -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let clusters = heights
            .iter()
            .map(|&n| ClusterSpec {
                n,
                icn1: net1,
                ecn1: net2,
                topology: Default::default(),
            })
            .collect();
        SystemSpec::new(m, clusters, net1).unwrap()
    }

    fn wl(rate: f64) -> Workload {
        Workload::new(rate, 32, 256.0).unwrap()
    }

    #[test]
    fn latency_is_size_weighted_average() {
        let s = spec(4, &[1, 1, 2, 3]);
        let out = evaluate(&s, &wl(5e-5), &ModelOptions::default()).unwrap();
        let total: f64 = out
            .per_cluster
            .iter()
            .map(|c| s.cluster_nodes(c.cluster) as f64 / s.total_nodes() as f64 * c.mean)
            .sum();
        assert!((out.latency - total).abs() < 1e-12);
        assert_eq!(out.per_cluster.len(), 4);
    }

    #[test]
    fn identical_clusters_share_results() {
        let s = spec(4, &[2, 2, 2, 2]);
        let out = evaluate(&s, &wl(1e-4), &ModelOptions::default()).unwrap();
        for c in &out.per_cluster {
            assert_eq!(c.mean, out.per_cluster[0].mean);
        }
    }

    #[test]
    fn mixing_follows_eq1() {
        let s = spec(4, &[1, 1, 2, 3]);
        let out = evaluate(&s, &wl(5e-5), &ModelOptions::default()).unwrap();
        for c in &out.per_cluster {
            let expect = (1.0 - c.outgoing_probability) * c.intra.total()
                + c.outgoing_probability * c.inter.total();
            assert!((c.mean - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn small_clusters_send_more_outside() {
        let s = spec(4, &[1, 3, 3, 3]);
        let out = evaluate(&s, &wl(1e-5), &ModelOptions::default()).unwrap();
        assert!(out.per_cluster[0].outgoing_probability > out.per_cluster[1].outgoing_probability);
    }

    #[test]
    fn latency_monotone_in_rate_until_saturation() {
        let s = spec(4, &[2, 2, 3, 3]);
        let opts = ModelOptions::default();
        let mut last = 0.0;
        let mut rate = 0.0;
        while let Ok(out) = evaluate(&s, &wl(rate), &opts) {
            assert!(out.latency >= last, "latency must grow with load");
            last = out.latency;
            rate += 2e-4;
            if rate > 1.0 {
                panic!("model never saturated");
            }
        }
    }

    #[test]
    fn rejects_bad_workload() {
        let s = spec(4, &[2, 2, 2, 2]);
        let bad = Workload {
            lambda_g: -1.0,
            msg_flits: 32,
            flit_bytes: 256.0,
        };
        assert!(matches!(
            evaluate(&s, &bad, &ModelOptions::default()),
            Err(ModelError::BadWorkload { .. })
        ));
    }

    #[test]
    fn longer_messages_increase_latency() {
        let s = spec(4, &[2, 2, 3, 3]);
        let opts = ModelOptions::default();
        let short = evaluate(&s, &Workload::new(1e-5, 32, 256.0).unwrap(), &opts).unwrap();
        let long = evaluate(&s, &Workload::new(1e-5, 64, 256.0).unwrap(), &opts).unwrap();
        assert!(long.latency > short.latency);
    }

    #[test]
    fn bigger_flits_increase_latency() {
        let s = spec(4, &[2, 2, 3, 3]);
        let opts = ModelOptions::default();
        let small = evaluate(&s, &Workload::new(1e-5, 32, 256.0).unwrap(), &opts).unwrap();
        let big = evaluate(&s, &Workload::new(1e-5, 32, 512.0).unwrap(), &opts).unwrap();
        assert!(big.latency > small.latency);
    }

    #[test]
    fn torus_specs_are_sim_only_and_rejected_by_evaluate() {
        use cocnet_topology::{TopoSpec, TorusShape};
        let tree = spec(4, &[1, 1, 2, 2]);
        assert_eq!(coverage(&tree), ModelCoverage::Full);
        assert!(coverage(&tree).is_full());

        let mut mixed = tree.clone();
        mixed.clusters[1].n = 0;
        mixed.clusters[1].topology = TopoSpec::Torus(TorusShape::new(&[2, 2]).unwrap());
        mixed.validate().unwrap();
        match coverage(&mixed) {
            ModelCoverage::SimOnly { reason } => {
                assert!(reason.contains("cluster 1"), "{reason}");
                assert!(reason.contains("torus"), "{reason}");
            }
            ModelCoverage::Full => panic!("torus cluster must be sim-only"),
        }
        assert!(matches!(
            evaluate(&mixed, &wl(1e-5), &ModelOptions::default()),
            Err(ModelError::Topology(
                cocnet_topology::TopologyError::UnsupportedByBackend {
                    backend: "torus",
                    ..
                }
            ))
        ));
    }
}
