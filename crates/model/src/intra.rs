//! Intra-cluster mean message latency — §3.1 of the paper (Eqs. (4)–(19)).
//!
//! An intra-cluster message travels entirely inside ICN1(i):
//! `L_in = W_in + T_in + E_in` — the M/G/1 wait at the source queue, the
//! network latency of the header, and the time for the tail flit to drain.

use crate::error::{ModelError, SaturationSite};
use crate::mg1::{mg1_wait, Mg1Wait};
use crate::model::{ModelOptions, VarianceApprox};
use crate::prob::{hop_distribution, mean_distance};
use crate::stages::{journey_latency, Stage};
use crate::workload::Workload;
use cocnet_topology::SystemSpec;
use serde::{Deserialize, Serialize};

/// Component breakdown of the intra-cluster latency `L_in` (Eq. (4)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntraBreakdown {
    /// `W_in`: mean wait in the source queue (Eq. (18)).
    pub source_wait: f64,
    /// `T_in`: mean network latency of the header (Eq. (5)).
    pub network: f64,
    /// `E_in`: mean time for the tail flit to reach the destination (Eq. (19)).
    pub tail: f64,
    /// `η_{I1}`: the per-channel message rate used for blocking (Eq. (10)).
    pub channel_rate: f64,
}

impl IntraBreakdown {
    /// `L_in = W_in + T_in + E_in`.
    pub fn total(&self) -> f64 {
        self.source_wait + self.network + self.tail
    }
}

/// Evaluates the intra-cluster latency of cluster `i` (Eqs. (4)–(19))
/// under the uniform-destination probability of Eq. (2).
pub fn intra_latency(
    spec: &SystemSpec,
    wl: &Workload,
    i: usize,
    opts: &ModelOptions,
) -> Result<IntraBreakdown, ModelError> {
    intra_latency_with_u(spec, wl, i, opts, spec.outgoing_probability(i))
}

/// Evaluates the intra-cluster latency with an explicit outgoing
/// probability `u_i` (non-uniform traffic generalisation; see
/// [`crate::profile::OutgoingProfile`]).
pub fn intra_latency_with_u(
    spec: &SystemSpec,
    wl: &Workload,
    i: usize,
    opts: &ModelOptions,
    u_i: f64,
) -> Result<IntraBreakdown, ModelError> {
    let tree = spec.cluster_tree(i);
    let net = &spec.clusters[i].icn1;
    let (m, n_i) = (tree.m(), tree.n());
    let n_nodes = tree.num_nodes() as f64;
    let m_flits = wl.msg_flits as f64;
    let t_cn = net.t_cn(wl.flit_bytes);
    let t_cs = net.t_cs(wl.flit_bytes);

    // Eq. (7): aggregate message rate entering ICN1(i).
    let lambda_i1 = n_nodes * wl.lambda_g * (1.0 - u_i);
    // Eqs. (8)–(10): mean distance and per-channel rate.
    let dist = mean_distance(m, n_i);
    let eta = lambda_i1 * dist / (4.0 * n_i as f64 * n_nodes);

    // Eqs. (5), (13)–(14): average the journey latency over the hop
    // distribution. A 2h-link journey has K = 2h−1 stages, all charging
    // M·t_cs except the final ejection stage, which charges M·t_cn.
    let probs = hop_distribution(m, n_i);
    let mut t_in = 0.0;
    for h in 1..=n_i {
        let k = (2 * h - 1) as usize;
        let mut stages = Vec::with_capacity(k);
        for s in 0..k {
            let transfer = if s == k - 1 {
                m_flits * t_cn
            } else {
                m_flits * t_cs
            };
            stages.push(Stage { transfer, eta });
        }
        t_in += probs[(h - 1) as usize] * journey_latency(&stages).t0;
    }

    // Eq. (17): variance approximation (Draper & Ghosh style): the minimum
    // service is the uncontended final-stage transfer M·t_cn.
    let sigma2 = match opts.variance {
        VarianceApprox::DraperGhosh => {
            let d = t_in - m_flits * t_cn;
            d * d
        }
        VarianceApprox::Zero => 0.0,
    };

    // Eq. (18): M/G/1 source queue. The arrival process at one node's
    // intra-cluster injection channel is its own intra-bound generation,
    // rate λ_g·(1−U_i) (see DESIGN.md on the per-node reading of Eq. (18)).
    let w_in = match mg1_wait(wl.lambda_g * (1.0 - u_i), t_in, sigma2) {
        Mg1Wait::Stable(w) => w,
        Mg1Wait::Saturated(rho) => {
            return Err(ModelError::Saturated {
                site: SaturationSite::IntraSourceQueue(i),
                rho,
            })
        }
    };

    // Eq. (19): tail-flit drain time.
    let mut e_in = 0.0;
    for h in 1..=n_i {
        e_in += probs[(h - 1) as usize] * (2.0 * (h as f64 - 1.0) * t_cs + t_cn);
    }

    Ok(IntraBreakdown {
        source_wait: w_in,
        network: t_in,
        tail: e_in,
        channel_rate: eta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};

    fn spec(m: u32, heights: &[u32]) -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let clusters = heights
            .iter()
            .map(|&n| ClusterSpec {
                n,
                icn1: net1,
                ecn1: net2,
                topology: Default::default(),
            })
            .collect();
        SystemSpec::new(m, clusters, net1).unwrap()
    }

    fn wl(rate: f64) -> Workload {
        Workload::new(rate, 32, 256.0).unwrap()
    }

    #[test]
    fn zero_load_equals_uncontended_latency() {
        // At λ=0 there is no waiting anywhere: T_in is the probability-
        // weighted uncontended header latency (M·t_cn for every h, since
        // only stage-0 transfer counts and higher stages only add waits...
        // for h=1 the single stage charges M·t_cn; for h>1 stage 0 charges
        // M·t_cs) and W_in = 0.
        let s = spec(4, &[2, 2, 2, 2]);
        let w = wl(0.0);
        let out = intra_latency(&s, &w, 0, &ModelOptions::default()).unwrap();
        assert_eq!(out.source_wait, 0.0);
        let net = &s.clusters[0].icn1;
        let m_t_cn = 32.0 * net.t_cn(256.0);
        let m_t_cs = 32.0 * net.t_cs(256.0);
        let p = hop_distribution(4, 2);
        let expected = p[0] * m_t_cn + p[1] * m_t_cs;
        assert!((out.network - expected).abs() < 1e-9);
        assert!(out.tail > 0.0);
        assert_eq!(out.channel_rate, 0.0);
    }

    #[test]
    fn latency_monotone_in_load() {
        let s = spec(4, &[3, 3, 3, 3]);
        let opts = ModelOptions::default();
        let mut last = 0.0;
        for rate in [0.0, 1e-4, 5e-4, 1e-3] {
            let out = intra_latency(&s, &wl(rate), 0, &opts).unwrap();
            assert!(out.total() >= last, "latency must grow with load");
            last = out.total();
        }
    }

    #[test]
    fn single_level_cluster_tail_is_tcn() {
        // n_i = 1: every intra message crosses one switch; E_in = t_cn.
        let s = spec(8, &[1; 8]);
        let out = intra_latency(&s, &wl(1e-4), 0, &ModelOptions::default()).unwrap();
        let t_cn = s.clusters[0].icn1.t_cn(256.0);
        assert!((out.tail - t_cn).abs() < 1e-12);
    }

    #[test]
    fn variance_option_changes_wait_only() {
        let s = spec(4, &[3, 3, 3, 3]);
        let dg = intra_latency(&s, &wl(5e-4), 0, &ModelOptions::default()).unwrap();
        let zero = intra_latency(
            &s,
            &wl(5e-4),
            0,
            &ModelOptions {
                variance: VarianceApprox::Zero,
                ..ModelOptions::default()
            },
        )
        .unwrap();
        assert_eq!(dg.network, zero.network);
        assert_eq!(dg.tail, zero.tail);
        assert!(dg.source_wait >= zero.source_wait);
    }

    #[test]
    fn saturates_at_extreme_load() {
        let s = spec(4, &[3, 3, 3, 3]);
        let err = intra_latency(&s, &wl(1.0), 0, &ModelOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            ModelError::Saturated {
                site: SaturationSite::IntraSourceQueue(0),
                ..
            }
        ));
    }
}
