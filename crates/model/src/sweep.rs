//! Load sweeps and saturation-point search.
//!
//! The paper's figures plot mean latency against the traffic generation
//! rate `λ_g`; [`sweep`] produces exactly such a series from the model, and
//! [`saturation_point`] locates the stability boundary (the largest `λ_g`
//! the model can evaluate) by bisection on the M/G/1 constraints.

use crate::error::ModelError;
use crate::model::{evaluate, ModelOptions};
use crate::workload::Workload;
use cocnet_stats::Series;
use cocnet_topology::SystemSpec;

/// Evaluates the model at each rate in `rates`, producing a labelled
/// series. Rates past the saturation point yield no point (the paper's
/// analysis curves likewise stop at the stability boundary).
pub fn sweep(
    spec: &SystemSpec,
    wl: &Workload,
    rates: &[f64],
    opts: &ModelOptions,
    label: impl Into<String>,
) -> Series {
    let mut series = Series::new(label);
    for &rate in rates {
        if let Ok(out) = evaluate(spec, &wl.with_rate(rate), opts) {
            series.push(rate, out.latency);
        }
    }
    series
}

/// Convenience: `count` evenly spaced rates in `(0, max]`, always starting
/// at `max/count` (λ=0 is included separately by callers that want it).
pub fn rate_grid(max: f64, count: usize) -> Vec<f64> {
    assert!(count > 0 && max > 0.0);
    (1..=count).map(|i| max * i as f64 / count as f64).collect()
}

/// Finds the saturation rate: the supremum of `λ_g` for which the model is
/// stable, located by exponential search followed by bisection. Returns a
/// rate `λ*` such that the model evaluates at `λ*` but not at
/// `λ* · (1 + tol)`.
pub fn saturation_point(
    spec: &SystemSpec,
    wl: &Workload,
    opts: &ModelOptions,
    tol: f64,
) -> Result<f64, ModelError> {
    // Start from a rate that surely evaluates.
    let mut lo = 0.0;
    // Exponential search for an unstable rate.
    let mut hi = 1e-6;
    evaluate(spec, &wl.with_rate(lo), opts)?;
    while evaluate(spec, &wl.with_rate(hi), opts).is_ok() {
        lo = hi;
        hi *= 2.0;
        if hi > 1e12 {
            return Err(ModelError::BadWorkload {
                what: "system never saturates at any finite rate",
            });
        }
    }
    // Bisection.
    while (hi - lo) / hi > tol {
        let mid = 0.5 * (lo + hi);
        if evaluate(spec, &wl.with_rate(mid), opts).is_ok() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};

    fn spec() -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
            topology: Default::default(),
        };
        SystemSpec::new(4, vec![c(2), c(2), c(3), c(3)], net1).unwrap()
    }

    fn wl() -> Workload {
        Workload::new(0.0, 32, 256.0).unwrap()
    }

    #[test]
    fn sweep_produces_monotone_series() {
        let rates = rate_grid(2e-4, 10);
        let s = sweep(&spec(), &wl(), &rates, &ModelOptions::default(), "model");
        assert_eq!(s.len(), 10);
        assert!(s.is_monotone_non_decreasing());
        assert_eq!(s.label, "model");
    }

    #[test]
    fn sweep_skips_saturated_rates() {
        let rates = vec![1e-5, 1.0]; // the second is far past saturation
        let s = sweep(&spec(), &wl(), &rates, &ModelOptions::default(), "model");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn rate_grid_shape() {
        let g = rate_grid(1e-3, 4);
        assert_eq!(g.len(), 4);
        assert!((g[0] - 2.5e-4).abs() < 1e-18);
        assert!((g[3] - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn saturation_point_brackets_stability() {
        let opts = ModelOptions::default();
        let sat = saturation_point(&spec(), &wl(), &opts, 1e-4).unwrap();
        assert!(sat > 0.0);
        assert!(evaluate(&spec(), &wl().with_rate(sat), &opts).is_ok());
        assert!(evaluate(&spec(), &wl().with_rate(sat * 1.01), &opts).is_err());
    }

    #[test]
    fn longer_messages_halve_saturation() {
        let opts = ModelOptions::default();
        let s = spec();
        let sat32 =
            saturation_point(&s, &Workload::new(0.0, 32, 256.0).unwrap(), &opts, 1e-5).unwrap();
        let sat64 =
            saturation_point(&s, &Workload::new(0.0, 64, 256.0).unwrap(), &opts, 1e-5).unwrap();
        let ratio = sat32 / sat64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio} should be ~2");
    }
}
