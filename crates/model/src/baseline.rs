//! Baseline: a homogeneous single-network queueing model (in the spirit of
//! Hu & Kleinrock \[11\], the prior work the paper positions against).
//!
//! The paper's critique of \[11\]-style models is that they assume one
//! homogeneous network and "cannot be used for cluster of cluster
//! computing systems in the presence of network and cluster size
//! heterogeneity". This module implements exactly such a baseline so the
//! critique becomes measurable: the system is flattened into a single
//! m-port n-tree with (at least) `N` nodes and *one* set of network
//! characteristics (the ICN1 of the first cluster — the paper's scenario
//! where an operator models the machine by its fastest local fabric), and
//! latency is predicted with the same wormhole/M-G-1 machinery.
//!
//! The `baseline` experiment bin shows what the paper claims: the flat
//! model tracks single-cluster systems but grossly underestimates
//! cluster-of-clusters latency because it sees neither the slow ECN1
//! networks nor the concentrator bottleneck.

use crate::error::{ModelError, SaturationSite};
use crate::mg1::{mg1_wait, Mg1Wait};
use crate::model::{ModelOptions, VarianceApprox};
use crate::prob::{hop_distribution, mean_distance};
use crate::stages::{journey_latency, Stage};
use crate::workload::Workload;
use cocnet_topology::{MPortNTree, SystemSpec};
use serde::{Deserialize, Serialize};

/// Prediction of the flat homogeneous baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselinePrediction {
    /// Predicted mean message latency.
    pub latency: f64,
    /// The flattened tree height used.
    pub n_flat: u32,
    /// Nodes of the flattened tree (`≥ N`, the smallest tree that fits).
    pub flat_nodes: usize,
}

/// Smallest `n` such that an m-port n-tree holds at least `nodes` nodes.
fn flat_height(m: u32, nodes: usize) -> Result<u32, ModelError> {
    let mut n = 1u32;
    loop {
        let tree = MPortNTree::new(m, n).map_err(ModelError::Topology)?;
        if tree.num_nodes() >= nodes {
            return Ok(n);
        }
        n += 1;
    }
}

/// Evaluates the homogeneous baseline for `spec` under `wl`.
///
/// The system is modeled as one m-port n-tree of `≥ N` nodes with the
/// first cluster's ICN1 characteristics; intra-network latency follows the
/// same Eqs. (5)–(19) machinery as the real model's intra-cluster part.
pub fn evaluate_baseline(
    spec: &SystemSpec,
    wl: &Workload,
    opts: &ModelOptions,
) -> Result<BaselinePrediction, ModelError> {
    wl.validate()?;
    spec.validate()?;
    let m = spec.m;
    let n_total = spec.total_nodes();
    let n_flat = flat_height(m, n_total)?;
    let tree = MPortNTree::new(m, n_flat).map_err(ModelError::Topology)?;
    let net = &spec.clusters[0].icn1;
    let m_flits = wl.msg_flits as f64;
    let t_cn = net.t_cn(wl.flit_bytes);
    let t_cs = net.t_cs(wl.flit_bytes);

    let nodes = tree.num_nodes() as f64;
    let lambda_total = nodes * wl.lambda_g;
    let dist = mean_distance(m, n_flat);
    let eta = lambda_total * dist / (4.0 * n_flat as f64 * nodes);

    let probs = hop_distribution(m, n_flat);
    let mut t_net = 0.0;
    let mut e_tail = 0.0;
    for h in 1..=n_flat {
        let k = (2 * h - 1) as usize;
        let stages: Vec<Stage> = (0..k)
            .map(|s| Stage {
                transfer: if s == k - 1 {
                    m_flits * t_cn
                } else {
                    m_flits * t_cs
                },
                eta,
            })
            .collect();
        let p = probs[(h - 1) as usize];
        t_net += p * journey_latency(&stages).t0;
        e_tail += p * (2.0 * (h as f64 - 1.0) * t_cs + t_cn);
    }

    let sigma2 = match opts.variance {
        VarianceApprox::DraperGhosh => {
            let d = t_net - m_flits * t_cn;
            d * d
        }
        VarianceApprox::Zero => 0.0,
    };
    let wait = match mg1_wait(wl.lambda_g, t_net, sigma2) {
        Mg1Wait::Stable(w) => w,
        Mg1Wait::Saturated(rho) => {
            return Err(ModelError::Saturated {
                site: SaturationSite::IntraSourceQueue(0),
                rho,
            })
        }
    };

    Ok(BaselinePrediction {
        latency: wait + t_net + e_tail,
        n_flat,
        flat_nodes: tree.num_nodes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn spec(heights: &[u32]) -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let clusters = heights
            .iter()
            .map(|&n| ClusterSpec {
                n,
                icn1: net1,
                ecn1: net2,
                topology: Default::default(),
            })
            .collect();
        SystemSpec::new(4, clusters, net1).unwrap()
    }

    #[test]
    fn flat_height_fits() {
        assert_eq!(flat_height(4, 8).unwrap(), 2);
        assert_eq!(flat_height(4, 9).unwrap(), 3);
        assert_eq!(flat_height(8, 1120).unwrap(), 5); // 2·4^5 = 2048 ≥ 1120
    }

    #[test]
    fn baseline_underestimates_heterogeneous_systems() {
        // The paper's critique, quantified: the flat model misses the slow
        // ECN1 + concentrators and lands far below the hierarchical model.
        let s = spec(&[2, 2, 3, 3]);
        let wl = Workload::new(1e-4, 32, 256.0).unwrap();
        let opts = ModelOptions::default();
        let flat = evaluate_baseline(&s, &wl, &opts).unwrap();
        let real = evaluate(&s, &wl, &opts).unwrap();
        assert!(
            flat.latency < 0.7 * real.latency,
            "flat {} vs hierarchical {}",
            flat.latency,
            real.latency
        );
    }

    #[test]
    fn baseline_is_reasonable_for_intra_only_view() {
        // Against the *intra-cluster* component the baseline is in the
        // right ballpark (same machinery, slightly longer flat paths).
        let s = spec(&[3, 3, 3, 3]);
        let wl = Workload::new(1e-4, 32, 256.0).unwrap();
        let opts = ModelOptions::default();
        let flat = evaluate_baseline(&s, &wl, &opts).unwrap();
        let real = evaluate(&s, &wl, &opts).unwrap();
        let intra = real.per_cluster[0].intra.total();
        assert!(flat.latency > 0.8 * intra);
        assert!(flat.latency < 2.5 * intra);
    }

    #[test]
    fn baseline_saturates_later_than_real_model() {
        // Without the concentrator M/G/1 the flat model's stability region
        // is far too optimistic.
        let s = spec(&[2, 2, 3, 3]);
        let wl = Workload::new(0.0, 32, 256.0).unwrap();
        let opts = ModelOptions::default();
        let real_sat = crate::sweep::saturation_point(&s, &wl, &opts, 1e-4).unwrap();
        // The baseline still evaluates fine at twice the real saturation.
        assert!(evaluate_baseline(&s, &wl.with_rate(2.0 * real_sat), &opts).is_ok());
    }
}
