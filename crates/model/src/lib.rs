//! Analytical latency model for heterogeneous cluster-of-clusters fat-tree
//! networks — a faithful implementation of Javadi, Abawajy, Akbari &
//! Nahavandi, *"Analytical Network Modeling of Heterogeneous Large-Scale
//! Cluster Systems"*, IEEE CLUSTER 2006.
//!
//! Given a [`cocnet_topology::SystemSpec`] (clusters, tree heights, network
//! characteristics) and a [`Workload`] (per-node Poisson rate `λ_g`, message
//! length `M` flits of `d_m` bytes), [`evaluate`] returns the predicted mean
//! message latency of the system together with a full per-cluster breakdown
//! (source-queue wait, network latency, tail time, concentrator/dispatcher
//! wait) — Eqs. (1)–(39) of the paper.
//!
//! ```
//! use cocnet_model::{evaluate, ModelOptions, Workload};
//! use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};
//!
//! let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
//! let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
//! let cluster = ClusterSpec { n: 1, icn1: net1, ecn1: net2, topology: Default::default() };
//! let spec = SystemSpec::new(4, vec![cluster; 4], net1).unwrap();
//! let wl = Workload { lambda_g: 1e-4, msg_flits: 32, flit_bytes: 256.0 };
//! let out = evaluate(&spec, &wl, &ModelOptions::default()).unwrap();
//! assert!(out.latency > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod baseline;
pub mod condis;
pub mod equations;
pub mod error;
pub mod inter;
pub mod intra;
pub mod mg1;
pub mod model;
pub mod prob;
pub mod profile;
pub mod rates;
pub mod stages;
pub mod sweep;
pub mod workload;

pub use baseline::{evaluate_baseline, BaselinePrediction};
pub use error::ModelError;
pub use model::{
    coverage, evaluate, evaluate_with_profile, ClusterLatency, ModelCoverage, ModelOptions,
    SystemLatency, VarianceApprox,
};
pub use profile::OutgoingProfile;
pub use rates::{network_rates, NetworkRates};
pub use sweep::{rate_grid, saturation_point, sweep};
pub use workload::Workload;
