//! M/G/1 waiting time (Pollaczek–Khinchine) — Eq. (15) of the paper.
//!
//! Source queues and concentrator/dispatcher buffers are modeled as M/G/1
//! queues: Poisson arrivals of rate `λ`, general service with mean `x̄` and
//! variance `σ²`. The mean wait is
//!
//! `W = λ·(x̄² + σ²) / (2·(1 − λ·x̄))`,
//!
//! which is Eq. (15) rewritten with `E[x²] = x̄² + σ²`. The queue is stable
//! only while `ρ = λ·x̄ < 1`; at or beyond that boundary the model reports
//! saturation instead of returning a (meaningless) negative wait.

/// Outcome of an M/G/1 evaluation: either a finite mean wait or the
/// utilisation that broke stability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mg1Wait {
    /// Stable queue with the given mean waiting time.
    Stable(f64),
    /// Unstable queue; contains `ρ = λ·x̄ ≥ 1`.
    Saturated(f64),
}

impl Mg1Wait {
    /// The wait if stable, else `None`.
    pub fn stable(self) -> Option<f64> {
        match self {
            Self::Stable(w) => Some(w),
            Self::Saturated(_) => None,
        }
    }
}

/// Mean M/G/1 waiting time for arrival rate `lambda`, mean service
/// `mean_service` and service variance `variance`.
///
/// Negative inputs are debug-asserted; a zero arrival rate yields zero wait.
pub fn mg1_wait(lambda: f64, mean_service: f64, variance: f64) -> Mg1Wait {
    debug_assert!(lambda >= 0.0, "negative arrival rate");
    debug_assert!(mean_service >= 0.0, "negative service time");
    debug_assert!(variance >= 0.0, "negative variance");
    if lambda == 0.0 {
        return Mg1Wait::Stable(0.0);
    }
    let rho = lambda * mean_service;
    if rho >= 1.0 {
        return Mg1Wait::Saturated(rho);
    }
    let second_moment = mean_service * mean_service + variance;
    Mg1Wait::Stable(lambda * second_moment / (2.0 * (1.0 - rho)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_waits_nothing() {
        assert_eq!(mg1_wait(0.0, 5.0, 1.0), Mg1Wait::Stable(0.0));
    }

    #[test]
    fn md1_special_case() {
        // Deterministic service (σ²=0): W = ρ·x̄ / (2(1−ρ)).
        let (lambda, x) = (0.5, 1.0);
        let rho = lambda * x;
        let expected = rho * x / (2.0 * (1.0 - rho));
        match mg1_wait(lambda, x, 0.0) {
            Mg1Wait::Stable(w) => assert!((w - expected).abs() < 1e-12),
            _ => panic!("should be stable"),
        }
    }

    #[test]
    fn mm1_special_case() {
        // Exponential service (σ² = x̄²): W = ρ·x̄/(1−ρ).
        let (lambda, x) = (0.25, 2.0);
        let rho: f64 = lambda * x;
        let expected = rho * x / (1.0 - rho);
        match mg1_wait(lambda, x, x * x) {
            Mg1Wait::Stable(w) => assert!((w - expected).abs() < 1e-12),
            _ => panic!("should be stable"),
        }
    }

    #[test]
    fn saturation_at_rho_one() {
        match mg1_wait(1.0, 1.0, 0.0) {
            Mg1Wait::Saturated(rho) => assert!((rho - 1.0).abs() < 1e-12),
            _ => panic!("rho = 1 must saturate"),
        }
        assert!(mg1_wait(2.0, 1.0, 0.0).stable().is_none());
    }

    #[test]
    fn wait_grows_with_load_and_variance() {
        let w1 = mg1_wait(0.1, 1.0, 0.0).stable().unwrap();
        let w2 = mg1_wait(0.5, 1.0, 0.0).stable().unwrap();
        let w3 = mg1_wait(0.5, 1.0, 4.0).stable().unwrap();
        assert!(w2 > w1);
        assert!(w3 > w2);
    }

    #[test]
    fn wait_blows_up_near_saturation() {
        let w = mg1_wait(0.999, 1.0, 0.0).stable().unwrap();
        assert!(w > 400.0);
    }
}
