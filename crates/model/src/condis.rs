//! Concentrator/dispatcher queues — Eqs. (36)–(38) of the paper.
//!
//! The concentrator/dispatcher pair interfaces each cluster's ECN1 with the
//! global ICN2 network (Fig. 2). Both directions are modeled as M/G/1
//! queues with service time `M·t_cs^{ICN2}` (the time to forward the whole
//! message into ICN2) and arrival rate `λ_I2^{(i,j)}`. Although message
//! length is fixed, the two adjacent networks have different speeds, so the
//! paper approximates the service variance by the squared gap between the
//! ICN2 and ECN1 full-message transfer times (Eq. (36)).

use crate::mg1::{mg1_wait, Mg1Wait};
use crate::model::VarianceApprox;

/// Mean wait in one concentrate (or dispatch) buffer between cluster pair
/// `(i, j)` — Eq. (37). `t_cs_i2` and `t_cs_e1` are the per-flit
/// switch-to-switch times of ICN2 and of the source cluster's ECN1.
pub fn concentrator_wait(
    lambda_i2: f64,
    m_flits: f64,
    t_cs_i2: f64,
    t_cs_e1: f64,
    variance: VarianceApprox,
) -> Mg1Wait {
    let service = m_flits * t_cs_i2;
    let sigma2 = match variance {
        VarianceApprox::DraperGhosh => {
            let d = service - m_flits * t_cs_e1;
            d * d
        }
        VarianceApprox::Zero => 0.0,
    };
    mg1_wait(lambda_i2, service, sigma2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_no_wait() {
        match concentrator_wait(0.0, 32.0, 0.5, 1.0, VarianceApprox::DraperGhosh) {
            Mg1Wait::Stable(w) => assert_eq!(w, 0.0),
            _ => panic!(),
        }
    }

    #[test]
    fn matches_hand_computed_eq37() {
        // λ = 0.01, M = 32, t_cs_i2 = 0.532, t_cs_e1 = 1.034 (paper nets).
        let (lambda, m, ti2, te1) = (0.01, 32.0, 0.532, 1.034);
        let service = m * ti2;
        let sigma2 = (service - m * te1) * (service - m * te1);
        let expected = lambda * (service * service + sigma2) / (2.0 * (1.0 - lambda * service));
        match concentrator_wait(lambda, m, ti2, te1, VarianceApprox::DraperGhosh) {
            Mg1Wait::Stable(w) => assert!((w - expected).abs() < 1e-12),
            _ => panic!("stable at this load"),
        }
    }

    #[test]
    fn saturates_when_rho_reaches_one() {
        // ρ = λ · M·t_cs_i2 = 0.06 * 32 * 0.532 > 1.
        let out = concentrator_wait(0.06, 32.0, 0.532, 1.034, VarianceApprox::DraperGhosh);
        assert!(out.stable().is_none());
    }

    #[test]
    fn longer_messages_saturate_earlier() {
        // Doubling M doubles the service time: the stability boundary in λ
        // halves — the key mechanism behind Fig. 3 vs Fig. 4.
        let sat_rate = |m: f64| {
            let mut lo = 0.0;
            let mut hi = 1.0;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                match concentrator_wait(mid, m, 0.532, 1.034, VarianceApprox::DraperGhosh) {
                    Mg1Wait::Stable(_) => lo = mid,
                    Mg1Wait::Saturated(_) => hi = mid,
                }
            }
            lo
        };
        let s32 = sat_rate(32.0);
        let s64 = sat_rate(64.0);
        assert!((s32 / s64 - 2.0).abs() < 1e-6, "s32={s32} s64={s64}");
    }

    #[test]
    fn zero_variance_reduces_wait() {
        let a = concentrator_wait(0.01, 32.0, 0.532, 1.034, VarianceApprox::DraperGhosh)
            .stable()
            .unwrap();
        let b = concentrator_wait(0.01, 32.0, 0.532, 1.034, VarianceApprox::Zero)
            .stable()
            .unwrap();
        assert!(a > b);
    }
}
