//! Predicted per-network channel rates and utilisations — the model-side
//! counterpart of the simulator's measured channel busy fractions.
//!
//! Eqs. (7), (10), (22)–(25) define the per-channel message rates `η` for
//! each network; multiplying by the full-message channel holding time
//! (`M·t_cs` of the owning network) gives a predicted utilisation, which
//! the `utilization` experiment compares against the simulator's measured
//! busy fractions. This is how the paper's §4 bottleneck claim ("the
//! inter-cluster networks, especially ICN2, are the bottlenecks") becomes
//! a quantitative statement.

use crate::prob::mean_distance;
use crate::workload::Workload;
use cocnet_topology::SystemSpec;
use serde::{Deserialize, Serialize};

/// Predicted per-channel rates and utilisations for every network of the
/// system under uniform traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkRates {
    /// `η_{ICN1(i)}` per cluster (Eq. (10)).
    pub eta_icn1: Vec<f64>,
    /// `η_{ECN1(i)}` per cluster, averaged over destination clusters
    /// (Eq. (24)).
    pub eta_ecn1: Vec<f64>,
    /// `η_{ICN2}` averaged over cluster pairs (Eq. (25)).
    pub eta_icn2: f64,
    /// Predicted busy fraction per cluster's ICN1 (`η · M·t_cs`).
    pub util_icn1: Vec<f64>,
    /// Predicted busy fraction per cluster's ECN1.
    pub util_ecn1: Vec<f64>,
    /// Predicted busy fraction of ICN2 channels.
    pub util_icn2: f64,
}

/// Computes the predicted rates/utilisations of every network.
pub fn network_rates(spec: &SystemSpec, wl: &Workload) -> NetworkRates {
    let c = spec.num_clusters();
    let m = spec.m;
    let n_c = spec.icn2_height().expect("validated spec");
    let mut eta_icn1 = Vec::with_capacity(c);
    let mut eta_ecn1 = Vec::with_capacity(c);
    let mut util_icn1 = Vec::with_capacity(c);
    let mut util_ecn1 = Vec::with_capacity(c);
    let mut eta_icn2_acc = 0.0;
    let mut pairs = 0.0;

    for i in 0..c {
        let n_i = spec.clusters[i].n;
        let big_n_i = spec.cluster_nodes(i) as f64;
        let u_i = spec.outgoing_probability(i);

        // Eq. (7) + Eq. (10).
        let lambda_i1 = big_n_i * wl.lambda_g * (1.0 - u_i);
        let e_i1 = lambda_i1 * mean_distance(m, n_i) / (4.0 * n_i as f64 * big_n_i);
        eta_icn1.push(e_i1);
        util_icn1.push(e_i1 * wl.msg_flits as f64 * spec.clusters[i].icn1.t_cs(wl.flit_bytes));

        // Eqs. (22), (24)–(25), averaged over j ≠ i.
        let mut e_e1 = 0.0;
        for j in 0..c {
            if j == i {
                continue;
            }
            let big_n_j = spec.cluster_nodes(j) as f64;
            let u_j = spec.outgoing_probability(j);
            let lambda_e1 = wl.lambda_g * (big_n_i * u_i + big_n_j * u_j);
            e_e1 += lambda_e1 * mean_distance(m, n_i) / (4.0 * n_i as f64 * big_n_i);
            let lambda_i2 = 0.5 * lambda_e1;
            eta_icn2_acc += lambda_i2 * mean_distance(m, n_c) / (4.0 * n_c as f64);
            pairs += 1.0;
        }
        e_e1 /= (c - 1) as f64;
        eta_ecn1.push(e_e1);
        util_ecn1.push(e_e1 * wl.msg_flits as f64 * spec.clusters[i].ecn1.t_cs(wl.flit_bytes));
    }
    let eta_icn2 = eta_icn2_acc / pairs;
    let util_icn2 = eta_icn2 * wl.msg_flits as f64 * spec.icn2.t_cs(wl.flit_bytes);
    NetworkRates {
        eta_icn1,
        eta_ecn1,
        eta_icn2,
        util_icn1,
        util_ecn1,
        util_icn2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn spec() -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
            topology: Default::default(),
        };
        SystemSpec::new(4, vec![c(2), c(2), c(3), c(3)], net1).unwrap()
    }

    #[test]
    fn rates_scale_linearly_with_load() {
        let s = spec();
        let a = network_rates(&s, &Workload::new(1e-4, 32, 256.0).unwrap());
        let b = network_rates(&s, &Workload::new(2e-4, 32, 256.0).unwrap());
        assert!((b.eta_icn2 / a.eta_icn2 - 2.0).abs() < 1e-12);
        for i in 0..4 {
            assert!((b.eta_icn1[i] / a.eta_icn1[i] - 2.0).abs() < 1e-12);
            assert!((b.eta_ecn1[i] / a.eta_ecn1[i] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inter_cluster_networks_dominate() {
        // The paper's bottleneck claim: at uniform traffic the ECN1/ICN2
        // utilisations dwarf ICN1 (U_i ≈ 0.9 sends almost everything out).
        let s = spec();
        let r = network_rates(&s, &Workload::new(2e-4, 32, 256.0).unwrap());
        for i in 0..4 {
            assert!(
                r.util_ecn1[i] > 3.0 * r.util_icn1[i],
                "cluster {i}: ecn1 {} vs icn1 {}",
                r.util_ecn1[i],
                r.util_icn1[i]
            );
        }
        assert!(r.util_icn2 > 4.0 * r.util_icn1.iter().cloned().fold(0.0, f64::max));
    }

    #[test]
    fn zero_load_is_all_zero() {
        let s = spec();
        let r = network_rates(&s, &Workload::new(0.0, 32, 256.0).unwrap());
        assert_eq!(r.eta_icn2, 0.0);
        assert!(r.util_icn1.iter().all(|&u| u == 0.0));
        assert!(r.util_ecn1.iter().all(|&u| u == 0.0));
    }

    #[test]
    fn utilisations_stay_subunit_below_saturation() {
        let s = spec();
        let wl = Workload::new(0.0, 32, 256.0).unwrap();
        let sat =
            crate::sweep::saturation_point(&s, &wl, &crate::ModelOptions::default(), 1e-4).unwrap();
        let r = network_rates(&s, &wl.with_rate(sat * 0.95));
        assert!(r.util_icn2 < 1.0);
        assert!(r.util_ecn1.iter().all(|&u| u < 1.0));
        assert!(r.util_icn1.iter().all(|&u| u < 1.0));
    }
}
