//! # Paper-to-code equation map
//!
//! One section per equation of Javadi et al. (CLUSTER 2006), each with the
//! implementing item and an executable example (doctests double as
//! regression tests for the numeric interpretations documented in
//! DESIGN.md). Numbers below use the paper's validation parameters
//! (Table 2 networks, 32-flit messages of 256-byte flits) unless stated.
//!
//! ## Eq. (1) — mixing intra and inter latency
//!
//! `ℓ_i = (1 − U_i)·L_in^(i) + U_i·L_out^(i)` — implemented in
//! [`crate::model::evaluate`]; exposed per cluster as
//! [`crate::model::ClusterLatency::mean`].
//!
//! ```
//! # use cocnet_model::{evaluate, ModelOptions, Workload};
//! # use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};
//! # let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
//! # let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
//! # let c = |n| ClusterSpec { n, icn1: net1, ecn1: net2, topology: Default::default() };
//! # let spec = SystemSpec::new(4, vec![c(2), c(2), c(3), c(3)], net1).unwrap();
//! let out = evaluate(
//!     &spec,
//!     &Workload::new(1e-4, 32, 256.0).unwrap(),
//!     &ModelOptions::default(),
//! )
//! .unwrap();
//! for cl in &out.per_cluster {
//!     let u = cl.outgoing_probability;
//!     let expect = (1.0 - u) * cl.intra.total() + u * cl.inter.total();
//!     assert!((cl.mean - expect).abs() < 1e-12);
//! }
//! ```
//!
//! ## Eq. (2) — outgoing probability
//!
//! `U_i = 1 − (N_i − 1)/(N − 1)` —
//! [`cocnet_topology::SystemSpec::outgoing_probability`].
//!
//! ```
//! # use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};
//! # let net = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
//! # let c = |n| ClusterSpec { n, icn1: net, ecn1: net, topology: Default::default() };
//! // Four clusters of 8/8/16/16 nodes: N = 48.
//! let spec = SystemSpec::new(4, vec![c(2), c(2), c(3), c(3)], net).unwrap();
//! assert!((spec.outgoing_probability(0) - (1.0 - 7.0 / 47.0)).abs() < 1e-12);
//! ```
//!
//! ## Eq. (3) — system latency
//!
//! `Latency = Σ_i (N_i/N)·ℓ_i` — the size-weighted average in
//! [`crate::model::evaluate`] (tested there).
//!
//! ## Eqs. (5)–(6) — hop distribution
//!
//! `P(h,n) = (m/2 − 1)(m/2)^{h−1}/(N−1)` for `h < n`,
//! `(m−1)(m/2)^{n−1}/(N−1)` for `h = n` — [`crate::prob::hop_distribution`].
//! The counts sum to exactly `N − 1`:
//!
//! ```
//! let p = cocnet_model::prob::hop_distribution(8, 3);
//! assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! // 128-node tree: 3 siblings at h=1, 12 at h=2, 112 via the roots.
//! assert!((p[0] - 3.0 / 127.0).abs() < 1e-12);
//! assert!((p[1] - 12.0 / 127.0).abs() < 1e-12);
//! assert!((p[2] - 112.0 / 127.0).abs() < 1e-12);
//! ```
//!
//! ## Eqs. (8)–(9) — mean message distance
//!
//! `D = 2·Σ h·P(h,n)`, with the closed form of Eq. (9) —
//! [`crate::prob::mean_distance`] / [`crate::prob::mean_distance_closed_form`].
//!
//! ```
//! let d = cocnet_model::prob::mean_distance(8, 3);
//! let closed = cocnet_model::prob::mean_distance_closed_form(8, 3);
//! assert!((d - closed).abs() < 1e-10);
//! assert!(d > 2.0 && d < 6.0); // between one hop and the diameter
//! ```
//!
//! ## Eqs. (7), (10), (22)–(25) — traffic rates
//!
//! Aggregate rates `λ_I1 = N_i λ_g (1−U_i)`,
//! `λ_E1 = λ_g (N_i U_i + N_j U_j)`, `λ_I2 = λ_E1/2` (reconstructed; see
//! DESIGN.md) and the per-channel rates `η = λ·D/(4nN)` —
//! [`crate::rates::network_rates`].
//!
//! ## Eqs. (11)–(12) — service times
//!
//! `t_cn = 0.5·α_n + d_m·β_n`, `t_cs = α_s + d_m·β_n` —
//! [`cocnet_topology::NetworkCharacteristics::t_cn`] / `t_cs`.
//!
//! ```
//! # use cocnet_topology::NetworkCharacteristics;
//! let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
//! assert!((net2.t_cn(256.0) - 1.049).abs() < 1e-12);
//! assert!((net2.t_cs(256.0) - 1.034).abs() < 1e-12);
//! ```
//!
//! ## Eqs. (13)–(14), (26)–(30) — per-stage blocking recursion
//!
//! `W_k = ½·η_k·T_k²`, `T_k = M·t_k + Σ_{s>k} W_s`, backward from the
//! ejection stage — [`crate::stages::journey_latency`]. The relaxing
//! factor `δ_i = β_ICN2/β_ECN1` of Eqs. (27)–(28) scales `η` on ICN2
//! stages ([`cocnet_topology::SystemSpec::relaxing_factor`]).
//!
//! ```
//! use cocnet_model::stages::{journey_latency, Stage};
//! // Two stages, hand-checkable: T1 = 6, W1 = ½·0.05·36 = 0.9, T0 = 4.9.
//! let j = journey_latency(&[
//!     Stage { transfer: 4.0, eta: 0.05 },
//!     Stage { transfer: 6.0, eta: 0.05 },
//! ]);
//! assert!((j.t0 - 4.9).abs() < 1e-12);
//! ```
//!
//! ## Eqs. (15)–(18), (31) — M/G/1 source queues
//!
//! Pollaczek–Khinchine with the Draper–Ghosh variance surrogate
//! `σ² = (x̄ − x_min)²` — [`crate::mg1::mg1_wait`] +
//! [`crate::model::VarianceApprox`]. Arrival rates use the per-node
//! reading (DESIGN.md choice 3).
//!
//! ```
//! use cocnet_model::mg1::{mg1_wait, Mg1Wait};
//! // M/D/1 at ρ = 0.5: W = ρx̄/(2(1−ρ)) = 0.5.
//! assert_eq!(mg1_wait(0.5, 1.0, 0.0), Mg1Wait::Stable(0.5));
//! // The stability boundary is saturation, not an error value.
//! assert!(matches!(mg1_wait(1.0, 1.0, 0.0), Mg1Wait::Saturated(_)));
//! ```
//!
//! ## Eq. (19), (33)–(34) — tail-flit drain
//!
//! `E_in = Σ_h P(h)·[2(h−1)·t_cs + t_cn]` and its inter-cluster analogue —
//! computed inside [`crate::intra::intra_latency`] /
//! [`crate::inter::pair_latency`], reported as the `tail` fields.
//!
//! ## Eqs. (20)–(21) — merged inter-cluster journey
//!
//! The `(r,v)+l` triple sum with probability
//! `P(r,n_i)·P(v,n_j)·P(l,n_c)` — [`crate::inter::pair_latency`].
//!
//! ## Eqs. (36)–(38) — concentrator/dispatcher
//!
//! M/G/1 with service `M·t_cs^{ICN2}` —
//! [`crate::condis::concentrator_wait`]; doubled (concentrate + dispatch)
//! and averaged over destinations into
//! [`crate::inter::InterBreakdown::condis_wait`].
//!
//! ## Eq. (39) — inter-cluster total
//!
//! `L_out = L_ex + W_d` — [`crate::inter::InterBreakdown::total`].

// This module is documentation-only; the doctests above are its tests.
