//! Error types for model evaluation.

use cocnet_topology::TopologyError;
use std::fmt;

/// Where in the system an M/G/1 queue hit its stability boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaturationSite {
    /// The intra-cluster source queue of the given cluster.
    IntraSourceQueue(usize),
    /// The inter-cluster source queue of the given cluster.
    InterSourceQueue(usize),
    /// The concentrator/dispatcher between the given cluster pair.
    Concentrator(usize, usize),
}

impl fmt::Display for SaturationSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IntraSourceQueue(i) => write!(f, "intra-cluster source queue of cluster {i}"),
            Self::InterSourceQueue(i) => write!(f, "inter-cluster source queue of cluster {i}"),
            Self::Concentrator(i, j) => {
                write!(f, "concentrator/dispatcher between clusters {i} and {j}")
            }
        }
    }
}

/// Errors raised during model evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A queue's utilisation `ρ = λ·x̄` reached or exceeded 1: the model has
    /// no steady state at this load (the paper's "saturation point").
    Saturated {
        /// Which queue saturated first.
        site: SaturationSite,
        /// The offending utilisation.
        rho: f64,
    },
    /// The system specification is structurally invalid.
    Topology(TopologyError),
    /// The workload is invalid (non-positive rate, zero-length messages…).
    BadWorkload {
        /// Description of the problem.
        what: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Saturated { site, rho } => {
                write!(f, "saturated at {site}: utilisation rho = {rho:.4} >= 1")
            }
            Self::Topology(e) => write!(f, "topology error: {e}"),
            Self::BadWorkload { what } => write!(f, "bad workload: {what}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for ModelError {
    fn from(e: TopologyError) -> Self {
        Self::Topology(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_site_and_rho() {
        let e = ModelError::Saturated {
            site: SaturationSite::Concentrator(1, 2),
            rho: 1.25,
        };
        let text = e.to_string();
        assert!(text.contains("clusters 1 and 2"));
        assert!(text.contains("1.25"));
    }

    #[test]
    fn topology_error_converts() {
        let e: ModelError = TopologyError::BadPortCount { m: 3 }.into();
        assert!(matches!(e, ModelError::Topology(_)));
        assert!(e.to_string().contains("m=3"));
    }
}
