//! Outgoing-traffic profiles: the model generalised beyond uniform
//! destinations (the paper's stated future work, §5).
//!
//! Everything the model needs to know about the destination distribution
//! is, per cluster, the probability `U_i` that a message leaves its source
//! cluster — Eq. (2) computes it for the uniform pattern; non-uniform
//! patterns (cluster-local, hotspot) induce different values. An
//! [`OutgoingProfile`] carries one `U_i` per cluster, so the same
//! Eqs. (1)–(39) machinery evaluates any pattern that is
//! destination-symmetric *within* each cluster class.

use crate::error::ModelError;
use cocnet_topology::SystemSpec;
use serde::{Deserialize, Serialize};

/// Per-cluster outgoing probabilities `U_i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutgoingProfile {
    values: Vec<f64>,
}

impl OutgoingProfile {
    /// The uniform-destination profile of Eq. (2):
    /// `U_i = 1 − (N_i − 1)/(N − 1)`.
    pub fn uniform(spec: &SystemSpec) -> Self {
        Self {
            values: (0..spec.num_clusters())
                .map(|i| spec.outgoing_probability(i))
                .collect(),
        }
    }

    /// A cluster-local pattern: with probability `locality` the destination
    /// is uniform inside the source cluster, otherwise uniform outside, so
    /// `U_i = 1 − locality` for every cluster.
    pub fn cluster_local(spec: &SystemSpec, locality: f64) -> Result<Self, ModelError> {
        if !(0.0..=1.0).contains(&locality) {
            return Err(ModelError::BadWorkload {
                what: "locality must be in [0, 1]",
            });
        }
        Ok(Self {
            values: vec![1.0 - locality; spec.num_clusters()],
        })
    }

    /// A custom profile. Errors unless exactly one probability in `[0, 1]`
    /// is supplied per cluster.
    pub fn custom(spec: &SystemSpec, values: Vec<f64>) -> Result<Self, ModelError> {
        if values.len() != spec.num_clusters() {
            return Err(ModelError::BadWorkload {
                what: "profile length must equal the cluster count",
            });
        }
        if values.iter().any(|u| !(0.0..=1.0).contains(u)) {
            return Err(ModelError::BadWorkload {
                what: "outgoing probabilities must be in [0, 1]",
            });
        }
        Ok(Self { values })
    }

    /// `U_i` for cluster `i`.
    pub fn outgoing(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// All values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn spec() -> SystemSpec {
        let net = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net,
            ecn1: net,
            topology: Default::default(),
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net).unwrap()
    }

    #[test]
    fn uniform_matches_eq2() {
        let s = spec();
        let p = OutgoingProfile::uniform(&s);
        for i in 0..s.num_clusters() {
            assert_eq!(p.outgoing(i), s.outgoing_probability(i));
        }
    }

    #[test]
    fn cluster_local_is_flat() {
        let s = spec();
        let p = OutgoingProfile::cluster_local(&s, 0.8).unwrap();
        assert!(p.values().iter().all(|&u| (u - 0.2).abs() < 1e-12));
        assert!(OutgoingProfile::cluster_local(&s, 1.5).is_err());
    }

    #[test]
    fn custom_validates() {
        let s = spec();
        assert!(OutgoingProfile::custom(&s, vec![0.5; 4]).is_ok());
        assert!(OutgoingProfile::custom(&s, vec![0.5; 3]).is_err());
        assert!(OutgoingProfile::custom(&s, vec![0.5, 0.5, 0.5, 1.5]).is_err());
    }
}
