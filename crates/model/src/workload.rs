//! Workload description shared by the model and the simulator.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// An open-loop workload: every node generates fixed-length messages by a
/// Poisson process with uniformly random destinations (paper assumptions
/// 1, 2 and 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Workload {
    /// Per-node message generation rate `λ_g` (messages per time unit).
    pub lambda_g: f64,
    /// Message length `M` in flits.
    pub msg_flits: u32,
    /// Flit size `d_m` in bytes (the paper's figure legends call it `Lm`).
    pub flit_bytes: f64,
}

impl Workload {
    /// Creates a validated workload.
    pub fn new(lambda_g: f64, msg_flits: u32, flit_bytes: f64) -> Result<Self, ModelError> {
        let wl = Self {
            lambda_g,
            msg_flits,
            flit_bytes,
        };
        wl.validate()?;
        Ok(wl)
    }

    /// Validates finiteness/positivity of all parameters. `λ_g = 0` is
    /// allowed (zero-load latency is well defined and useful).
    pub fn validate(&self) -> Result<(), ModelError> {
        if !(self.lambda_g.is_finite() && self.lambda_g >= 0.0) {
            return Err(ModelError::BadWorkload {
                what: "lambda_g must be finite and >= 0",
            });
        }
        if self.msg_flits == 0 {
            return Err(ModelError::BadWorkload {
                what: "messages must have at least one flit",
            });
        }
        if !(self.flit_bytes.is_finite() && self.flit_bytes > 0.0) {
            return Err(ModelError::BadWorkload {
                what: "flit size must be finite and positive",
            });
        }
        Ok(())
    }

    /// Returns a copy with a different generation rate (sweep helper).
    pub fn with_rate(&self, lambda_g: f64) -> Self {
        Self { lambda_g, ..*self }
    }

    /// Message length in bytes (`M · d_m`).
    pub fn message_bytes(&self) -> f64 {
        self.msg_flits as f64 * self.flit_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_workloads_pass() {
        assert!(Workload::new(1e-4, 32, 256.0).is_ok());
        assert!(Workload::new(0.0, 1, 1.0).is_ok());
    }

    #[test]
    fn invalid_workloads_fail() {
        assert!(Workload::new(-1.0, 32, 256.0).is_err());
        assert!(Workload::new(f64::NAN, 32, 256.0).is_err());
        assert!(Workload::new(1e-4, 0, 256.0).is_err());
        assert!(Workload::new(1e-4, 32, 0.0).is_err());
        assert!(Workload::new(1e-4, 32, f64::INFINITY).is_err());
    }

    #[test]
    fn helpers() {
        let wl = Workload::new(1e-4, 32, 256.0).unwrap();
        assert_eq!(wl.with_rate(2e-4).lambda_g, 2e-4);
        assert_eq!(wl.with_rate(2e-4).msg_flits, 32);
        assert_eq!(wl.message_bytes(), 8192.0);
    }
}
