//! Per-stage blocking recursion — Eqs. (13)–(14) and (26)–(29).
//!
//! Under wormhole flow control a message holds every channel it has
//! acquired while it waits for the next one, so the *service time* a channel
//! offers at stage `k` includes the waits the message will incur at all
//! later stages. The paper models this with a backward recursion over the
//! `K` stages between source and destination:
//!
//! * last stage (`k = K−1`, the ejection link): `T_{K−1} = M·t` where `t`
//!   is that stage's flit transfer time — the destination always sinks;
//! * other stages: `T_k = M·t_k + Σ_{s=k+1}^{K−1} W_s`;
//! * the wait to acquire the channel of stage `k` is
//!   `W_k = ½·η_k·T_k²` (Eq. (13)), with `η_k` the per-channel message rate
//!   of the network that stage belongs to — scaled by the relaxing factor
//!   `δ` on ICN2 stages (Eq. (27)).
//!
//! The network latency of the whole journey is `T_0` (Eq. (14) footnote).

/// One pipeline stage of a journey: the message transfer time the stage's
/// channel charges (`M·t`, flits × per-flit time) and the per-channel
/// message rate `η` used for its blocking wait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// Full message transfer time across this stage's channel (`M·t`).
    pub transfer: f64,
    /// Effective per-channel message rate `η` at this stage (already
    /// including any relaxing factor).
    pub eta: f64,
}

/// Result of the backward recursion over one journey.
#[derive(Debug, Clone, PartialEq)]
pub struct JourneyLatency {
    /// `T_0`: the mean network latency of the journey (Eq. (14)).
    pub t0: f64,
    /// The per-stage waits `W_k` (diagnostics; `W_{K−1}` is by construction
    /// unused by `T_0` but reported for completeness).
    pub waits: Vec<f64>,
}

/// Runs the backward recursion of Eqs. (13)–(14) over `stages`
/// (stage 0 first). Returns the journey's network latency `T_0`.
///
/// # Panics
/// Panics if `stages` is empty.
pub fn journey_latency(stages: &[Stage]) -> JourneyLatency {
    assert!(!stages.is_empty(), "a journey needs at least one stage");
    let k = stages.len();
    let mut waits = vec![0.0; k];
    // Backward pass: T_k needs Σ W_s for s > k. The last stage has no
    // downstream waits (the destination always accepts).
    let mut wait_suffix = 0.0;
    let mut t0 = 0.0;
    for idx in (0..k).rev() {
        let t_k = stages[idx].transfer + if idx == k - 1 { 0.0 } else { wait_suffix };
        let w_k = 0.5 * stages[idx].eta * t_k * t_k;
        waits[idx] = w_k;
        if idx == 0 {
            t0 = t_k;
        }
        wait_suffix += w_k;
    }
    JourneyLatency { t0, waits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stage_is_pure_transfer() {
        let j = journey_latency(&[Stage {
            transfer: 16.0,
            eta: 0.01,
        }]);
        assert_eq!(j.t0, 16.0);
        assert_eq!(j.waits.len(), 1);
        assert!((j.waits[0] - 0.5 * 0.01 * 256.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_reduces_to_transfer_times() {
        // With η = 0 there is no blocking: T_0 = transfer of stage 0 only
        // (later transfers are pipelined, not serialized, under wormhole).
        let stages = vec![
            Stage {
                transfer: 10.0,
                eta: 0.0,
            };
            5
        ];
        let j = journey_latency(&stages);
        assert_eq!(j.t0, 10.0);
        assert!(j.waits.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn two_stage_hand_computation() {
        // K=2: T_1 = M t_1 (last stage); W_1 = ½ η T_1²;
        //      T_0 = M t_0 + W_1.
        let stages = [
            Stage {
                transfer: 4.0,
                eta: 0.05,
            },
            Stage {
                transfer: 6.0,
                eta: 0.05,
            },
        ];
        let j = journey_latency(&stages);
        let w1 = 0.5 * 0.05 * 36.0;
        assert!((j.t0 - (4.0 + w1)).abs() < 1e-12);
        assert!((j.waits[1] - w1).abs() < 1e-12);
    }

    #[test]
    fn three_stage_recursion_accumulates() {
        // K=3 with equal transfers τ and rate η:
        // T_2 = τ, W_2 = ½ητ²
        // T_1 = τ + W_2, W_1 = ½ηT_1²
        // T_0 = τ + W_1 + W_2.
        let tau = 5.0;
        let eta = 0.02;
        let j = journey_latency(&[
            Stage { transfer: tau, eta },
            Stage { transfer: tau, eta },
            Stage { transfer: tau, eta },
        ]);
        let w2 = 0.5 * eta * tau * tau;
        let t1 = tau + w2;
        let w1 = 0.5 * eta * t1 * t1;
        assert!((j.t0 - (tau + w1 + w2)).abs() < 1e-12);
    }

    #[test]
    fn latency_monotone_in_rate() {
        let mk = |eta| {
            journey_latency(&[
                Stage { transfer: 8.0, eta },
                Stage { transfer: 8.0, eta },
                Stage { transfer: 8.0, eta },
            ])
            .t0
        };
        assert!(mk(0.001) < mk(0.01));
        assert!(mk(0.01) < mk(0.05));
    }

    #[test]
    fn heterogeneous_stage_rates() {
        // Lower η on middle stages (the ICN2 relaxing factor) must reduce T_0.
        let base = [
            Stage {
                transfer: 8.0,
                eta: 0.02,
            },
            Stage {
                transfer: 8.0,
                eta: 0.02,
            },
            Stage {
                transfer: 8.0,
                eta: 0.02,
            },
        ];
        let mut relaxed = base;
        relaxed[1].eta *= 0.5;
        assert!(journey_latency(&relaxed).t0 < journey_latency(&base).t0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_journey_panics() {
        journey_latency(&[]);
    }
}
