//! Property tests for the analytical model's building blocks and for
//! whole-model structural invariants over random valid systems.

use cocnet_model::mg1::{mg1_wait, Mg1Wait};
use cocnet_model::prob::{hop_distribution, mean_distance};
use cocnet_model::stages::{journey_latency, Stage};
use cocnet_model::{evaluate, ModelOptions, Workload};
use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};
use proptest::prelude::*;

fn arb_stages() -> impl Strategy<Value = Vec<Stage>> {
    prop::collection::vec(
        (0.1f64..100.0, 0.0f64..0.01).prop_map(|(transfer, eta)| Stage { transfer, eta }),
        1..12,
    )
}

fn arb_system() -> impl Strategy<Value = SystemSpec> {
    (
        0u32..2,
        1u32..=2,
        prop::collection::vec(1u32..=3, 1..4),
        100.0f64..1000.0,
        100.0f64..1000.0,
    )
        .prop_map(|(mi, n_c, height_pool, bw1, bw2)| {
            let m = [4u32, 8][mi as usize];
            let count = 2 * (m as usize / 2).pow(n_c);
            let net1 = NetworkCharacteristics::new(bw1, 0.01, 0.02).unwrap();
            let net2 = NetworkCharacteristics::new(bw2, 0.05, 0.01).unwrap();
            let clusters: Vec<ClusterSpec> = (0..count)
                .map(|i| ClusterSpec {
                    n: height_pool[i % height_pool.len()],
                    icn1: net1,
                    ecn1: net2,
                    topology: Default::default(),
                })
                .collect();
            SystemSpec::new(m, clusters, net1).unwrap()
        })
}

proptest! {
    #[test]
    fn journey_latency_bounds(stages in arb_stages()) {
        let j = journey_latency(&stages);
        // T0 is at least the first stage's transfer and at least the last
        // stage's (pipelining never beats a single serialization).
        prop_assert!(j.t0 >= stages[0].transfer - 1e-12);
        prop_assert!(j.waits.iter().all(|&w| w >= 0.0));
        // Zero rates collapse to the bare stage-0 transfer.
        let free: Vec<Stage> = stages
            .iter()
            .map(|s| Stage { transfer: s.transfer, eta: 0.0 })
            .collect();
        prop_assert!((journey_latency(&free).t0 - stages[0].transfer).abs() < 1e-12);
    }

    #[test]
    fn journey_latency_monotone_in_eta(stages in arb_stages(), scale in 1.0f64..5.0) {
        let heavier: Vec<Stage> = stages
            .iter()
            .map(|s| Stage { transfer: s.transfer, eta: s.eta * scale })
            .collect();
        prop_assert!(journey_latency(&heavier).t0 >= journey_latency(&stages).t0 - 1e-12);
    }

    #[test]
    fn appending_a_stage_never_reduces_t0(stages in arb_stages()) {
        // Adding a (contended) stage to the end of the journey can only add
        // waits upstream.
        let mut longer = stages.clone();
        longer.push(Stage { transfer: 1.0, eta: 0.001 });
        prop_assert!(journey_latency(&longer).t0 >= journey_latency(&stages).t0 - 1e-9);
    }

    #[test]
    fn mg1_wait_monotone_in_lambda(
        x in 0.1f64..50.0,
        var in 0.0f64..100.0,
        l1 in 0.0f64..0.01,
        l2 in 0.0f64..0.01,
    ) {
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        match (mg1_wait(lo, x, var), mg1_wait(hi, x, var)) {
            (Mg1Wait::Stable(a), Mg1Wait::Stable(b)) => prop_assert!(b >= a - 1e-12),
            (Mg1Wait::Saturated(_), Mg1Wait::Stable(_)) => {
                prop_assert!(false, "lower rate saturated but higher stable")
            }
            _ => {}
        }
    }

    #[test]
    fn hop_distribution_is_proper_for_any_tree(half in 1u32..5, n in 1u32..6) {
        let m = 2 * half;
        let p = hop_distribution(m, n);
        prop_assert_eq!(p.len(), n as usize);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let d = mean_distance(m, n);
        prop_assert!(d >= 2.0 - 1e-12 && d <= 2.0 * n as f64 + 1e-12);
    }

    #[test]
    fn model_latency_positive_and_monotone(spec in arb_system(), seed in 0u64..1000) {
        let _ = seed;
        let opts = ModelOptions::default();
        let wl = Workload::new(0.0, 16, 256.0).unwrap();
        let zero = evaluate(&spec, &wl, &opts).unwrap();
        prop_assert!(zero.latency > 0.0);
        // A modest positive load must not reduce latency.
        let loaded = evaluate(&spec, &wl.with_rate(1e-5), &opts);
        if let Ok(out) = loaded {
            prop_assert!(out.latency >= zero.latency - 1e-9);
        }
    }

    #[test]
    fn model_per_cluster_weights_sum(spec in arb_system()) {
        let opts = ModelOptions::default();
        let wl = Workload::new(1e-5, 16, 256.0).unwrap();
        if let Ok(out) = evaluate(&spec, &wl, &opts) {
            let n = spec.total_nodes() as f64;
            let weighted: f64 = out
                .per_cluster
                .iter()
                .map(|c| spec.cluster_nodes(c.cluster) as f64 / n * c.mean)
                .sum();
            prop_assert!((weighted - out.latency).abs() < 1e-9);
            // U_i in [0, 1] and bigger clusters have smaller U.
            for a in &out.per_cluster {
                prop_assert!((0.0..=1.0).contains(&a.outgoing_probability));
                for b in &out.per_cluster {
                    if spec.cluster_nodes(a.cluster) > spec.cluster_nodes(b.cluster) {
                        prop_assert!(
                            a.outgoing_probability <= b.outgoing_probability + 1e-12
                        );
                    }
                }
            }
        }
    }
}
