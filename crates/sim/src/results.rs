//! Simulation result collection.

use crate::trace::MessageTrace;
use cocnet_stats::{mser5, Histogram, OnlineStats, Percentiles, Summary};
use serde::{Deserialize, Serialize};

/// Post-hoc check that a run's configured warm-up was long enough.
///
/// The paper fixes the warm-up population; MSER-5 finds the truncation
/// point that the *data* asks for. When [`SimConfig::audit_warmup`] is
/// set, the engine records the delivery-ordered latency stream of the
/// warm-up + measured populations, scans it with
/// [`cocnet_stats::mser5`], and reports the comparison here — a run whose
/// detected truncation point lands beyond the configured warm-up was
/// still in its initial transient when measurement started, so its mean
/// is biased.
///
/// [`SimConfig::audit_warmup`]: crate::SimConfig::audit_warmup
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmupAudit {
    /// MSER-5 truncation point, in delivered messages since the start of
    /// the run (a multiple of 5).
    pub truncation: u64,
    /// The minimised MSER statistic at the truncation point.
    pub statistic: f64,
    /// The warm-up population the run was configured with.
    pub configured_warmup: u64,
    /// Number of delivered messages the audit scanned.
    pub samples: u64,
}

impl WarmupAudit {
    /// Whether the detected transient outlasts the configured warm-up —
    /// the "this run's warm-up was too short" flag.
    pub fn exceeds(&self) -> bool {
        self.truncation > self.configured_warmup
    }

    /// Scans a delivery-ordered latency stream; `None` when the stream is
    /// too short for MSER-5 (fewer than 40 samples).
    pub(crate) fn from_stream(stream: &[f64], configured_warmup: u64) -> Option<WarmupAudit> {
        let r = mser5(stream)?;
        Some(WarmupAudit {
            truncation: r.truncation as u64,
            statistic: r.statistic,
            configured_warmup,
            samples: stream.len() as u64,
        })
    }
}

/// Exact `(p50, p95, p99)` once at least one sample is recorded — the
/// shared percentile extraction of both engines' sinks.
pub(crate) fn exact_percentiles(p: &mut Percentiles) -> Option<(f64, f64, f64)> {
    Some((p.quantile(0.5)?, p.quantile(0.95)?, p.quantile(0.99)?))
}

/// Why a run's event loop stopped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The configured measured population was fully delivered.
    #[default]
    MeasuredComplete,
    /// The future-event list ran dry before the measured population
    /// completed — under fault injection this is the graceful-degradation
    /// exit: every message was delivered or written off as unreachable.
    Drained,
    /// The event cap was hit first — in practice, saturation.
    EventCap,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopReason::MeasuredComplete => "measured population complete",
            StopReason::Drained => "event queue drained (undelivered messages written off)",
            StopReason::EventCap => "event cap reached",
        })
    }
}

/// Everything a simulation run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResults {
    /// Latency summary over all recorded messages.
    pub latency: Summary,
    /// Latency summary of intra-cluster messages only.
    pub intra: Summary,
    /// Latency summary of inter-cluster messages only.
    pub inter: Summary,
    /// Latency summary per source cluster.
    pub per_cluster: Vec<Summary>,
    /// Total messages generated (including warm-up and drain).
    pub generated: u64,
    /// Recorded messages delivered (equals the configured `measured` count
    /// when `completed`).
    pub delivered_recorded: u64,
    /// Whether the run delivered its full measured population. `false`
    /// means the event cap was hit first — in practice, saturation.
    pub completed: bool,
    /// Simulation clock at termination.
    pub sim_time: f64,
    /// Optional latency histogram.
    pub histogram: Option<Histogram>,
    /// Cumulative busy time per global channel; divide by `sim_time` for
    /// utilisation. Indexed like [`crate::BuiltSystem`]'s channel table.
    pub channel_busy: Vec<f64>,
    /// Event traces of the first `trace_messages` generated messages
    /// (worm engine only; empty when tracing is off).
    pub traces: Vec<MessageTrace>,
    /// Exact latency percentiles `(p50, p95, p99)` when
    /// `collect_percentiles` was set (both engines).
    pub percentiles: Option<(f64, f64, f64)>,
    /// MSER-5 warm-up audit when `audit_warmup` was set and the run
    /// delivered enough messages to scan (see [`WarmupAudit`]).
    pub warmup_audit: Option<WarmupAudit>,
    /// Total events the engine processed (one heap pop each) — the
    /// numerator of the events/sec throughput metric.
    pub events_processed: u64,
    /// High-water mark of the message slab: the peak number of
    /// concurrently live messages. Delivered slots are recycled, so this —
    /// not the generated population — bounds the engine's memory.
    pub peak_live_msgs: u64,
    /// Messages fully delivered, recorded or not (warm-up and drain
    /// included). With fault injection this is the numerator of the
    /// delivered fraction.
    #[serde(default)]
    pub delivered_total: u64,
    /// Transmissions aborted at a failed channel (each retry attempt that
    /// ran into a fault counts once).
    #[serde(default)]
    pub dropped: u64,
    /// Retransmissions performed after a retry timeout.
    #[serde(default)]
    pub retransmits: u64,
    /// Messages written off: destination statically partitioned away, or
    /// the retry budget was exhausted. Never silently lost — the
    /// accounting identity `generated == delivered_total + unreachable +
    /// live-in-flight-at-stop` holds at every exit.
    #[serde(default)]
    pub unreachable: u64,
    /// Why the event loop stopped (see [`StopReason`]).
    #[serde(default)]
    pub stop: StopReason,
}

/// The engine-loop throughput counters threaded into
/// [`SimResults::collect`] — a named pair so the two `u64`s cannot be
/// swapped silently at a call site.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EngineCounters {
    /// Events processed (one heap pop each).
    pub events_processed: u64,
    /// Message-slab high-water mark.
    pub peak_live_msgs: u64,
    /// Messages fully delivered (recorded or not).
    pub delivered_total: u64,
    /// Transmissions aborted at a failed channel.
    pub dropped: u64,
    /// Retransmissions performed.
    pub retransmits: u64,
    /// Messages written off as unreachable.
    pub unreachable: u64,
    /// Why the event loop stopped.
    pub stop: StopReason,
}

impl SimResults {
    /// Assembles results from the engine's sinks.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collect(
        latency: &OnlineStats,
        intra: &OnlineStats,
        inter: &OnlineStats,
        per_cluster: &[OnlineStats],
        generated: u64,
        delivered_recorded: u64,
        completed: bool,
        sim_time: f64,
        histogram: Option<Histogram>,
        channel_busy: Vec<f64>,
        traces: Vec<MessageTrace>,
        percentiles: Option<(f64, f64, f64)>,
        warmup_audit: Option<WarmupAudit>,
        counters: EngineCounters,
    ) -> Self {
        Self {
            latency: Summary::from_stats(latency),
            intra: Summary::from_stats(intra),
            inter: Summary::from_stats(inter),
            per_cluster: per_cluster.iter().map(Summary::from_stats).collect(),
            generated,
            delivered_recorded,
            completed,
            sim_time,
            histogram,
            channel_busy,
            traces,
            percentiles,
            warmup_audit,
            events_processed: counters.events_processed,
            peak_live_msgs: counters.peak_live_msgs,
            delivered_total: counters.delivered_total,
            dropped: counters.dropped,
            retransmits: counters.retransmits,
            unreachable: counters.unreachable,
            stop: counters.stop,
        }
    }

    /// Observed share of inter-cluster messages among recorded ones.
    pub fn inter_fraction(&self) -> f64 {
        let total = self.intra.count + self.inter.count;
        if total == 0 {
            0.0
        } else {
            self.inter.count as f64 / total as f64
        }
    }

    /// Fraction of generated messages that were fully delivered — the
    /// degradation sweep's y-axis. `1.0` for an empty run.
    pub fn delivered_fraction(&self) -> f64 {
        if self.generated == 0 {
            1.0
        } else {
            self.delivered_total as f64 / self.generated as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_fraction_handles_empty() {
        let empty = OnlineStats::new();
        let r = SimResults::collect(
            &empty,
            &empty,
            &empty,
            &[],
            0,
            0,
            false,
            0.0,
            None,
            Vec::new(),
            Vec::new(),
            None,
            None,
            EngineCounters::default(),
        );
        assert_eq!(r.inter_fraction(), 0.0);
    }

    #[test]
    fn inter_fraction_computes_share() {
        let mut intra = OnlineStats::new();
        let mut inter = OnlineStats::new();
        for _ in 0..25 {
            intra.push(1.0);
        }
        for _ in 0..75 {
            inter.push(2.0);
        }
        let mut all = OnlineStats::new();
        all.merge(&intra);
        all.merge(&inter);
        let r = SimResults::collect(
            &all,
            &intra,
            &inter,
            &[],
            100,
            100,
            true,
            1.0,
            None,
            Vec::new(),
            Vec::new(),
            None,
            None,
            EngineCounters {
                events_processed: 100,
                peak_live_msgs: 4,
                ..EngineCounters::default()
            },
        );
        assert!((r.inter_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn warmup_audit_flags_long_transients_only() {
        // 100 transient samples then a stationary phase: MSER-5 detects a
        // truncation near 100, so a 50-message warm-up is flagged and a
        // 500-message warm-up is not.
        let mut stream = Vec::new();
        for i in 0..100 {
            stream.push(200.0 * (-(i as f64) / 25.0).exp() + 10.0);
        }
        for i in 0..900 {
            stream.push(10.0 + if i % 2 == 0 { 0.3 } else { -0.3 });
        }
        let audit = WarmupAudit::from_stream(&stream, 50).unwrap();
        assert_eq!(audit.samples, 1000);
        assert!(audit.truncation.is_multiple_of(5));
        assert!(
            (60..=150).contains(&audit.truncation),
            "truncation {}",
            audit.truncation
        );
        assert!(audit.exceeds());
        let ok = WarmupAudit {
            configured_warmup: 500,
            ..audit
        };
        assert!(!ok.exceeds());
        // Too short a stream yields no audit at all.
        assert!(WarmupAudit::from_stream(&stream[..39], 10).is_none());
    }
}
