//! Simulation result collection.

use crate::trace::MessageTrace;
use cocnet_stats::{Histogram, OnlineStats, Summary};
use serde::{Deserialize, Serialize};

/// Everything a simulation run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResults {
    /// Latency summary over all recorded messages.
    pub latency: Summary,
    /// Latency summary of intra-cluster messages only.
    pub intra: Summary,
    /// Latency summary of inter-cluster messages only.
    pub inter: Summary,
    /// Latency summary per source cluster.
    pub per_cluster: Vec<Summary>,
    /// Total messages generated (including warm-up and drain).
    pub generated: u64,
    /// Recorded messages delivered (equals the configured `measured` count
    /// when `completed`).
    pub delivered_recorded: u64,
    /// Whether the run delivered its full measured population. `false`
    /// means the event cap was hit first — in practice, saturation.
    pub completed: bool,
    /// Simulation clock at termination.
    pub sim_time: f64,
    /// Optional latency histogram.
    pub histogram: Option<Histogram>,
    /// Cumulative busy time per global channel; divide by `sim_time` for
    /// utilisation. Indexed like [`crate::BuiltSystem`]'s channel table.
    pub channel_busy: Vec<f64>,
    /// Event traces of the first `trace_messages` generated messages
    /// (worm engine only; empty when tracing is off).
    pub traces: Vec<MessageTrace>,
    /// Exact latency percentiles `(p50, p95, p99)` when
    /// `collect_percentiles` was set (worm engine only).
    pub percentiles: Option<(f64, f64, f64)>,
    /// Total events the engine processed (one heap pop each) — the
    /// numerator of the events/sec throughput metric.
    pub events_processed: u64,
    /// High-water mark of the message slab: the peak number of
    /// concurrently live messages. Delivered slots are recycled, so this —
    /// not the generated population — bounds the engine's memory.
    pub peak_live_msgs: u64,
}

/// The engine-loop throughput counters threaded into
/// [`SimResults::collect`] — a named pair so the two `u64`s cannot be
/// swapped silently at a call site.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EngineCounters {
    /// Events processed (one heap pop each).
    pub events_processed: u64,
    /// Message-slab high-water mark.
    pub peak_live_msgs: u64,
}

impl SimResults {
    /// Assembles results from the engine's sinks.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collect(
        latency: &OnlineStats,
        intra: &OnlineStats,
        inter: &OnlineStats,
        per_cluster: &[OnlineStats],
        generated: u64,
        delivered_recorded: u64,
        completed: bool,
        sim_time: f64,
        histogram: Option<Histogram>,
        channel_busy: Vec<f64>,
        traces: Vec<MessageTrace>,
        percentiles: Option<(f64, f64, f64)>,
        counters: EngineCounters,
    ) -> Self {
        Self {
            latency: Summary::from_stats(latency),
            intra: Summary::from_stats(intra),
            inter: Summary::from_stats(inter),
            per_cluster: per_cluster.iter().map(Summary::from_stats).collect(),
            generated,
            delivered_recorded,
            completed,
            sim_time,
            histogram,
            channel_busy,
            traces,
            percentiles,
            events_processed: counters.events_processed,
            peak_live_msgs: counters.peak_live_msgs,
        }
    }

    /// Observed share of inter-cluster messages among recorded ones.
    pub fn inter_fraction(&self) -> f64 {
        let total = self.intra.count + self.inter.count;
        if total == 0 {
            0.0
        } else {
            self.inter.count as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_fraction_handles_empty() {
        let empty = OnlineStats::new();
        let r = SimResults::collect(
            &empty,
            &empty,
            &empty,
            &[],
            0,
            0,
            false,
            0.0,
            None,
            Vec::new(),
            Vec::new(),
            None,
            EngineCounters::default(),
        );
        assert_eq!(r.inter_fraction(), 0.0);
    }

    #[test]
    fn inter_fraction_computes_share() {
        let mut intra = OnlineStats::new();
        let mut inter = OnlineStats::new();
        for _ in 0..25 {
            intra.push(1.0);
        }
        for _ in 0..75 {
            inter.push(2.0);
        }
        let mut all = OnlineStats::new();
        all.merge(&intra);
        all.merge(&inter);
        let r = SimResults::collect(
            &all,
            &intra,
            &inter,
            &[],
            100,
            100,
            true,
            1.0,
            None,
            Vec::new(),
            Vec::new(),
            None,
            EngineCounters {
                events_processed: 100,
                peak_live_msgs: 4,
            },
        );
        assert!((r.inter_fraction() - 0.75).abs() < 1e-12);
    }
}
