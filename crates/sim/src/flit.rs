//! Flit-level reference engine.
//!
//! The default worm engine treats a message as one unit whose tail drains
//! at the segment's bottleneck rate — exact in steady state, approximate in
//! transients. This engine simulates **every flit individually** under the
//! strict buffered-channel semantics of assumption 6:
//!
//! * each channel has a wire (one flit in transit) and a receive buffer of
//!   `SimConfig::flit_buffer_depth` flits (assumption 6 is depth 1, the
//!   default; deeper buffers are the `buffer_depth` extension experiment);
//! * a flit may start crossing channel `j` only when `j` is allocated to
//!   its message (wormhole), the wire is free, and the receive buffer has
//!   room (the last channel's receiver is the always-accepting sink);
//! * a channel is released the moment the tail flit vacates its receive
//!   buffer.
//!
//! Segment boundaries (concentrator/dispatcher) are store-and-forward
//! here: the message is fully buffered before re-injection. That gives the
//! engine exact, assumption-free semantics — which is the point of a
//! reference implementation — at the cost of the boundary serialization
//! the worm engine's virtual cut-through avoids. Cross-validation against
//! the worm engine therefore uses `Coupling::StoreAndForward`
//! (see `tests/engine_agreement.rs` and the `engine_agreement` bench bin).
//!
//! Like the worm engine, the event loop is allocation-free in steady
//! state: messages are small `Copy` slab entries referencing the interned
//! [`RouteTable`](`crate::build::RouteTable`) (this engine is always
//! deterministic, so every route is interned), delivered slots are
//! recycled through a free list, and the heap/FIFOs retain capacity.

use crate::build::{BuiltSystem, RouteRef, RouteTable, SegMeta};
use crate::config::{FaultAction, SchedulerKind, SimConfig};
use crate::events::{CalendarQueue, EventQueue, Scheduler};
use crate::results::{exact_percentiles, SimResults, StopReason, WarmupAudit};
use cocnet_model::Workload;
use cocnet_stats::{Histogram, OnlineStats, Percentiles};
use cocnet_topology::SystemSpec;
use cocnet_workloads::{exponential_sample, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Generate {
        node: u32,
    },
    /// Flit `flit` of `msg` finished crossing the channel at `pos` of the
    /// message's current segment.
    CrossComplete {
        msg: u32,
        flit: u32,
        pos: u32,
    },
    /// Timed fault-schedule entry: the link (and its reverse) fails or is
    /// repaired at the event's time.
    Fault {
        link: u32,
        fail: bool,
    },
    /// A dropped message's retry timeout expired: re-enter from source.
    Retransmit {
        msg: u32,
    },
}

/// Per-channel flit-level state.
#[derive(Debug)]
struct ChanF {
    /// Per-flit crossing time.
    t: f64,
    /// Message currently holding the channel (wormhole allocation).
    owner: Option<u32>,
    /// Whether a flit is in transit on the wire.
    wire_busy: bool,
    /// The receive buffer, FIFO of `(msg, flit)`; capacity =
    /// `cfg.flit_buffer_depth` (assumption 6: depth 1).
    buf: VecDeque<(u32, u32)>,
    /// Headers waiting for allocation: `(msg, header_wait_pos)` where the
    /// header sits at `wait_pos` (−1 encoded as `i32`) of its own path.
    queue: VecDeque<(u32, i32)>,
}

/// One in-flight message (slab slot). The route lives in the interned
/// table; the current segment's channel range is cached inline.
#[derive(Debug, Clone, Copy)]
struct MsgF {
    gen_time: f64,
    /// Interned route (this engine has no adaptive mode).
    route: RouteRef,
    /// Cached metadata of the current segment (only `start`/`len` used).
    cur: SegMeta,
    /// Current segment index.
    seg: u8,
    /// Total segments on the route.
    nsegs: u8,
    /// Flits already injected into the current segment.
    injected: u32,
    recorded: bool,
    /// Whether this message feeds the warm-up audit stream.
    audited: bool,
    intra: bool,
    src_cluster: u32,
    /// Completed transmission attempts that hit a failed channel.
    attempt: u32,
}

impl MsgF {
    /// Placeholder for freshly grown slab slots (overwritten before use).
    const VACANT: MsgF = MsgF {
        gen_time: 0.0,
        route: RouteRef::DYNAMIC,
        cur: SegMeta {
            start: 0,
            len: 0,
            sum_t: 0.0,
            bottleneck_t: 0.0,
        },
        seg: 0,
        nsegs: 0,
        injected: 0,
        recorded: false,
        audited: false,
        intra: false,
        src_cluster: 0,
        attempt: 0,
    };
}

struct FlitSimulator<'a, S: Scheduler<EventKind>> {
    built: &'a BuiltSystem,
    routes: &'a RouteTable,
    cfg: SimConfig,
    depth: usize,
    m_flits: u32,
    lambda: f64,
    pattern: Pattern,
    rng: StdRng,
    /// The future-event list — monomorphized per backend.
    queue: S,
    chans: Vec<ChanF>,
    msgs: Vec<MsgF>,
    free: Vec<u32>,
    generated: u64,
    recorded_done: u64,
    events_processed: u64,
    now: f64,
    /// Per-channel failure mask (empty = zero-fault fast path, see the
    /// worm engine).
    failed: Vec<bool>,
    delivered_total: u64,
    dropped: u64,
    retransmits: u64,
    unreachable: u64,
    latency: OnlineStats,
    intra_lat: OnlineStats,
    inter_lat: OnlineStats,
    per_cluster: Vec<OnlineStats>,
    histogram: Option<Histogram>,
    busy_total: Vec<f64>,
    busy_since: Vec<f64>,
    /// Raw samples for exact percentiles (when enabled).
    percentiles: Option<Percentiles>,
    /// Delivery-ordered latencies of the warm-up + measured populations,
    /// for the MSER-5 warm-up audit (when enabled).
    audit: Option<Vec<f64>>,
}

impl<'a, S: Scheduler<EventKind>> FlitSimulator<'a, S> {
    fn new(built: &'a BuiltSystem, wl: &Workload, pattern: Pattern, cfg: SimConfig) -> Self {
        assert!(wl.lambda_g > 0.0, "simulation needs a positive rate");
        let chans = (0..built.num_channels())
            .map(|c| ChanF {
                t: built.chan_time(c as u32),
                owner: None,
                wire_busy: false,
                buf: VecDeque::new(),
                queue: VecDeque::new(),
            })
            .collect();
        let histogram = cfg
            .histogram
            .map(|(hi, bins)| Histogram::new(0.0, hi, bins));
        assert!(cfg.flit_buffer_depth >= 1, "buffers need at least one slot");
        let percentiles = if cfg.collect_percentiles {
            Some(Percentiles::with_capacity(cfg.measured as usize))
        } else {
            None
        };
        let audit = if cfg.audit_warmup {
            Some(Vec::with_capacity((cfg.warmup + cfg.measured) as usize))
        } else {
            None
        };
        let rng = StdRng::seed_from_u64(cfg.seed);
        let failed = if built.static_failed().is_empty() && !cfg.faults.events.is_empty() {
            vec![false; built.num_channels()]
        } else {
            built.static_failed().to_vec()
        };
        Self {
            built,
            routes: built.route_table(),
            depth: cfg.flit_buffer_depth as usize,
            cfg,
            m_flits: wl.msg_flits,
            lambda: wl.lambda_g,
            pattern,
            rng,
            queue: S::new(),
            chans,
            msgs: Vec::new(),
            free: Vec::new(),
            generated: 0,
            recorded_done: 0,
            events_processed: 0,
            now: 0.0,
            failed,
            delivered_total: 0,
            dropped: 0,
            retransmits: 0,
            unreachable: 0,
            latency: OnlineStats::new(),
            intra_lat: OnlineStats::new(),
            inter_lat: OnlineStats::new(),
            per_cluster: vec![OnlineStats::new(); built.spec().num_clusters()],
            histogram,
            busy_total: vec![0.0; built.num_channels()],
            busy_since: vec![0.0; built.num_channels()],
            percentiles,
            audit,
        }
    }

    fn run(mut self) -> SimResults {
        // Faults first so a t = 0 failure is in force before any traffic.
        for ev in &self.cfg.faults.events {
            self.queue.schedule(
                ev.time,
                EventKind::Fault {
                    link: ev.link,
                    fail: matches!(ev.action, FaultAction::Fail),
                },
            );
        }
        for node in 0..self.built.total_nodes() {
            let gap = exponential_sample(&mut self.rng, self.lambda);
            self.queue
                .schedule(gap, EventKind::Generate { node: node as u32 });
        }
        let mut completed = false;
        let mut stop = StopReason::Drained;
        while let Some(ev) = self.queue.pop() {
            self.events_processed += 1;
            if self.events_processed > self.cfg.max_events {
                stop = StopReason::EventCap;
                break;
            }
            self.now = ev.time;
            match ev.kind {
                EventKind::Generate { node } => self.on_generate(node, ev.time),
                EventKind::CrossComplete { msg, flit, pos } => {
                    self.on_cross_complete(msg, flit, pos, ev.time)
                }
                EventKind::Fault { link, fail } => self.on_fault(link, fail),
                EventKind::Retransmit { msg } => self.on_retransmit(msg, ev.time),
            }
            if self.recorded_done >= self.cfg.measured {
                completed = true;
                stop = StopReason::MeasuredComplete;
                break;
            }
        }
        // Flush the open busy interval of channels still allocated when
        // the run ends, as in the worm engine.
        for chan in 0..self.chans.len() {
            if self.chans[chan].owner.is_some() {
                self.busy_total[chan] += self.now - self.busy_since[chan];
            }
        }
        let percentiles = self.percentiles.as_mut().and_then(exact_percentiles);
        let audit = self
            .audit
            .as_deref()
            .and_then(|stream| WarmupAudit::from_stream(stream, self.cfg.warmup));
        SimResults::collect(
            &self.latency,
            &self.intra_lat,
            &self.inter_lat,
            &self.per_cluster,
            self.generated,
            self.recorded_done,
            completed,
            self.now,
            self.histogram,
            self.busy_total,
            Vec::new(),
            percentiles,
            audit,
            crate::results::EngineCounters {
                events_processed: self.events_processed,
                peak_live_msgs: self.msgs.len() as u64,
                delivered_total: self.delivered_total,
                dropped: self.dropped,
                retransmits: self.retransmits,
                unreachable: self.unreachable,
                stop,
            },
        )
    }

    /// Applies a timed fault-schedule entry; the reverse channel fails and
    /// recovers in tandem. Faults act at segment admission in this engine
    /// (see [`inject_segment`](Self::inject_segment)): flits already
    /// streaming through a segment complete it.
    fn on_fault(&mut self, link: u32, fail: bool) {
        debug_assert!(!self.failed.is_empty(), "fault events imply a full mask");
        self.failed[link as usize] = fail;
        self.failed[(link ^ 1) as usize] = fail;
    }

    /// Whether any channel of the message's current segment is failed —
    /// the admission check. The flit engine's store-and-forward boundaries
    /// mean a message holds no channels at admission time, so a drop here
    /// never strands wormhole state.
    fn segment_blocked(&self, msg_id: u32) -> bool {
        if self.failed.is_empty() {
            return false;
        }
        let m = &self.msgs[msg_id as usize];
        (0..m.cur.len).any(|k| self.failed[self.routes.chan_at(m.cur.start + k as u64) as usize])
    }

    /// Drops a message refused admission to a faulted segment: retransmit
    /// from source after the retry timeout, or write it off as unreachable
    /// once the attempt budget is exhausted.
    fn drop_msg(&mut self, msg_id: u32, t: f64) {
        self.dropped += 1;
        let attempt = self.msgs[msg_id as usize].attempt;
        if attempt + 1 >= self.cfg.faults.max_attempts {
            self.unreachable += 1;
            self.free.push(msg_id);
        } else {
            let delay = self.cfg.faults.retry_delay(attempt);
            self.queue
                .schedule(t + delay, EventKind::Retransmit { msg: msg_id });
        }
    }

    /// Retry timeout expired: re-enter from the source with the original
    /// generation time-stamp (latency includes every retry delay).
    fn on_retransmit(&mut self, msg_id: u32, t: f64) {
        self.retransmits += 1;
        let route = self.msgs[msg_id as usize].route;
        let cur = self.routes.seg_meta(route, 0);
        let mm = &mut self.msgs[msg_id as usize];
        mm.attempt += 1;
        mm.seg = 0;
        mm.injected = 0;
        mm.cur = cur;
        self.inject_segment(msg_id, t);
    }

    fn on_generate(&mut self, node: u32, t: f64) {
        if self.generated >= self.cfg.total_messages() {
            return;
        }
        let src = node as usize;
        let dst = self.pattern.sample(self.built.spec(), src, &mut self.rng);
        if self.routes.is_unreachable(src, dst) {
            // Statically partitioned destination: account the message
            // without allocating a slab slot, keep the arrival stream
            // going.
            self.generated += 1;
            self.unreachable += 1;
            if self.generated < self.cfg.total_messages() {
                let gap = exponential_sample(&mut self.rng, self.lambda);
                self.queue.schedule(t + gap, EventKind::Generate { node });
            }
            return;
        }
        let recorded = self.generated >= self.cfg.warmup
            && self.generated < self.cfg.warmup + self.cfg.measured;
        let audited = self.audit.is_some() && self.generated < self.cfg.warmup + self.cfg.measured;
        self.generated += 1;
        let route = self.routes.route_ref(src, dst);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.msgs.len() as u32;
                self.msgs.push(MsgF::VACANT);
                s
            }
        };
        self.msgs[slot as usize] = MsgF {
            gen_time: t,
            route,
            cur: self.routes.seg_meta(route, 0),
            seg: 0,
            nsegs: self.routes.num_segments(route) as u8,
            injected: 0,
            recorded,
            audited,
            intra: self.built.cluster_of(src) == self.built.cluster_of(dst),
            src_cluster: self.built.cluster_of(src) as u32,
            attempt: 0,
        };
        self.inject_segment(slot, t);
        if self.generated < self.cfg.total_messages() {
            let gap = exponential_sample(&mut self.rng, self.lambda);
            self.queue.schedule(t + gap, EventKind::Generate { node });
        }
    }

    /// The message (fully buffered) requests its current segment's first
    /// channel; the header sits at source position −1.
    fn inject_segment(&mut self, msg_id: u32, t: f64) {
        if self.segment_blocked(msg_id) {
            self.drop_msg(msg_id, t);
            return;
        }
        let chan = self.chan_at(msg_id, 0);
        let c = &mut self.chans[chan as usize];
        if c.owner.is_none() {
            c.owner = Some(msg_id);
            self.busy_since[chan as usize] = t;
            self.try_move(msg_id, -1, t);
        } else {
            c.queue.push_back((msg_id, -1));
        }
    }

    /// Channel id at `pos` of the message's current segment.
    #[inline]
    fn chan_at(&self, msg_id: u32, pos: u32) -> u32 {
        let m = &self.msgs[msg_id as usize];
        self.routes.chan_at(m.cur.start + pos as u64)
    }

    #[inline]
    fn seg_len(&self, msg_id: u32) -> u32 {
        self.msgs[msg_id as usize].cur.len
    }

    /// Attempts to move the flit at `from_pos` (−1 = source buffer) one
    /// channel forward. Returns whether a move started. On success,
    /// recursively lets the flit behind advance into the freed buffer.
    fn try_move(&mut self, msg_id: u32, from_pos: i32, t: f64) -> bool {
        let to = (from_pos + 1) as u32;
        if to >= self.seg_len(msg_id) {
            return false;
        }
        // Identify the flit at from_pos.
        let flit = if from_pos < 0 {
            let m = &self.msgs[msg_id as usize];
            if m.injected >= self.m_flits {
                return false; // nothing left to inject
            }
            m.injected
        } else {
            match self.chans[self.chan_at(msg_id, from_pos as u32) as usize]
                .buf
                .front()
            {
                Some(&(owner, f)) if owner == msg_id => f,
                _ => return false,
            }
        };
        let to_chan = self.chan_at(msg_id, to);
        let last = to == self.seg_len(msg_id) - 1;
        {
            let c = &self.chans[to_chan as usize];
            if c.owner != Some(msg_id) || c.wire_busy {
                return false;
            }
            // Receive buffer must have room, except at the last channel
            // whose receiver is the always-accepting sink / boundary buffer.
            if !last && c.buf.len() >= self.depth {
                return false;
            }
        }
        // Start the crossing.
        let crossing_time = self.chans[to_chan as usize].t;
        self.chans[to_chan as usize].wire_busy = true;
        if from_pos >= 0 {
            let from_chan = self.chan_at(msg_id, from_pos as u32);
            self.chans[from_chan as usize].buf.pop_front();
        } else {
            self.msgs[msg_id as usize].injected += 1;
        }
        // The tail vacating a receive buffer releases that channel.
        if flit == self.m_flits - 1 && from_pos >= 0 {
            let freed = self.chan_at(msg_id, from_pos as u32);
            self.release(freed, t);
        }
        self.queue.schedule(
            t + crossing_time,
            EventKind::CrossComplete {
                msg: msg_id,
                flit,
                pos: to,
            },
        );
        // The freed slot lets the flit behind advance immediately.
        self.try_move(msg_id, from_pos - 1, t);
        true
    }

    fn on_cross_complete(&mut self, msg_id: u32, flit: u32, pos: u32, t: f64) {
        let seg_len = self.seg_len(msg_id);
        let chan = self.chan_at(msg_id, pos);
        self.chans[chan as usize].wire_busy = false;
        let last = pos == seg_len - 1;
        if last {
            // Delivered into the sink (or the boundary buffer).
            if flit == self.m_flits - 1 {
                self.release(chan, t);
                self.segment_done(msg_id, t);
            } else {
                // The wire freed; the next flit can follow.
                self.try_move(msg_id, pos as i32 - 1, t);
            }
            return;
        }
        self.chans[chan as usize].buf.push_back((msg_id, flit));
        if flit == 0 {
            // Header allocates the next channel.
            let next_chan = self.chan_at(msg_id, pos + 1);
            let c = &mut self.chans[next_chan as usize];
            if c.owner.is_none() {
                c.owner = Some(msg_id);
                self.busy_since[next_chan as usize] = t;
            } else if c.owner != Some(msg_id) {
                c.queue.push_back((msg_id, pos as i32));
            }
        }
        // This flit may continue; if it does, the one behind follows.
        if !self.try_move(msg_id, pos as i32, t) {
            // Buffer stays occupied; upstream cannot advance into it, but
            // the wire we just freed may admit the previous flit once our
            // buffer clears later. Nothing else to do now.
        }
    }

    /// Releases a channel: account busy time and grant to the next queued
    /// header (whose message may immediately start moving).
    fn release(&mut self, chan: u32, t: f64) {
        self.busy_total[chan as usize] += t - self.busy_since[chan as usize];
        let next = self.chans[chan as usize].queue.pop_front();
        match next {
            Some((w, wait_pos)) => {
                self.chans[chan as usize].owner = Some(w);
                self.busy_since[chan as usize] = t;
                self.try_move(w, wait_pos, t);
            }
            None => self.chans[chan as usize].owner = None,
        }
    }

    /// The tail of the current segment arrived: store-and-forward into the
    /// next segment, or deliver.
    fn segment_done(&mut self, msg_id: u32, t: f64) {
        let m = self.msgs[msg_id as usize];
        if m.seg + 1 < m.nsegs {
            let next = self.routes.seg_meta(m.route, m.seg as u32 + 1);
            let mm = &mut self.msgs[msg_id as usize];
            mm.seg += 1;
            mm.injected = 0;
            mm.cur = next;
            self.inject_segment(msg_id, t);
            return;
        }
        self.delivered_total += 1;
        let latency = t - m.gen_time;
        if m.audited {
            if let Some(a) = &mut self.audit {
                a.push(latency);
            }
        }
        if m.recorded {
            self.latency.push(latency);
            if m.intra {
                self.intra_lat.push(latency);
            } else {
                self.inter_lat.push(latency);
            }
            self.per_cluster[m.src_cluster as usize].push(latency);
            if let Some(h) = &mut self.histogram {
                h.record(latency);
            }
            if let Some(p) = &mut self.percentiles {
                p.record(latency);
            }
            self.recorded_done += 1;
        }
        self.free.push(msg_id);
    }
}

/// Runs one simulation with the flit-level reference engine.
///
/// Boundaries are store-and-forward regardless of `cfg.coupling`; compare
/// against the worm engine with `Coupling::StoreAndForward`.
pub fn run_simulation_flit(
    spec: &SystemSpec,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
) -> SimResults {
    let built = BuiltSystem::try_build_with(
        spec,
        wl.flit_bytes,
        cocnet_topology::AscentPolicy::default(),
        &cfg.faults,
    )
    .unwrap_or_else(|e| panic!("invalid fault schedule (validate it first): {e}"));
    run_simulation_flit_built(&built, wl, pattern, cfg)
}

/// Like [`run_simulation_flit`] with a pre-built system.
pub fn run_simulation_flit_built(
    built: &BuiltSystem,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
) -> SimResults {
    match cfg.scheduler {
        SchedulerKind::Heap => {
            FlitSimulator::<EventQueue<EventKind>>::new(built, wl, pattern, cfg.clone()).run()
        }
        SchedulerKind::Calendar => {
            FlitSimulator::<CalendarQueue<EventKind>>::new(built, wl, pattern, cfg.clone()).run()
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Coupling;
    use crate::engine::run_simulation;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn spec() -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
            topology: Default::default(),
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net1).unwrap()
    }

    fn cfg(seed: u64) -> SimConfig {
        SimConfig {
            warmup: 300,
            measured: 3_000,
            drain: 300,
            seed,
            coupling: Coupling::StoreAndForward,
            ..SimConfig::default()
        }
    }

    #[test]
    fn completes_and_is_deterministic() {
        let wl = Workload::new(1e-4, 8, 256.0).unwrap();
        let a = run_simulation_flit(&spec(), &wl, Pattern::Uniform, &cfg(1));
        let b = run_simulation_flit(&spec(), &wl, Pattern::Uniform, &cfg(1));
        assert!(a.completed);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.delivered_recorded, 3_000);
    }

    #[test]
    fn calendar_scheduler_bit_identical_to_heap() {
        let wl = Workload::new(4e-4, 8, 256.0).unwrap();
        let heap = run_simulation_flit(&spec(), &wl, Pattern::Uniform, &cfg(2));
        let cal = run_simulation_flit(
            &spec(),
            &wl,
            Pattern::Uniform,
            &SimConfig {
                scheduler: SchedulerKind::Calendar,
                ..cfg(2)
            },
        );
        assert!(heap.completed && cal.completed);
        assert_eq!(heap.latency, cal.latency);
        assert_eq!(heap.sim_time.to_bits(), cal.sim_time.to_bits());
        assert_eq!(heap.events_processed, cal.events_processed);
    }

    #[test]
    fn single_message_pipeline_time_is_exact() {
        // With a near-zero rate every message travels alone; an intra
        // message crossing 2h channels with times t_0..t_{2h−1} must take
        // Σt + (M−1)·max(t) exactly (single-flit-buffer pipeline of
        // deterministic stages).
        let s = spec();
        let wl = Workload::new(1e-7, 4, 256.0).unwrap();
        let c = SimConfig {
            warmup: 0,
            measured: 50,
            drain: 0,
            seed: 9,
            coupling: Coupling::StoreAndForward,
            ..SimConfig::default()
        };
        let local = Pattern::ClusterLocal { locality: 1.0 };
        let flit = run_simulation_flit(&s, &wl, local, &c);
        let worm = run_simulation(&s, &wl, local, &c);
        assert!(flit.completed && worm.completed);
        // Same traffic (same seed/pattern): the two engines must agree up
        // to float summation order at zero contention (the flit engine
        // accumulates per-flit crossings; the worm engine uses the closed
        // form Σt + (M−1)·max t).
        assert!(
            (flit.latency.mean - worm.latency.mean).abs() < 1e-6,
            "flit {} vs worm {}",
            flit.latency.mean,
            worm.latency.mean
        );
    }

    #[test]
    fn agrees_with_worm_engine_under_load() {
        // Moderate load, full system, store-and-forward boundaries on both
        // engines: the worm engine's drain approximation must stay within
        // a few percent of the flit-exact reference.
        let s = spec();
        let wl = Workload::new(3e-4, 16, 256.0).unwrap();
        let flit = run_simulation_flit(&s, &wl, Pattern::Uniform, &cfg(3));
        let worm = run_simulation(&s, &wl, Pattern::Uniform, &cfg(3));
        assert!(flit.completed && worm.completed);
        let rel = (flit.latency.mean - worm.latency.mean).abs() / flit.latency.mean;
        assert!(
            rel < 0.05,
            "flit {} vs worm {} ({:.1}%)",
            flit.latency.mean,
            worm.latency.mean,
            rel * 100.0
        );
    }

    #[test]
    fn conservation_of_messages() {
        let wl = Workload::new(2e-4, 8, 256.0).unwrap();
        let r = run_simulation_flit(&spec(), &wl, Pattern::Uniform, &cfg(4));
        assert!(r.completed);
        assert_eq!(r.delivered_recorded, 3_000);
        assert!(r.generated >= r.delivered_recorded);
        let split = r.intra.count + r.inter.count;
        assert_eq!(split, r.delivered_recorded);
    }

    #[test]
    fn deeper_buffers_never_hurt() {
        // Extension beyond assumption 6: more flit buffering can only
        // reduce blocking. Latency must be non-increasing in depth.
        let s = spec();
        let wl = Workload::new(8e-4, 16, 256.0).unwrap();
        let mut last = f64::INFINITY;
        for depth in [1u32, 2, 4, 16] {
            let c = SimConfig {
                flit_buffer_depth: depth,
                ..cfg(11)
            };
            let r = run_simulation_flit(&s, &wl, Pattern::Uniform, &c);
            assert!(r.completed);
            assert!(
                r.latency.mean <= last * 1.01,
                "depth {depth}: {} > previous {last}",
                r.latency.mean
            );
            last = r.latency.mean;
        }
    }

    #[test]
    fn percentiles_collected_like_worm_engine() {
        // Both engines honour `collect_percentiles`; the flit reference
        // must report coherent order statistics without perturbing the run.
        let s = spec();
        let wl = Workload::new(3e-4, 16, 256.0).unwrap();
        let base = run_simulation_flit(&s, &wl, Pattern::Uniform, &cfg(6));
        assert!(base.percentiles.is_none());
        let collected = run_simulation_flit(
            &s,
            &wl,
            Pattern::Uniform,
            &SimConfig {
                collect_percentiles: true,
                ..cfg(6)
            },
        );
        assert_eq!(base.latency, collected.latency);
        let (p50, p95, p99) = collected.percentiles.unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= collected.latency.min && p99 <= collected.latency.max);
    }

    #[test]
    fn latency_grows_with_load() {
        let s = spec();
        let lo = run_simulation_flit(
            &s,
            &Workload::new(5e-5, 8, 256.0).unwrap(),
            Pattern::Uniform,
            &cfg(5),
        );
        let hi = run_simulation_flit(
            &s,
            &Workload::new(1e-3, 8, 256.0).unwrap(),
            Pattern::Uniform,
            &cfg(5),
        );
        assert!(lo.completed && hi.completed);
        assert!(hi.latency.mean > lo.latency.mean);
    }

    #[test]
    fn timed_fault_retry_accounting_is_exact() {
        // Permanently fail node 0's injection link at t = 0: messages are
        // refused admission to their first segment, retry, and exhaust
        // the budget. The drained run accounts for every message.
        let s = spec();
        let wl = Workload::new(2e-4, 8, 256.0).unwrap();
        let built = BuiltSystem::build(&s, wl.flit_bytes);
        let routes = built.route_table();
        let seg = routes.seg_meta(routes.route_ref(0, 1), 0);
        let dead = routes.chan_at(seg.start);
        let mut c = cfg(11);
        c.faults.events = vec![crate::config::FaultEvent {
            time: 0.0,
            link: dead,
            action: FaultAction::Fail,
        }];
        c.faults.max_attempts = 3;
        c.faults.retry_timeout = 50.0;
        c.faults.max_timeout = 200.0;
        let r = run_simulation_flit_built(&built, &wl, Pattern::Uniform, &c);
        assert!(!r.completed);
        assert_eq!(r.stop, StopReason::Drained);
        assert!(r.dropped > 0 && r.retransmits > 0 && r.unreachable > 0);
        assert_eq!(r.generated, r.delivered_total + r.unreachable);
        assert_eq!(r.dropped, r.retransmits + r.unreachable);
        assert_eq!(r.dropped, r.unreachable * c.faults.max_attempts as u64);
    }

    #[test]
    fn full_partition_terminates_gracefully() {
        let mut c = cfg(12);
        c.faults.link_fraction = 1.0;
        let wl = Workload::new(1e-4, 8, 256.0).unwrap();
        let r = run_simulation_flit(&spec(), &wl, Pattern::Uniform, &c);
        assert!(!r.completed);
        assert_eq!(r.stop, StopReason::Drained);
        assert!(r.generated > 0);
        assert_eq!(r.unreachable, r.generated);
        assert_eq!(r.delivered_total, 0);
        assert!(r.events_processed < c.max_events);
    }

    #[test]
    fn faulted_runs_bit_identical_across_schedulers() {
        // Static faults plus retries must stay deterministic under both
        // future-event-list backends.
        let wl = Workload::new(3e-4, 8, 256.0).unwrap();
        let mut base = cfg(13);
        base.faults.link_fraction = 0.1;
        base.faults.fault_seed = 7;
        let heap = run_simulation_flit(&spec(), &wl, Pattern::Uniform, &base);
        let cal = run_simulation_flit(
            &spec(),
            &wl,
            Pattern::Uniform,
            &SimConfig {
                scheduler: SchedulerKind::Calendar,
                ..base.clone()
            },
        );
        assert_eq!(heap.latency, cal.latency);
        assert_eq!(heap.sim_time.to_bits(), cal.sim_time.to_bits());
        assert_eq!(heap.generated, cal.generated);
        assert_eq!(heap.unreachable, cal.unreachable);
        assert_eq!(heap.delivered_total, cal.delivered_total);
    }
}
