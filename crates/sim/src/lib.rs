//! Discrete-event wormhole simulator for heterogeneous cluster-of-clusters
//! fat-tree networks — the validation substrate of the paper (§4).
//!
//! The simulator follows the paper's methodology: every node generates
//! fixed-length messages by an independent Poisson process, destinations
//! are drawn from a traffic pattern (uniform by default), message latencies
//! are measured from generation time-stamp to complete delivery at the sink,
//! and statistics gathering skips a warm-up prefix and is followed by a
//! drain phase of extra generated-but-unmeasured messages.
//!
//! # Wormhole model
//!
//! Channels have single-flit buffers and FIFO arbitration (assumption 6).
//! A message's header acquires channels hop by hop, holding everything
//! upstream while it waits — chained blocking emerges naturally. An
//! inter-cluster message crosses three networks (ECN1(i) → ICN2 → ECN1(j))
//! as three pipelined *segments* separated by the concentrator/dispatcher
//! buffers, which cut through (the header forwards immediately) but decouple
//! the drain rates of adjacent networks (an infinite-buffer assumption that
//! matches the paper's M/G/1 treatment of the concentrators).
//!
//! Within a segment, the tail drains at the segment's bottleneck link rate;
//! channel `k` is released once the tail has fully crossed it. This
//! message-level treatment is exact when `M ≥` path length (true for all of
//! the paper's workloads, `M ∈ {32, 64, 128}` vs. paths ≤ 14) and
//! approximate otherwise; see `DESIGN.md`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod build;
pub mod config;
pub mod engine;
pub mod events;
pub mod flit;
pub mod replicate;
pub mod results;
pub mod shard;
pub mod trace;

pub use build::{
    validate_faults, AdaptiveRouteCache, AdaptiveScratch, BuildError, BuiltSystem, CachedRoute,
    RouteRef, RouteTable, SegMeta, Segment,
};
pub use config::{
    Coupling, FaultAction, FaultEvent, FaultSchedule, InternMode, SchedulerKind, ShardMode,
    SimConfig,
};
pub use engine::{run_simulation, run_simulation_arrivals, run_simulation_built};
pub use events::{CalendarQueue, EventQueue, Scheduler, Timed};
pub use flit::{run_simulation_flit, run_simulation_flit_built};
pub use replicate::{
    replicate, replicate_parallel, summarize, ReplicationAccumulator, ReplicationSummary,
};
pub use results::{SimResults, StopReason, WarmupAudit};
pub use trace::{MessageTrace, TraceEvent, TraceEventKind};
