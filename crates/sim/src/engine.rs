//! The discrete-event wormhole engine.
//!
//! Three event kinds drive the simulation:
//!
//! * `Generate(node)` — a node's Poisson process fires: build the message,
//!   inject it into its first channel's FIFO, and schedule the next firing;
//! * `Advance(msg)` — the message's header finished crossing a channel:
//!   request the next channel (possibly across a segment boundary), or
//!   complete delivery;
//! * `Release(chan)` — a message's tail fully crossed a channel: hand the
//!   channel to the next queued message, or mark it free.
//!
//! Events are processed in `(time, sequence)` order, so runs are exactly
//! reproducible for a given seed.
//!
//! # No-allocation invariant
//!
//! The event loop is **allocation-free in steady state**, and every change
//! to it must keep it that way:
//!
//! * routes are never built per message — deterministic messages carry a
//!   [`RouteRef`] into the [`BuiltSystem`]'s interned [`RouteTable`]
//!   (channel ids in one flat array, per-segment `sum_t`/`bottleneck_t`
//!   precomputed at build time), and adaptive messages write their route
//!   into a per-slot arena whose buffers are reused when the slot is;
//! * `Msg` is a small `Copy` record; delivered messages push their slab
//!   slot onto a free list, so the live-message footprint is bounded by
//!   the peak in-flight population (reported as
//!   [`SimResults::peak_live_msgs`]), not by the run length;
//! * the event heap, per-channel FIFOs and arena buffers all retain their
//!   capacity, so a warmed-up loop performs no allocator calls at all;
//! * tracing is compiled out of the hot path via the `TRACE` const
//!   generic — with `trace_messages == 0` the per-event trace branches
//!   do not exist in the monomorphised engine.
//!
//! [`RouteRef`]: crate::build::RouteRef
//! [`RouteTable`]: crate::build::RouteTable
//! [`SimResults::peak_live_msgs`]: crate::results::SimResults::peak_live_msgs

use crate::build::{
    AdaptiveRouteCache, AdaptiveScratch, BuiltSystem, RouteRef, RouteTable, SegMeta,
};
use crate::config::{Coupling, FaultAction, SchedulerKind, SimConfig};
use crate::events::{CalendarQueue, EventQueue, Scheduler};
use crate::results::{exact_percentiles, SimResults, StopReason, WarmupAudit};
use crate::trace::{MessageTrace, TraceEvent, TraceEventKind};
use cocnet_model::Workload;
use cocnet_stats::{Histogram, OnlineStats, Percentiles};
use cocnet_topology::SystemSpec;
use cocnet_workloads::{ArrivalProcess, ArrivalSpec, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Generate {
        node: u32,
    },
    Advance {
        msg: u32,
    },
    Release {
        chan: u32,
    },
    /// Deferred channel request: the message becomes ready at the event's
    /// time (store-and-forward buffering completes) and then contends for
    /// the channel under its header cursor.
    Request {
        msg: u32,
    },
    /// Timed fault-schedule entry: the link (and its reverse) fails or is
    /// repaired at the event's time.
    Fault {
        link: u32,
        fail: bool,
    },
    /// A dropped message's retry timeout expired: re-enter from source.
    Retransmit {
        msg: u32,
    },
}

#[derive(Debug)]
struct Chan {
    /// Per-flit transfer time.
    t: f64,
    /// Whether a message currently holds this channel.
    busy: bool,
    /// Messages waiting for the channel, FIFO.
    queue: VecDeque<u32>,
}

/// One in-flight message: a slab slot's worth of `Copy` state. The route
/// itself lives in the interned table (or the adaptive arena); the current
/// segment's metadata is cached inline so the per-event path needs no
/// route resolution at all.
#[derive(Debug, Clone, Copy)]
struct Msg {
    gen_time: f64,
    /// Tail availability at the current segment's entrance (generation time
    /// for segment 0, previous segment's finish afterwards).
    prev_finish: f64,
    /// Cached metadata of the segment under the header.
    cur: SegMeta,
    /// Interned route, or [`RouteRef::DYNAMIC`] for adaptive messages.
    route: RouteRef,
    /// Generation index for tracing (`u32::MAX` when untraced).
    trace_id: u32,
    /// Current segment index of the header.
    seg: u8,
    /// Total segments on the route (1 intra, 3 inter).
    nsegs: u8,
    /// Channel index of the header within the current segment.
    idx: u16,
    /// Whether this message's latency is recorded (not warm-up/drain).
    recorded: bool,
    /// Whether this message feeds the warm-up audit stream (warm-up +
    /// measured populations when `cfg.audit_warmup` is on).
    audited: bool,
    /// Whether source and destination share a cluster.
    intra: bool,
    src_cluster: u32,
    /// Flat source node id (retransmissions re-enter here).
    src: u32,
    /// Flat destination node id.
    dst: u32,
    /// Completed transmission attempts that hit a failed channel.
    attempt: u32,
}

const UNTRACED: u32 = u32::MAX;

impl Msg {
    /// Placeholder for freshly grown slab slots (overwritten before use).
    const VACANT: Msg = Msg {
        gen_time: 0.0,
        prev_finish: 0.0,
        cur: SegMeta {
            start: 0,
            len: 0,
            sum_t: 0.0,
            bottleneck_t: 0.0,
        },
        route: RouteRef::DYNAMIC,
        trace_id: UNTRACED,
        seg: 0,
        nsegs: 0,
        idx: 0,
        recorded: false,
        audited: false,
        intra: false,
        src_cluster: 0,
        src: 0,
        dst: 0,
        attempt: 0,
    };
}

/// Per-slot adaptive route storage: channel ids plus the same precomputed
/// segment metadata the interned table carries. Buffers are reused when
/// the slab slot is, so steady-state adaptive routing allocates nothing.
#[derive(Debug, Default)]
struct DynRoute {
    chans: Vec<u32>,
    segs: [SegMeta; 3],
}

struct Simulator<'a, S: Scheduler<EventKind>, const TRACE: bool> {
    built: &'a BuiltSystem,
    routes: &'a RouteTable,
    cfg: SimConfig,
    m_flits: f64,
    /// Per-node arrival streams (independent state per node).
    arrivals: Vec<ArrivalProcess>,
    pattern: Pattern,
    rng: StdRng,
    /// The future-event list — monomorphized per backend, no dyn
    /// dispatch in the hot loop.
    queue: S,
    chans: Vec<Chan>,
    /// Message slab; `free` holds the slots of delivered messages.
    msgs: Vec<Msg>,
    free: Vec<u32>,
    /// Adaptive route arena, parallel to `msgs`.
    dyn_routes: Vec<DynRoute>,
    scratch: AdaptiveScratch,
    /// Memoized adaptive routes: repeated (pair, digits) draws reuse the
    /// materialised channel list instead of re-walking the graph maps.
    route_cache: AdaptiveRouteCache,
    generated: u64,
    recorded_done: u64,
    events_processed: u64,
    now: f64,
    /// Per-channel failure mask. Empty means "no faults anywhere" — the
    /// zero-fault fast path adds a single `is_empty` branch per check and
    /// leaves every run bit-identical to the pre-fault engine.
    failed: Vec<bool>,
    delivered_total: u64,
    dropped: u64,
    retransmits: u64,
    unreachable: u64,
    // Sinks.
    latency: OnlineStats,
    intra_lat: OnlineStats,
    inter_lat: OnlineStats,
    per_cluster: Vec<OnlineStats>,
    histogram: Option<Histogram>,
    /// Cumulative busy time per channel (diagnostics; negligible overhead).
    busy_total: Vec<f64>,
    busy_since: Vec<f64>,
    /// Traces of the first `cfg.trace_messages` messages.
    traces: Vec<MessageTrace>,
    /// Raw samples for exact percentiles (when enabled).
    percentiles: Option<Percentiles>,
    /// Delivery-ordered latencies of the warm-up + measured populations,
    /// for the MSER-5 warm-up audit (when enabled).
    audit: Option<Vec<f64>>,
    /// Recorded/audited deliveries, buffered so the statistic sinks can
    /// be replayed in the canonical (pop time, src, gen_time) order at
    /// the end of the run — see [`crate::shard::delivery_order`]. Stop
    /// decisions still use the immediate counters; only the f64
    /// accumulation order is deferred, so event execution is untouched
    /// and non-tied runs keep their exact bits.
    deliveries: Vec<DeliveryRec>,
}

/// A buffered delivery awaiting canonical-order sink accumulation.
#[derive(Debug, Clone, Copy)]
struct DeliveryRec {
    /// Pop time of the delivering `Advance`.
    t: f64,
    latency: f64,
    src: u32,
    gen_time: f64,
    recorded: bool,
    audited: bool,
    intra: bool,
    src_cluster: u32,
}

impl<'a, S: Scheduler<EventKind>, const TRACE: bool> Simulator<'a, S, TRACE> {
    fn new(
        built: &'a BuiltSystem,
        wl: &Workload,
        pattern: Pattern,
        cfg: SimConfig,
        arrival: ArrivalSpec,
    ) -> Self {
        assert!(
            arrival.mean_rate() > 0.0,
            "simulation needs a positive generation rate"
        );
        let chans = (0..built.num_channels())
            .map(|c| Chan {
                t: built.chan_time(c as u32),
                busy: false,
                queue: VecDeque::new(),
            })
            .collect();
        let histogram = cfg
            .histogram
            .map(|(hi, bins)| Histogram::new(0.0, hi, bins));
        let percentiles = if cfg.collect_percentiles {
            Some(Percentiles::with_capacity(cfg.measured as usize))
        } else {
            None
        };
        let audit = if cfg.audit_warmup {
            Some(Vec::with_capacity((cfg.warmup + cfg.measured) as usize))
        } else {
            None
        };
        let rng = StdRng::seed_from_u64(cfg.seed);
        // Static faults arrive pre-resolved in the built system; timed
        // fault events need a full-size mask to flip even when no link is
        // down at t = 0.
        let failed = if built.static_failed().is_empty() && !cfg.faults.events.is_empty() {
            vec![false; built.num_channels()]
        } else {
            built.static_failed().to_vec()
        };
        Self {
            built,
            routes: built.route_table(),
            cfg,
            m_flits: wl.msg_flits as f64,
            arrivals: vec![arrival.build(); built.total_nodes()],
            pattern,
            rng,
            queue: S::new(),
            chans,
            msgs: Vec::new(),
            free: Vec::new(),
            dyn_routes: Vec::new(),
            scratch: AdaptiveScratch::default(),
            route_cache: AdaptiveRouteCache::default(),
            generated: 0,
            recorded_done: 0,
            events_processed: 0,
            now: 0.0,
            failed,
            delivered_total: 0,
            dropped: 0,
            retransmits: 0,
            unreachable: 0,
            latency: OnlineStats::new(),
            intra_lat: OnlineStats::new(),
            inter_lat: OnlineStats::new(),
            per_cluster: vec![OnlineStats::new(); built.spec().num_clusters()],
            histogram,
            busy_total: vec![0.0; built.num_channels()],
            busy_since: vec![0.0; built.num_channels()],
            traces: Vec::new(),
            percentiles,
            audit,
            deliveries: Vec::new(),
        }
    }

    #[inline]
    fn trace(&mut self, trace_id: u32, time: f64, kind: TraceEventKind) {
        if !TRACE || trace_id == UNTRACED {
            return;
        }
        let idx = trace_id as usize;
        while self.traces.len() <= idx {
            self.traces.push(MessageTrace::default());
        }
        self.traces[idx].events.push(TraceEvent { time, kind });
    }

    /// Channel id at position `k` of the message's current segment.
    #[inline]
    fn seg_chan(&self, msg_id: u32, k: u32) -> u32 {
        let m = &self.msgs[msg_id as usize];
        if m.route.is_dynamic() {
            self.dyn_routes[msg_id as usize].chans[(m.cur.start + k as u64) as usize]
        } else {
            self.routes.chan_at(m.cur.start + k as u64)
        }
    }

    /// Metadata of segment `seg` of the message's route.
    #[inline]
    fn seg_meta(&self, msg_id: u32, seg: u8) -> SegMeta {
        let m = &self.msgs[msg_id as usize];
        if m.route.is_dynamic() {
            self.dyn_routes[msg_id as usize].segs[seg as usize]
        } else {
            self.routes.seg_meta(m.route, seg as u32)
        }
    }

    /// Seeds the fault schedule and the initial Generate event of every
    /// node. Faults are scheduled first so a `t = 0` failure is in force
    /// before any traffic moves.
    fn prime(&mut self) {
        for ev in &self.cfg.faults.events {
            self.queue.schedule(
                ev.time,
                EventKind::Fault {
                    link: ev.link,
                    fail: matches!(ev.action, FaultAction::Fail),
                },
            );
        }
        for node in 0..self.built.total_nodes() {
            let t = self.arrivals[node].next_arrival(&mut self.rng);
            self.queue
                .schedule(t, EventKind::Generate { node: node as u32 });
        }
    }

    fn run(mut self) -> SimResults {
        self.prime();
        let mut completed = false;
        // If the loop exits any other way, the queue ran dry: every
        // message was delivered or written off — graceful degradation,
        // not a hang.
        let mut stop = StopReason::Drained;
        while let Some(ev) = self.queue.pop() {
            self.events_processed += 1;
            if self.events_processed > self.cfg.max_events {
                stop = StopReason::EventCap;
                break;
            }
            debug_assert!(ev.time >= self.now - 1e-9, "time must not run backwards");
            self.now = ev.time;
            match ev.kind {
                EventKind::Generate { node } => self.on_generate(node, ev.time),
                EventKind::Advance { msg } => self.on_advance(msg, ev.time),
                EventKind::Release { chan } => self.on_release(chan, ev.time),
                EventKind::Request { msg } => self.request_current(msg, ev.time),
                EventKind::Fault { link, fail } => self.on_fault(link, fail),
                EventKind::Retransmit { msg } => self.on_retransmit(msg, ev.time),
            }
            if self.recorded_done >= self.cfg.measured {
                completed = true;
                stop = StopReason::MeasuredComplete;
                break;
            }
        }
        // Channels still holding a message when the run ends (event cap or
        // measured-complete break) have an open busy interval; flush it so
        // utilisation is not undercounted.
        for chan in 0..self.chans.len() {
            if self.chans[chan].busy {
                self.busy_total[chan] += self.now - self.busy_since[chan];
            }
        }
        self.flush_deliveries();
        SimResults::collect(
            &self.latency,
            &self.intra_lat,
            &self.inter_lat,
            &self.per_cluster,
            self.generated,
            self.recorded_done,
            completed,
            self.now,
            self.histogram,
            self.busy_total,
            self.traces,
            self.percentiles.as_mut().and_then(exact_percentiles),
            self.audit
                .as_deref()
                .and_then(|stream| WarmupAudit::from_stream(stream, self.cfg.warmup)),
            crate::results::EngineCounters {
                events_processed: self.events_processed,
                peak_live_msgs: self.msgs.len() as u64,
                delivered_total: self.delivered_total,
                dropped: self.dropped,
                retransmits: self.retransmits,
                unreachable: self.unreachable,
                stop,
            },
        )
    }

    /// Replay the buffered deliveries into the statistic sinks in the
    /// canonical (pop time, src, gen_time) order.
    ///
    /// The buffer arrives in pop order — already nondecreasing in time —
    /// so the stable sort only rearranges bit-equal-time ties, and it
    /// rearranges them exactly the way the sharded coordinator's merge
    /// does. Everything the simulation's control flow depends on
    /// (`recorded_done`, the measured stop, event execution) happened
    /// immediately; this pass only fixes the f64 accumulation order.
    fn flush_deliveries(&mut self) {
        self.deliveries.sort_by(|a, b| {
            crate::shard::delivery_order((a.t, a.src, a.gen_time), (b.t, b.src, b.gen_time))
        });
        for d in &self.deliveries {
            if d.audited {
                if let Some(a) = &mut self.audit {
                    a.push(d.latency);
                }
            }
            if d.recorded {
                self.latency.push(d.latency);
                if d.intra {
                    self.intra_lat.push(d.latency);
                } else {
                    self.inter_lat.push(d.latency);
                }
                self.per_cluster[d.src_cluster as usize].push(d.latency);
                if let Some(h) = &mut self.histogram {
                    h.record(d.latency);
                }
                if let Some(p) = &mut self.percentiles {
                    p.record(d.latency);
                }
            }
        }
    }

    /// Whether a channel is currently failed (empty mask = zero-fault
    /// fast path).
    #[inline]
    fn is_failed(&self, chan: u32) -> bool {
        !self.failed.is_empty() && self.failed[chan as usize]
    }

    /// Applies a timed fault-schedule entry; the reverse channel fails and
    /// recovers in tandem (a dead cable kills both directions). In-flight
    /// crossings complete — a fault affects acquisitions, not transfers.
    fn on_fault(&mut self, link: u32, fail: bool) {
        debug_assert!(!self.failed.is_empty(), "fault events imply a full mask");
        self.failed[link as usize] = fail;
        self.failed[(link ^ 1) as usize] = fail;
    }

    /// Drops an in-flight message whose header ran into the failed channel
    /// `chan`: every channel it still holds in the current segment is
    /// released now (earlier segments released at their boundaries), and
    /// the message re-enters from its source after the retry timeout — or,
    /// with the attempt budget exhausted, is written off as unreachable.
    fn drop_msg(&mut self, msg_id: u32, chan: u32, t: f64) {
        let m = self.msgs[msg_id as usize];
        self.dropped += 1;
        self.trace(m.trace_id, t, TraceEventKind::Dropped { chan });
        for k in 0..m.idx {
            let held = self.seg_chan(msg_id, k as u32);
            self.queue.schedule(t, EventKind::Release { chan: held });
        }
        if m.attempt + 1 >= self.cfg.faults.max_attempts {
            self.unreachable += 1;
            self.free.push(msg_id);
        } else {
            let delay = self.cfg.faults.retry_delay(m.attempt);
            self.queue
                .schedule(t + delay, EventKind::Retransmit { msg: msg_id });
        }
    }

    /// A dropped message's retry timeout expired: re-enter from the source
    /// with the original generation time-stamp (latency includes every
    /// retry delay). Adaptive messages re-draw their ascent digits, so an
    /// oblivious retry may dodge the fault; interned routes are fixed.
    fn on_retransmit(&mut self, msg_id: u32, t: f64) {
        self.retransmits += 1;
        let m = self.msgs[msg_id as usize];
        self.trace(
            m.trace_id,
            t,
            TraceEventKind::Retransmitted {
                attempt: m.attempt + 1,
            },
        );
        let cur = if m.route.is_dynamic() {
            let built = self.built;
            let idx = self.route_cache.route_idx(
                built,
                m.src as usize,
                m.dst as usize,
                &mut self.rng,
                &mut self.scratch,
            );
            let cr = self.route_cache.route(idx);
            let dr = &mut self.dyn_routes[msg_id as usize];
            dr.chans.clear();
            dr.chans.extend_from_slice(&cr.chans);
            dr.segs = cr.segs;
            self.msgs[msg_id as usize].nsegs = cr.nsegs;
            cr.segs[0]
        } else {
            self.routes.seg_meta(m.route, 0)
        };
        let mm = &mut self.msgs[msg_id as usize];
        mm.attempt += 1;
        mm.seg = 0;
        mm.idx = 0;
        mm.prev_finish = t;
        mm.cur = cur;
        self.request_current(msg_id, t);
    }

    fn on_generate(&mut self, node: u32, t: f64) {
        if self.generated >= self.cfg.total_messages() {
            return;
        }
        let src = node as usize;
        let dst = self.pattern.sample(self.built.spec(), src, &mut self.rng);
        if self.routes.is_unreachable(src, dst) {
            // The destination is statically partitioned away: account the
            // message (generated + unreachable, never silently lost)
            // without allocating a slab slot, and keep the arrival stream
            // going so the node's later destinations still get traffic.
            self.generated += 1;
            self.unreachable += 1;
            if self.generated < self.cfg.total_messages() {
                let next = self.arrivals[node as usize].next_arrival(&mut self.rng);
                self.queue.schedule(next, EventKind::Generate { node });
            }
            return;
        }
        let recorded = self.generated >= self.cfg.warmup
            && self.generated < self.cfg.warmup + self.cfg.measured;
        let audited = self.audit.is_some() && self.generated < self.cfg.warmup + self.cfg.measured;
        let trace_id = if TRACE && self.generated < self.cfg.trace_messages.min(UNTRACED as u64) {
            self.generated as u32
        } else {
            UNTRACED
        };
        self.generated += 1;

        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.msgs.len() as u32;
                self.msgs.push(Msg::VACANT);
                self.dyn_routes.push(DynRoute::default());
                s
            }
        };
        let built = self.built;
        let (route, cur, nsegs) = if self.cfg.adaptive_routing {
            let idx = self
                .route_cache
                .route_idx(built, src, dst, &mut self.rng, &mut self.scratch);
            let cr = self.route_cache.route(idx);
            let dr = &mut self.dyn_routes[slot as usize];
            dr.chans.clear();
            dr.chans.extend_from_slice(&cr.chans);
            dr.segs = cr.segs;
            (RouteRef::DYNAMIC, cr.segs[0], cr.nsegs)
        } else {
            let r = self.routes.route_ref(src, dst);
            (
                r,
                self.routes.seg_meta(r, 0),
                self.routes.num_segments(r) as u8,
            )
        };
        self.msgs[slot as usize] = Msg {
            gen_time: t,
            prev_finish: t,
            cur,
            route,
            trace_id,
            seg: 0,
            nsegs,
            idx: 0,
            recorded,
            audited,
            intra: built.cluster_of(src) == built.cluster_of(dst),
            src_cluster: built.cluster_of(src) as u32,
            src: src as u32,
            dst: dst as u32,
            attempt: 0,
        };
        self.trace(
            trace_id,
            t,
            TraceEventKind::Generated {
                src: src as u32,
                dst: dst as u32,
            },
        );
        self.request_current(slot, t);
        // Keep generating until the population is complete.
        if self.generated < self.cfg.total_messages() {
            let next = self.arrivals[node as usize].next_arrival(&mut self.rng);
            debug_assert!(next >= t, "arrival streams move forward");
            self.queue.schedule(next, EventKind::Generate { node });
        }
    }

    /// Requests the channel under the message's header cursor; either
    /// acquires it immediately or joins its FIFO.
    fn request_current(&mut self, msg_id: u32, t: f64) {
        let idx = self.msgs[msg_id as usize].idx;
        let chan = self.seg_chan(msg_id, idx as u32);
        if self.is_failed(chan) {
            self.drop_msg(msg_id, chan, t);
            return;
        }
        let c = &mut self.chans[chan as usize];
        if c.busy {
            c.queue.push_back(msg_id);
            if TRACE {
                let trace_id = self.msgs[msg_id as usize].trace_id;
                self.trace(trace_id, t, TraceEventKind::Blocked { chan });
            }
        } else {
            c.busy = true;
            let cross = c.t;
            self.busy_since[chan as usize] = t;
            self.queue
                .schedule(t + cross, EventKind::Advance { msg: msg_id });
            if TRACE {
                let trace_id = self.msgs[msg_id as usize].trace_id;
                self.trace(trace_id, t, TraceEventKind::Acquired { chan });
            }
        }
    }

    fn on_advance(&mut self, msg_id: u32, t: f64) {
        let m = self.msgs[msg_id as usize];
        let at_seg_end = (m.idx as u32) + 1 == m.cur.len;
        if !at_seg_end {
            self.msgs[msg_id as usize].idx += 1;
            self.request_current(msg_id, t);
            return;
        }

        // Header finished its segment: compute the segment finish time from
        // the precomputed segment metrics and schedule channel releases.
        // Under store-and-forward the whole message is already buffered at
        // the segment entrance, so the worm streams at the segment's
        // bottleneck rate; under cut-through the tail may additionally be
        // limited by its arrival from the previous buffer.
        let header_limited = t + (self.m_flits - 1.0) * m.cur.bottleneck_t;
        let finish = match self.cfg.coupling {
            // Full buffering / no-starve start: the worm streams at this
            // segment's own bottleneck rate.
            Coupling::StoreAndForward | Coupling::VirtualCutThrough => header_limited,
            // Tightly coupled pipeline: the tail may still be limited by
            // its arrival from the previous buffer.
            Coupling::CutThrough => header_limited.max(m.prev_finish + m.cur.sum_t),
        };
        // Release channel k once the tail has crossed it: the tail still has
        // to cross the suffix after leaving k, so release_k = finish − Σ_{s>k} t_s.
        let mut suffix = 0.0;
        for k in (0..m.cur.len).rev() {
            let chan = self.seg_chan(msg_id, k);
            let release = (finish - suffix).max(t);
            self.queue.schedule(release, EventKind::Release { chan });
            suffix += self.chans[chan as usize].t;
        }

        self.trace(
            m.trace_id,
            t,
            TraceEventKind::SegmentDone {
                seg: m.seg as u16,
                finish,
            },
        );
        let last_segment = m.seg + 1 == m.nsegs;
        if last_segment {
            self.delivered_total += 1;
            let latency = finish - m.gen_time;
            self.trace(m.trace_id, finish, TraceEventKind::Delivered { latency });
            if m.audited || m.recorded {
                // Sink accumulation is deferred to `flush_deliveries` so
                // same-instant ties land in the canonical order shared
                // with the sharded engine; only the stop-driving counter
                // advances here.
                self.deliveries.push(DeliveryRec {
                    t,
                    latency,
                    src: m.src,
                    gen_time: m.gen_time,
                    recorded: m.recorded,
                    audited: m.audited,
                    intra: m.intra,
                    src_cluster: m.src_cluster,
                });
            }
            if m.recorded {
                self.recorded_done += 1;
            }
            // Delivery releases the slab slot (and its arena buffers) for
            // the next generated message.
            self.free.push(msg_id);
        } else {
            let next = self.seg_meta(msg_id, m.seg + 1);
            let mm = &mut self.msgs[msg_id as usize];
            mm.seg += 1;
            mm.idx = 0;
            mm.prev_finish = finish;
            mm.cur = next;
            // Store-and-forward: the next network sees the message only
            // once it is fully buffered; cut-through forwards the header
            // immediately.
            match self.cfg.coupling {
                // The channel must not be contended for before the message
                // is ready, so future requests go through the heap.
                Coupling::StoreAndForward => self
                    .queue
                    .schedule(finish, EventKind::Request { msg: msg_id }),
                Coupling::VirtualCutThrough => {
                    // Latest header start such that the next segment's
                    // output never starves: its (M−1) payload flits stream
                    // at its bottleneck pace only after the tail (arriving
                    // at `finish`) can feed them.
                    let start = (finish - (self.m_flits - 1.0) * next.bottleneck_t).max(t);
                    if start <= t {
                        self.request_current(msg_id, t);
                    } else {
                        self.queue
                            .schedule(start, EventKind::Request { msg: msg_id });
                    }
                }
                Coupling::CutThrough => self.request_current(msg_id, t),
            }
        }
    }

    fn on_release(&mut self, chan: u32, t: f64) {
        self.busy_total[chan as usize] += t - self.busy_since[chan as usize];
        debug_assert!(self.chans[chan as usize].busy, "releasing a free channel");
        loop {
            let Some(next) = self.chans[chan as usize].queue.pop_front() else {
                self.chans[chan as usize].busy = false;
                return;
            };
            if self.is_failed(chan) {
                // The link died while this header was queued on it: the
                // grant would start a crossing on a failed channel, so the
                // waiter is dropped for retransmission instead.
                self.drop_msg(next, chan, t);
                continue;
            }
            // Grant to the next waiting header; channel stays busy.
            let cross = self.chans[chan as usize].t;
            self.busy_since[chan as usize] = t;
            self.queue
                .schedule(t + cross, EventKind::Advance { msg: next });
            if TRACE {
                let trace_id = self.msgs[next as usize].trace_id;
                self.trace(trace_id, t, TraceEventKind::Acquired { chan });
            }
            return;
        }
    }
}

/// Runs one simulation of `spec` under workload `wl` and traffic `pattern`.
///
/// Latency is measured from generation time-stamp to complete delivery of
/// the tail flit at the destination sink, exactly as in the paper's §4.
///
/// ```
/// use cocnet_model::Workload;
/// use cocnet_sim::{run_simulation, SimConfig};
/// use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};
/// use cocnet_workloads::Pattern;
///
/// let net = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
/// let cluster = |n| ClusterSpec { n, icn1: net, ecn1: net, topology: Default::default() };
/// let spec = SystemSpec::new(4, vec![cluster(1); 4], net).unwrap();
/// let wl = Workload::new(1e-4, 8, 256.0).unwrap();
/// let mut cfg = SimConfig::quick(7);
/// cfg.measured = 500;
/// let out = run_simulation(&spec, &wl, Pattern::Uniform, &cfg);
/// assert!(out.completed);
/// assert_eq!(out.latency.count, 500);
/// ```
pub fn run_simulation(
    spec: &SystemSpec,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
) -> SimResults {
    let built = BuiltSystem::try_build_with(
        spec,
        wl.flit_bytes,
        cocnet_topology::AscentPolicy::default(),
        &cfg.faults,
    )
    .unwrap_or_else(|e| panic!("invalid fault schedule (validate it first): {e}"));
    run_simulation_built(&built, wl, pattern, cfg)
}

/// Dispatches over the `TRACE` and scheduler monomorphisations: tracing
/// code is compiled in only when the configuration asks for traces, and
/// the selected future-event-list backend is a concrete type in the hot
/// loop (no dyn dispatch).
fn dispatch(
    built: &BuiltSystem,
    wl: &Workload,
    pattern: Pattern,
    cfg: SimConfig,
    arrival: ArrivalSpec,
) -> SimResults {
    if crate::shard::sharding_eligible(built, &cfg) {
        return crate::shard::run_sharded(built, wl, pattern, &cfg, &arrival);
    }
    type Heap = EventQueue<EventKind>;
    type Calendar = CalendarQueue<EventKind>;
    match (cfg.scheduler, cfg.trace_messages > 0) {
        (SchedulerKind::Heap, true) => {
            Simulator::<Heap, true>::new(built, wl, pattern, cfg, arrival).run()
        }
        (SchedulerKind::Heap, false) => {
            Simulator::<Heap, false>::new(built, wl, pattern, cfg, arrival).run()
        }
        (SchedulerKind::Calendar, true) => {
            Simulator::<Calendar, true>::new(built, wl, pattern, cfg, arrival).run()
        }
        (SchedulerKind::Calendar, false) => {
            Simulator::<Calendar, false>::new(built, wl, pattern, cfg, arrival).run()
        }
    }
}

/// Like [`run_simulation`], but reuses a pre-built system (sweeps over λ
/// share the same topology; only channel times depend on the flit size, so
/// the caller must have built with the same `flit_bytes`).
pub fn run_simulation_built(
    built: &BuiltSystem,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
) -> SimResults {
    dispatch(
        built,
        wl,
        pattern,
        cfg.clone(),
        ArrivalSpec::Poisson { rate: wl.lambda_g },
    )
}

/// Like [`run_simulation_built`], but with an explicit per-node arrival
/// process instead of the workload's Poisson rate — the bursty-traffic
/// extension (`bursty` experiment bin). The workload's `lambda_g` is
/// ignored for generation; message geometry (`M`, `d_m`) still applies.
pub fn run_simulation_arrivals(
    built: &BuiltSystem,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
    arrival: ArrivalSpec,
) -> SimResults {
    dispatch(built, wl, pattern, cfg.clone(), arrival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn spec() -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
            topology: Default::default(),
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net1).unwrap()
    }

    fn wl(rate: f64) -> Workload {
        Workload::new(rate, 32, 256.0).unwrap()
    }

    fn tiny_cfg(seed: u64) -> SimConfig {
        SimConfig {
            warmup: 200,
            measured: 2_000,
            drain: 200,
            seed,
            max_events: 20_000_000,
            histogram: None,
            coupling: Coupling::default(),
            flit_buffer_depth: 1,
            trace_messages: 0,
            adaptive_routing: false,
            collect_percentiles: false,
            audit_warmup: false,
            scheduler: SchedulerKind::default(),
            faults: crate::config::FaultSchedule::default(),
            shards: crate::config::ShardMode::Off,
            interning: crate::config::InternMode::default(),
        }
    }

    #[test]
    fn light_load_run_completes() {
        let r = run_simulation(&spec(), &wl(1e-4), Pattern::Uniform, &tiny_cfg(1));
        assert!(r.completed);
        assert_eq!(r.delivered_recorded, 2_000);
        assert_eq!(r.latency.count, 2_000);
        assert!(r.latency.mean > 0.0);
        assert!(r.sim_time > 0.0);
    }

    #[test]
    fn latency_close_to_zero_load_floor_at_light_load() {
        // At a trivial load, mean latency must sit near the uncontended
        // pipeline time: bounded below by M·(fastest flit time) and above
        // by a small multiple of the zero-load estimate.
        let r = run_simulation(&spec(), &wl(1e-6), Pattern::Uniform, &tiny_cfg(2));
        assert!(r.completed);
        let m = 32.0;
        let t_fast = NetworkCharacteristics::new(500.0, 0.01, 0.02)
            .unwrap()
            .t_cn(256.0);
        assert!(r.latency.mean > (m - 1.0) * t_fast);
        assert!(r.latency.mean < 150.0, "mean {} too high", r.latency.mean);
    }

    #[test]
    fn calendar_scheduler_bit_identical_to_heap() {
        // The scheduler backend must never change results: same seed,
        // both couplings, adaptive routing, traced and untraced — every
        // statistic f64-bit-equal between the heap and the calendar.
        for adaptive in [false, true] {
            for coupling in [
                Coupling::VirtualCutThrough,
                Coupling::StoreAndForward,
                Coupling::CutThrough,
            ] {
                let base = SimConfig {
                    coupling,
                    adaptive_routing: adaptive,
                    ..tiny_cfg(23)
                };
                let heap = run_simulation(&spec(), &wl(6e-4), Pattern::Uniform, &base);
                let cal = run_simulation(
                    &spec(),
                    &wl(6e-4),
                    Pattern::Uniform,
                    &SimConfig {
                        scheduler: SchedulerKind::Calendar,
                        ..base
                    },
                );
                assert!(heap.completed && cal.completed);
                assert_eq!(heap.latency, cal.latency, "{coupling:?}/{adaptive}");
                assert_eq!(heap.sim_time.to_bits(), cal.sim_time.to_bits());
                assert_eq!(heap.events_processed, cal.events_processed);
                assert_eq!(heap.channel_busy, cal.channel_busy);
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(7));
        let b = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(7));
        assert_eq!(a.latency.mean, b.latency.mean);
        assert_eq!(a.latency.count, b.latency.count);
        assert_eq!(a.generated, b.generated);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(1));
        let b = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(2));
        assert_ne!(a.latency.mean, b.latency.mean);
    }

    #[test]
    fn latency_grows_with_load() {
        let lo = run_simulation(&spec(), &wl(5e-5), Pattern::Uniform, &tiny_cfg(3));
        let hi = run_simulation(&spec(), &wl(8e-4), Pattern::Uniform, &tiny_cfg(3));
        assert!(lo.completed && hi.completed);
        assert!(
            hi.latency.mean > lo.latency.mean,
            "hi {} vs lo {}",
            hi.latency.mean,
            lo.latency.mean
        );
    }

    #[test]
    fn inter_slower_than_intra() {
        let r = run_simulation(&spec(), &wl(1e-4), Pattern::Uniform, &tiny_cfg(4));
        assert!(r.intra.count > 0 && r.inter.count > 0);
        assert!(r.inter.mean > r.intra.mean);
    }

    #[test]
    fn event_cap_reports_incomplete() {
        let cfg = SimConfig {
            max_events: 5_000,
            ..tiny_cfg(5)
        };
        // The cap fires long before the measured population delivers.
        let r = run_simulation(&spec(), &wl(0.5), Pattern::Uniform, &cfg);
        assert!(!r.completed);
        assert!(r.delivered_recorded < 2_000);
    }

    #[test]
    fn overload_completes_with_exploded_latency() {
        // The generated population is finite, so even far past saturation
        // the run drains eventually — with latencies orders of magnitude
        // above the light-load floor (how saturation shows up in Figs. 3–6).
        let light = run_simulation(&spec(), &wl(5e-5), Pattern::Uniform, &tiny_cfg(5));
        let heavy = run_simulation(&spec(), &wl(5e-2), Pattern::Uniform, &tiny_cfg(5));
        assert!(light.completed && heavy.completed);
        assert!(heavy.latency.mean > 10.0 * light.latency.mean);
    }

    #[test]
    fn histogram_collects_all_recorded() {
        let cfg = SimConfig {
            histogram: Some((10_000.0, 100)),
            ..tiny_cfg(6)
        };
        let r = run_simulation(&spec(), &wl(1e-4), Pattern::Uniform, &cfg);
        let h = r.histogram.unwrap();
        assert_eq!(h.total(), r.delivered_recorded);
        assert_eq!(h.underflow(), 0);
    }

    #[test]
    fn cluster_local_pattern_reduces_latency() {
        let uni = run_simulation(&spec(), &wl(1e-4), Pattern::Uniform, &tiny_cfg(8));
        let local = run_simulation(
            &spec(),
            &wl(1e-4),
            Pattern::ClusterLocal { locality: 0.95 },
            &tiny_cfg(8),
        );
        assert!(local.latency.mean < uni.latency.mean);
    }

    #[test]
    fn golden_trace_of_an_isolated_message() {
        use crate::trace::TraceEventKind;
        // At a near-zero rate the first message travels alone; its trace
        // must show the exact wormhole timing semantics.
        let s = spec();
        let m_flits = 4u32;
        let wl = Workload::new(1e-9, m_flits, 256.0).unwrap();
        let cfg = SimConfig {
            warmup: 0,
            measured: 1,
            drain: 0,
            seed: 3,
            trace_messages: 1,
            ..SimConfig::default()
        };
        let built = BuiltSystem::build(&s, wl.flit_bytes);
        let r = run_simulation_built(&built, &wl, Pattern::Uniform, &cfg);
        assert!(r.completed);
        assert_eq!(r.traces.len(), 1);
        let trace = &r.traces[0];

        // Structure: Generated, then per channel an Acquired (no blocking
        // in an empty network), SegmentDone per segment, final Delivered.
        let TraceEventKind::Generated { src, dst } = trace.events[0].kind else {
            panic!("first event must be Generated");
        };
        let segments = built.segments_for(src as usize, dst as usize);
        let expected_chans: Vec<u32> = segments
            .iter()
            .flat_map(|seg| seg.chans.iter().copied())
            .collect();
        assert_eq!(trace.acquired_channels(), expected_chans);
        assert!(!trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Blocked { .. })));
        let seg_dones = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::SegmentDone { .. }))
            .count();
        assert_eq!(seg_dones, segments.len());

        // Timing: each acquisition happens exactly one crossing after the
        // previous one within a segment (uncontended header pipeline).
        let gen_time = trace.events[0].time;
        let mut expect = gen_time;
        let mut idx = 0;
        for seg in &segments {
            for (k, &chan) in seg.chans.iter().enumerate() {
                let ev = trace
                    .events
                    .iter()
                    .find(|e| matches!(e.kind, TraceEventKind::Acquired { chan: c } if c == chan))
                    .unwrap();
                if !(k == 0 && idx > 0) {
                    // Within a segment: exact pipeline timing.
                    assert!(
                        (ev.time - expect).abs() < 1e-9,
                        "chan {chan}: acquired {} expected {expect}",
                        ev.time
                    );
                }
                expect = ev.time + built.chan_time(chan);
                idx += 1;
            }
            // Segment finish = header end + (M−1)·bottleneck.
            let bot = seg
                .chans
                .iter()
                .map(|&c| built.chan_time(c))
                .fold(0.0f64, f64::max);
            expect += (m_flits as f64 - 1.0) * bot;
            // Next segment's header starts no earlier than the VCT start;
            // just track real acquisition time (checked above for k==0 via
            // the running expectation reset).
            let _ = expect;
        }
        // Delivered latency equals the recorded latency sink value.
        assert!((trace.latency().unwrap() - r.latency.mean).abs() < 1e-9);
    }

    #[test]
    fn tracing_off_keeps_results_empty_and_identical() {
        let s = spec();
        let wl = wl(2e-4);
        let base = run_simulation(&s, &wl, Pattern::Uniform, &tiny_cfg(6));
        let traced = run_simulation(
            &s,
            &wl,
            Pattern::Uniform,
            &SimConfig {
                trace_messages: 50,
                ..tiny_cfg(6)
            },
        );
        assert!(base.traces.is_empty());
        assert_eq!(traced.traces.len(), 50);
        // Tracing must not perturb the simulation.
        assert_eq!(base.latency, traced.latency);
        assert_eq!(base.sim_time, traced.sim_time);
    }

    #[test]
    fn percentiles_are_ordered_and_bracket_the_mean() {
        let r = run_simulation(
            &spec(),
            &wl(3e-4),
            Pattern::Uniform,
            &SimConfig {
                collect_percentiles: true,
                ..tiny_cfg(13)
            },
        );
        assert!(r.completed);
        let (p50, p95, p99) = r.percentiles.unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 <= r.latency.max && p99 <= r.latency.max);
        assert!(p50 >= r.latency.min);
        // The distribution is bimodal (fast intra vs slow inter messages),
        // so no mean/median ordering is asserted — only coherence bounds.
        // Disabled by default.
        let r2 = run_simulation(&spec(), &wl(3e-4), Pattern::Uniform, &tiny_cfg(13));
        assert!(r2.percentiles.is_none());
        // Collection must not perturb results.
        assert_eq!(r.latency, r2.latency);
    }

    #[test]
    fn warmup_audit_reports_without_perturbing() {
        let base = run_simulation(&spec(), &wl(3e-4), Pattern::Uniform, &tiny_cfg(17));
        assert!(base.warmup_audit.is_none());
        let audited = run_simulation(
            &spec(),
            &wl(3e-4),
            Pattern::Uniform,
            &SimConfig {
                audit_warmup: true,
                ..tiny_cfg(17)
            },
        );
        // Auditing is a pure side-channel.
        assert_eq!(base.latency, audited.latency);
        assert_eq!(base.sim_time, audited.sim_time);
        let audit = audited.warmup_audit.unwrap();
        assert_eq!(audit.configured_warmup, 200);
        assert!(audit.samples <= 2_200);
        assert!(audit.samples >= 2_000);
        assert!(audit.statistic.is_finite());
        // A 200-message warm-up at this light-to-moderate load is ample:
        // the detected transient must not outlast it.
        assert!(!audit.exceeds(), "truncation {}", audit.truncation);
    }

    #[test]
    fn zero_warmup_under_load_is_flagged() {
        // With no warm-up at a heavy load the measured stream starts in
        // the transient; MSER-5 must ask for a positive truncation.
        let cfg = SimConfig {
            warmup: 0,
            audit_warmup: true,
            ..tiny_cfg(18)
        };
        let r = run_simulation(&spec(), &wl(8e-4), Pattern::Uniform, &cfg);
        assert!(r.completed);
        let audit = r.warmup_audit.unwrap();
        assert!(
            audit.truncation > 0 && audit.exceeds(),
            "truncation {}",
            audit.truncation
        );
    }

    #[test]
    fn adaptive_routing_completes_and_stays_close_to_deterministic() {
        let det = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(14));
        let ada = run_simulation(
            &spec(),
            &wl(2e-4),
            Pattern::Uniform,
            &SimConfig {
                adaptive_routing: true,
                ..tiny_cfg(14)
            },
        );
        assert!(det.completed && ada.completed);
        let rel = (det.latency.mean - ada.latency.mean).abs() / det.latency.mean;
        assert!(
            rel < 0.10,
            "det {} vs adaptive {}",
            det.latency.mean,
            ada.latency.mean
        );
    }

    #[test]
    fn channel_grants_are_fifo_among_traced_messages() {
        use crate::trace::TraceEventKind;
        // Heavy enough load that blocking occurs; FIFO arbitration means
        // that for any channel, messages that blocked on it are granted in
        // the order they blocked.
        let r = run_simulation(
            &spec(),
            &wl(1.5e-3),
            Pattern::Uniform,
            &SimConfig {
                trace_messages: 400,
                ..tiny_cfg(15)
            },
        );
        assert!(r.completed);
        // Collect (block_time, acquire_time) per (channel, message).
        let mut per_chan: std::collections::HashMap<u32, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        let mut any_blocked = false;
        for trace in &r.traces {
            let mut pending: std::collections::HashMap<u32, f64> = Default::default();
            for e in &trace.events {
                match e.kind {
                    TraceEventKind::Blocked { chan } => {
                        pending.insert(chan, e.time);
                    }
                    TraceEventKind::Acquired { chan } => {
                        if let Some(block_t) = pending.remove(&chan) {
                            any_blocked = true;
                            per_chan.entry(chan).or_default().push((block_t, e.time));
                        }
                    }
                    _ => {}
                }
            }
        }
        assert!(any_blocked, "load too light to exercise blocking");
        for (chan, mut grants) in per_chan {
            // Sort by block time; acquire times must then be sorted too.
            grants.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in grants.windows(2) {
                assert!(
                    w[1].1 >= w[0].1,
                    "channel {chan}: FIFO violated ({:?} then {:?})",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn per_cluster_stats_cover_all_clusters() {
        let r = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(9));
        assert_eq!(r.per_cluster.len(), 4);
        let total: u64 = r.per_cluster.iter().map(|s| s.count).sum();
        assert_eq!(total, r.delivered_recorded);
        for s in &r.per_cluster {
            assert!(s.count > 0, "every cluster generates traffic");
        }
    }

    #[test]
    fn slab_keeps_live_messages_bounded() {
        // The message slab recycles delivered slots: at light load the
        // high-water mark must sit far below the generated population, and
        // the engine must report its event count.
        let r = run_simulation(&spec(), &wl(1e-4), Pattern::Uniform, &tiny_cfg(21));
        assert!(r.completed);
        assert!(r.events_processed > 0);
        assert!(r.peak_live_msgs >= 1);
        assert!(
            r.peak_live_msgs < r.generated / 4,
            "peak {} should be far below generated {}",
            r.peak_live_msgs,
            r.generated
        );
    }

    #[test]
    fn busy_time_flushed_for_channels_still_busy_at_end() {
        // A run that stops at its measured count (or event cap) leaves
        // channels mid-crossing; their open busy interval must be counted.
        // With drain = 0 the run breaks exactly at the measured count while
        // traffic is still flowing, so some channel is busy at the break.
        let cfg = SimConfig {
            warmup: 0,
            drain: 0,
            ..tiny_cfg(22)
        };
        let r = run_simulation(&spec(), &wl(8e-4), Pattern::Uniform, &cfg);
        assert!(r.completed);
        for &b in &r.channel_busy {
            assert!(b >= 0.0);
            assert!(b <= r.sim_time * (1.0 + 1e-9));
        }
        let total: f64 = r.channel_busy.iter().sum();
        assert!(total > 0.0);
    }

    /// The injection channel of node 0's interned routes: failing it cuts
    /// node 0 off without rebuilding (timed faults bypass rerouting).
    fn node0_injection_channel(built: &BuiltSystem) -> u32 {
        let routes = built.route_table();
        let r = routes.route_ref(0, 1);
        let seg = routes.seg_meta(r, 0);
        routes.chan_at(seg.start)
    }

    #[test]
    fn timed_fault_retry_accounting_is_exact() {
        // Permanently fail node 0's injection link at t = 0 via the timed
        // schedule (routes stay fault-free, so traffic keeps running into
        // it). The run cannot complete its measured population — it must
        // drain gracefully with every message accounted for.
        let spec = spec();
        let wl = wl(2e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let dead = node0_injection_channel(&built);
        let mut cfg = tiny_cfg(3);
        cfg.faults.events = vec![crate::config::FaultEvent {
            time: 0.0,
            link: dead,
            action: FaultAction::Fail,
        }];
        cfg.faults.max_attempts = 3;
        cfg.faults.retry_timeout = 50.0;
        cfg.faults.max_timeout = 200.0;
        let r = dispatch(
            &built,
            &wl,
            Pattern::Uniform,
            cfg.clone(),
            ArrivalSpec::Poisson { rate: wl.lambda_g },
        );
        assert!(!r.completed);
        assert_eq!(r.stop, crate::results::StopReason::Drained);
        assert!(r.dropped > 0);
        assert!(r.retransmits > 0);
        assert!(r.unreachable > 0);
        // Drained run: every generated message was delivered or written
        // off, and every drop became a retransmission or a write-off.
        assert_eq!(r.generated, r.delivered_total + r.unreachable);
        assert_eq!(r.dropped, r.retransmits + r.unreachable);
        // Each unreachable message burned exactly max_attempts drops.
        assert_eq!(r.dropped, r.unreachable * cfg.faults.max_attempts as u64);
    }

    #[test]
    fn repair_event_restores_delivery() {
        // Fail the same link but repair it early: with a generous retry
        // budget every dropped message eventually gets through, so the
        // run completes with retransmissions and zero write-offs.
        let spec = spec();
        let wl = wl(2e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let dead = node0_injection_channel(&built);
        let mut cfg = tiny_cfg(4);
        cfg.faults.events = vec![
            crate::config::FaultEvent {
                time: 0.0,
                link: dead,
                action: FaultAction::Fail,
            },
            crate::config::FaultEvent {
                time: 50_000.0,
                link: dead,
                action: crate::config::FaultAction::Repair,
            },
        ];
        cfg.faults.max_attempts = 64;
        cfg.faults.retry_timeout = 100.0;
        cfg.faults.max_timeout = 800.0;
        let r = dispatch(
            &built,
            &wl,
            Pattern::Uniform,
            cfg,
            ArrivalSpec::Poisson { rate: wl.lambda_g },
        );
        assert!(r.completed, "repaired link must let the run complete");
        assert!(r.retransmits > 0, "pre-repair traffic must have retried");
        assert_eq!(r.unreachable, 0);
        assert_eq!(r.dropped, r.retransmits);
    }

    #[test]
    fn full_partition_terminates_gracefully() {
        // 100% static link failures: every destination is unreachable.
        // The run must drain (no spinning to the event cap) with all
        // messages written off at generation time.
        let mut cfg = tiny_cfg(5);
        cfg.faults.link_fraction = 1.0;
        let r = run_simulation(&spec(), &wl(1e-4), Pattern::Uniform, &cfg);
        assert!(!r.completed);
        assert_eq!(r.stop, crate::results::StopReason::Drained);
        assert!(r.generated > 0);
        assert_eq!(r.unreachable, r.generated);
        assert_eq!(r.delivered_total, 0);
        assert_eq!(r.dropped, 0, "statically dead pairs never enter the net");
        assert!(r.events_processed < cfg.max_events);
    }

    #[test]
    fn faulted_runs_are_deterministic_across_schedulers() {
        // A mixed static + timed fault schedule must give bit-identical
        // results under both future-event-list backends.
        let spec = spec();
        let wl = wl(3e-4);
        let mut base = tiny_cfg(6);
        base.faults.link_fraction = 0.15;
        base.faults.fault_seed = 99;
        base.faults.max_attempts = 4;
        base.faults.retry_timeout = 50.0;
        let built = BuiltSystem::try_build_with(
            &spec,
            wl.flit_bytes,
            cocnet_topology::AscentPolicy::default(),
            &base.faults,
        )
        .unwrap();
        // Fail the injection link of the first still-reachable pair at
        // t = 2000 (the static mask may already have killed (0, 1)).
        let routes = built.route_table();
        let live = (0..24)
            .flat_map(|s| (0..24).map(move |d| (s, d)))
            .find(|&(s, d)| s != d && !routes.is_unreachable(s, d))
            .expect("15% faults leave live pairs");
        let seg = routes.seg_meta(routes.route_ref(live.0, live.1), 0);
        let dead = routes.chan_at(seg.start);
        base.faults.events = vec![crate::config::FaultEvent {
            time: 2_000.0,
            link: dead,
            action: FaultAction::Fail,
        }];
        let mut results = Vec::new();
        for scheduler in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let cfg = SimConfig {
                scheduler,
                ..base.clone()
            };
            results.push(run_simulation_built(&built, &wl, Pattern::Uniform, &cfg));
        }
        let (a, b) = (&results[0], &results[1]);
        assert_eq!(a.latency.mean.to_bits(), b.latency.mean.to_bits());
        assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.retransmits, b.retransmits);
        assert_eq!(a.unreachable, b.unreachable);
        assert_eq!(a.delivered_total, b.delivered_total);
    }

    #[test]
    fn adaptive_retransmissions_reroute_around_timed_faults() {
        // Adaptive messages re-draw their ascent on retransmit, so even a
        // permanently failed fabric link only costs retries, not messages,
        // as long as an alternate ascent exists.
        let spec = spec();
        let wl = wl(2e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        // Fail a switch-to-switch link inside cluster 2's ICN1 (n = 2):
        // the second hop of an intra-cluster route with an alternate up.
        let routes = built.route_table();
        let r02 = routes.route_ref(8, 15);
        let seg = routes.seg_meta(r02, 0);
        let fabric = routes.chan_at(seg.start + 1);
        let mut cfg = tiny_cfg(7);
        cfg.adaptive_routing = true;
        cfg.faults.events = vec![crate::config::FaultEvent {
            time: 0.0,
            link: fabric,
            action: FaultAction::Fail,
        }];
        cfg.faults.max_attempts = 64;
        cfg.faults.retry_timeout = 20.0;
        let r = dispatch(
            &built,
            &wl,
            Pattern::Uniform,
            cfg,
            ArrivalSpec::Poisson { rate: wl.lambda_g },
        );
        assert!(r.completed, "alternate ascents must rescue adaptive runs");
        assert_eq!(r.unreachable, 0);
    }
}
