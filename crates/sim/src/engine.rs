//! The discrete-event wormhole engine.
//!
//! Three event kinds drive the simulation:
//!
//! * `Generate(node)` — a node's Poisson process fires: build the message,
//!   inject it into its first channel's FIFO, and schedule the next firing;
//! * `Advance(msg)` — the message's header finished crossing a channel:
//!   request the next channel (possibly across a segment boundary), or
//!   complete delivery;
//! * `Release(chan)` — a message's tail fully crossed a channel: hand the
//!   channel to the next queued message, or mark it free.
//!
//! Events are processed in `(time, sequence)` order, so runs are exactly
//! reproducible for a given seed.

use crate::build::{BuiltSystem, Segment};
use crate::config::{Coupling, SimConfig};
use crate::results::SimResults;
use crate::trace::{MessageTrace, TraceEvent, TraceEventKind};
use cocnet_model::Workload;
use cocnet_stats::{Histogram, OnlineStats, Percentiles};
use cocnet_topology::SystemSpec;
use cocnet_workloads::{ArrivalProcess, ArrivalSpec, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Generate {
        node: u32,
    },
    Advance {
        msg: u32,
    },
    Release {
        chan: u32,
    },
    /// Deferred channel request: the message becomes ready at the event's
    /// time (store-and-forward buffering completes) and then contends for
    /// the channel under its header cursor.
    Request {
        msg: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct Chan {
    /// Per-flit transfer time.
    t: f64,
    /// Whether a message currently holds this channel.
    busy: bool,
    /// Messages waiting for the channel, FIFO.
    queue: VecDeque<u32>,
}

#[derive(Debug)]
struct Msg {
    gen_time: f64,
    segments: Vec<Segment>,
    /// Current segment / channel indices of the header.
    seg: u16,
    idx: u16,
    /// Tail availability at the current segment's entrance (generation time
    /// for segment 0, previous segment's finish afterwards).
    prev_finish: f64,
    /// Whether this message's latency is recorded (not warm-up/drain).
    recorded: bool,
    /// Whether source and destination share a cluster.
    intra: bool,
    src_cluster: u32,
}

struct Simulator<'a> {
    built: &'a BuiltSystem,
    cfg: SimConfig,
    m_flits: f64,
    /// Per-node arrival streams (independent state per node).
    arrivals: Vec<ArrivalProcess>,
    pattern: Pattern,
    rng: StdRng,
    heap: BinaryHeap<Event>,
    seq: u64,
    chans: Vec<Chan>,
    msgs: Vec<Msg>,
    generated: u64,
    recorded_done: u64,
    events_processed: u64,
    now: f64,
    // Sinks.
    latency: OnlineStats,
    intra_lat: OnlineStats,
    inter_lat: OnlineStats,
    per_cluster: Vec<OnlineStats>,
    histogram: Option<Histogram>,
    /// Cumulative busy time per channel (diagnostics; negligible overhead).
    busy_total: Vec<f64>,
    busy_since: Vec<f64>,
    /// Traces of the first `cfg.trace_messages` messages.
    traces: Vec<MessageTrace>,
    /// Raw samples for exact percentiles (when enabled).
    percentiles: Option<Percentiles>,
}

impl<'a> Simulator<'a> {
    fn new(
        built: &'a BuiltSystem,
        wl: &Workload,
        pattern: Pattern,
        cfg: SimConfig,
        arrival: ArrivalSpec,
    ) -> Self {
        assert!(
            arrival.mean_rate() > 0.0,
            "simulation needs a positive generation rate"
        );
        let chans = (0..built.num_channels())
            .map(|c| Chan {
                t: built.chan_time(c as u32),
                busy: false,
                queue: VecDeque::new(),
            })
            .collect();
        let histogram = cfg
            .histogram
            .map(|(hi, bins)| Histogram::new(0.0, hi, bins));
        Self {
            built,
            cfg,
            m_flits: wl.msg_flits as f64,
            arrivals: vec![arrival.build(); built.total_nodes()],
            pattern,
            rng: StdRng::seed_from_u64(cfg.seed),
            heap: BinaryHeap::new(),
            seq: 0,
            chans,
            msgs: Vec::with_capacity(cfg.total_messages() as usize),
            generated: 0,
            recorded_done: 0,
            events_processed: 0,
            now: 0.0,
            latency: OnlineStats::new(),
            intra_lat: OnlineStats::new(),
            inter_lat: OnlineStats::new(),
            per_cluster: vec![OnlineStats::new(); built.spec().num_clusters()],
            histogram,
            busy_total: vec![0.0; built.num_channels()],
            busy_since: vec![0.0; built.num_channels()],
            traces: Vec::new(),
            percentiles: if cfg.collect_percentiles {
                Some(Percentiles::with_capacity(cfg.measured as usize))
            } else {
                None
            },
        }
    }

    fn trace(&mut self, msg_id: u32, time: f64, kind: TraceEventKind) {
        if (msg_id as u64) < self.cfg.trace_messages {
            let idx = msg_id as usize;
            while self.traces.len() <= idx {
                self.traces.push(MessageTrace::default());
            }
            self.traces[idx].events.push(TraceEvent { time, kind });
        }
    }

    fn schedule(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Seeds the initial Generate event of every node.
    fn prime(&mut self) {
        for node in 0..self.built.total_nodes() {
            let t = self.arrivals[node].next_arrival(&mut self.rng);
            self.schedule(t, EventKind::Generate { node: node as u32 });
        }
    }

    fn run(mut self) -> SimResults {
        self.prime();
        let mut completed = false;
        while let Some(ev) = self.heap.pop() {
            self.events_processed += 1;
            if self.events_processed > self.cfg.max_events {
                break;
            }
            debug_assert!(ev.time >= self.now - 1e-9, "time must not run backwards");
            self.now = ev.time;
            match ev.kind {
                EventKind::Generate { node } => self.on_generate(node, ev.time),
                EventKind::Advance { msg } => self.on_advance(msg, ev.time),
                EventKind::Release { chan } => self.on_release(chan, ev.time),
                EventKind::Request { msg } => self.request_current(msg, ev.time),
            }
            if self.recorded_done >= self.cfg.measured {
                completed = true;
                break;
            }
        }
        SimResults::collect(
            &self.latency,
            &self.intra_lat,
            &self.inter_lat,
            &self.per_cluster,
            self.generated,
            self.recorded_done,
            completed,
            self.now,
            self.histogram,
            self.busy_total,
            self.traces,
            self.percentiles
                .as_mut()
                .and_then(|p| Some((p.quantile(0.5)?, p.quantile(0.95)?, p.quantile(0.99)?))),
        )
    }

    fn on_generate(&mut self, node: u32, t: f64) {
        if self.generated < self.cfg.total_messages() {
            let src = node as usize;
            let dst = self.pattern.sample(self.built.spec(), src, &mut self.rng);
            let segments = if self.cfg.adaptive_routing {
                self.built.segments_for_adaptive(src, dst, &mut self.rng)
            } else {
                self.built.segments_for(src, dst)
            };
            let recorded = self.generated >= self.cfg.warmup
                && self.generated < self.cfg.warmup + self.cfg.measured;
            self.generated += 1;
            let msg_id = self.msgs.len() as u32;
            self.msgs.push(Msg {
                gen_time: t,
                segments,
                seg: 0,
                idx: 0,
                prev_finish: t,
                recorded,
                intra: self.built.cluster_of(src) == self.built.cluster_of(dst),
                src_cluster: self.built.cluster_of(src) as u32,
            });
            self.trace(
                msg_id,
                t,
                TraceEventKind::Generated {
                    src: src as u32,
                    dst: dst as u32,
                },
            );
            self.request_current(msg_id, t);
            // Keep generating until the population is complete.
            if self.generated < self.cfg.total_messages() {
                let next = self.arrivals[node as usize].next_arrival(&mut self.rng);
                debug_assert!(next >= t, "arrival streams move forward");
                self.schedule(next, EventKind::Generate { node });
            }
        }
    }

    /// Requests the channel under the message's header cursor; either
    /// acquires it immediately or joins its FIFO.
    fn request_current(&mut self, msg_id: u32, t: f64) {
        let msg = &self.msgs[msg_id as usize];
        let chan = msg.segments[msg.seg as usize].chans[msg.idx as usize];
        let c = &mut self.chans[chan as usize];
        if c.busy {
            c.queue.push_back(msg_id);
            self.trace(msg_id, t, TraceEventKind::Blocked { chan });
        } else {
            c.busy = true;
            let cross = c.t;
            self.busy_since[chan as usize] = t;
            self.schedule(t + cross, EventKind::Advance { msg: msg_id });
            self.trace(msg_id, t, TraceEventKind::Acquired { chan });
        }
    }

    fn on_advance(&mut self, msg_id: u32, t: f64) {
        let msg = &self.msgs[msg_id as usize];
        let seg = &msg.segments[msg.seg as usize];
        let at_seg_end = (msg.idx as usize) + 1 == seg.chans.len();
        if !at_seg_end {
            self.msgs[msg_id as usize].idx += 1;
            self.request_current(msg_id, t);
            return;
        }

        // Header finished its segment: compute the segment finish time and
        // schedule channel releases. Under store-and-forward the whole
        // message is already buffered at the segment entrance, so the worm
        // streams at the segment's bottleneck rate; under cut-through the
        // tail may additionally be limited by its arrival from the previous
        // buffer.
        let (finish, chans) = {
            let msg = &self.msgs[msg_id as usize];
            let seg = &msg.segments[msg.seg as usize];
            let mut sum_t = 0.0;
            let mut bot = 0.0f64;
            for &c in &seg.chans {
                let ct = self.chans[c as usize].t;
                sum_t += ct;
                bot = bot.max(ct);
            }
            let header_limited = t + (self.m_flits - 1.0) * bot;
            let finish = match self.cfg.coupling {
                // Full buffering / no-starve start: the worm streams at this
                // segment's own bottleneck rate.
                Coupling::StoreAndForward | Coupling::VirtualCutThrough => header_limited,
                // Tightly coupled pipeline: the tail may still be limited by
                // its arrival from the previous buffer.
                Coupling::CutThrough => header_limited.max(msg.prev_finish + sum_t),
            };
            (finish, seg.chans.clone())
        };
        // Release channel k once the tail has crossed it: the tail still has
        // to cross the suffix after leaving k, so release_k = finish − Σ_{s>k} t_s.
        let mut suffix = 0.0;
        for k in (0..chans.len()).rev() {
            let release = (finish - suffix).max(t);
            self.schedule(release, EventKind::Release { chan: chans[k] });
            suffix += self.chans[chans[k] as usize].t;
        }

        let cur_seg = self.msgs[msg_id as usize].seg;
        self.trace(
            msg_id,
            t,
            TraceEventKind::SegmentDone {
                seg: cur_seg,
                finish,
            },
        );
        let last_segment = (self.msgs[msg_id as usize].seg as usize) + 1
            == self.msgs[msg_id as usize].segments.len();
        if last_segment {
            let msg = &mut self.msgs[msg_id as usize];
            let latency = finish - msg.gen_time;
            let (recorded, intra, cluster) = (msg.recorded, msg.intra, msg.src_cluster);
            msg.segments = Vec::new(); // drop path memory
            self.trace(msg_id, finish, TraceEventKind::Delivered { latency });
            if recorded {
                self.latency.push(latency);
                if intra {
                    self.intra_lat.push(latency);
                } else {
                    self.inter_lat.push(latency);
                }
                self.per_cluster[cluster as usize].push(latency);
                if let Some(h) = &mut self.histogram {
                    h.record(latency);
                }
                if let Some(p) = &mut self.percentiles {
                    p.record(latency);
                }
                self.recorded_done += 1;
            }
        } else {
            let coupling = self.cfg.coupling;
            let msg = &mut self.msgs[msg_id as usize];
            msg.seg += 1;
            msg.idx = 0;
            msg.prev_finish = finish;
            // Store-and-forward: the next network sees the message only
            // once it is fully buffered; cut-through forwards the header
            // immediately.
            match coupling {
                // The channel must not be contended for before the message
                // is ready, so future requests go through the heap.
                Coupling::StoreAndForward => {
                    self.schedule(finish, EventKind::Request { msg: msg_id })
                }
                Coupling::VirtualCutThrough => {
                    // Latest header start such that the next segment's
                    // output never starves: its (M−1) payload flits stream
                    // at its bottleneck pace only after the tail (arriving
                    // at `finish`) can feed them.
                    let next = &self.msgs[msg_id as usize].segments
                        [self.msgs[msg_id as usize].seg as usize];
                    let mut bot_next = 0.0f64;
                    for &c in &next.chans {
                        bot_next = bot_next.max(self.chans[c as usize].t);
                    }
                    let start = (finish - (self.m_flits - 1.0) * bot_next).max(t);
                    if start <= t {
                        self.request_current(msg_id, t);
                    } else {
                        self.schedule(start, EventKind::Request { msg: msg_id });
                    }
                }
                Coupling::CutThrough => self.request_current(msg_id, t),
            }
        }
    }

    fn on_release(&mut self, chan: u32, t: f64) {
        self.busy_total[chan as usize] += t - self.busy_since[chan as usize];
        let c = &mut self.chans[chan as usize];
        debug_assert!(c.busy, "releasing a free channel");
        if let Some(next) = c.queue.pop_front() {
            // Grant to the next waiting header; channel stays busy.
            let cross = c.t;
            self.busy_since[chan as usize] = t;
            self.schedule(t + cross, EventKind::Advance { msg: next });
            self.trace(next, t, TraceEventKind::Acquired { chan });
        } else {
            c.busy = false;
        }
    }
}

/// Runs one simulation of `spec` under workload `wl` and traffic `pattern`.
///
/// Latency is measured from generation time-stamp to complete delivery of
/// the tail flit at the destination sink, exactly as in the paper's §4.
///
/// ```
/// use cocnet_model::Workload;
/// use cocnet_sim::{run_simulation, SimConfig};
/// use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};
/// use cocnet_workloads::Pattern;
///
/// let net = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
/// let cluster = |n| ClusterSpec { n, icn1: net, ecn1: net };
/// let spec = SystemSpec::new(4, vec![cluster(1); 4], net).unwrap();
/// let wl = Workload::new(1e-4, 8, 256.0).unwrap();
/// let mut cfg = SimConfig::quick(7);
/// cfg.measured = 500;
/// let out = run_simulation(&spec, &wl, Pattern::Uniform, &cfg);
/// assert!(out.completed);
/// assert_eq!(out.latency.count, 500);
/// ```
pub fn run_simulation(
    spec: &SystemSpec,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
) -> SimResults {
    let built = BuiltSystem::build(spec, wl.flit_bytes);
    run_simulation_built(&built, wl, pattern, cfg)
}

/// Like [`run_simulation`], but reuses a pre-built system (sweeps over λ
/// share the same topology; only channel times depend on the flit size, so
/// the caller must have built with the same `flit_bytes`).
pub fn run_simulation_built(
    built: &BuiltSystem,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
) -> SimResults {
    Simulator::new(
        built,
        wl,
        pattern,
        *cfg,
        ArrivalSpec::Poisson { rate: wl.lambda_g },
    )
    .run()
}

/// Like [`run_simulation_built`], but with an explicit per-node arrival
/// process instead of the workload's Poisson rate — the bursty-traffic
/// extension (`bursty` experiment bin). The workload's `lambda_g` is
/// ignored for generation; message geometry (`M`, `d_m`) still applies.
pub fn run_simulation_arrivals(
    built: &BuiltSystem,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
    arrival: ArrivalSpec,
) -> SimResults {
    Simulator::new(built, wl, pattern, *cfg, arrival).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn spec() -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net1).unwrap()
    }

    fn wl(rate: f64) -> Workload {
        Workload::new(rate, 32, 256.0).unwrap()
    }

    fn tiny_cfg(seed: u64) -> SimConfig {
        SimConfig {
            warmup: 200,
            measured: 2_000,
            drain: 200,
            seed,
            max_events: 20_000_000,
            histogram: None,
            coupling: Coupling::default(),
            flit_buffer_depth: 1,
            trace_messages: 0,
            adaptive_routing: false,
            collect_percentiles: false,
        }
    }

    #[test]
    fn light_load_run_completes() {
        let r = run_simulation(&spec(), &wl(1e-4), Pattern::Uniform, &tiny_cfg(1));
        assert!(r.completed);
        assert_eq!(r.delivered_recorded, 2_000);
        assert_eq!(r.latency.count, 2_000);
        assert!(r.latency.mean > 0.0);
        assert!(r.sim_time > 0.0);
    }

    #[test]
    fn latency_close_to_zero_load_floor_at_light_load() {
        // At a trivial load, mean latency must sit near the uncontended
        // pipeline time: bounded below by M·(fastest flit time) and above
        // by a small multiple of the zero-load estimate.
        let r = run_simulation(&spec(), &wl(1e-6), Pattern::Uniform, &tiny_cfg(2));
        assert!(r.completed);
        let m = 32.0;
        let t_fast = NetworkCharacteristics::new(500.0, 0.01, 0.02)
            .unwrap()
            .t_cn(256.0);
        assert!(r.latency.mean > (m - 1.0) * t_fast);
        assert!(r.latency.mean < 150.0, "mean {} too high", r.latency.mean);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(7));
        let b = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(7));
        assert_eq!(a.latency.mean, b.latency.mean);
        assert_eq!(a.latency.count, b.latency.count);
        assert_eq!(a.generated, b.generated);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(1));
        let b = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(2));
        assert_ne!(a.latency.mean, b.latency.mean);
    }

    #[test]
    fn latency_grows_with_load() {
        let lo = run_simulation(&spec(), &wl(5e-5), Pattern::Uniform, &tiny_cfg(3));
        let hi = run_simulation(&spec(), &wl(8e-4), Pattern::Uniform, &tiny_cfg(3));
        assert!(lo.completed && hi.completed);
        assert!(
            hi.latency.mean > lo.latency.mean,
            "hi {} vs lo {}",
            hi.latency.mean,
            lo.latency.mean
        );
    }

    #[test]
    fn inter_slower_than_intra() {
        let r = run_simulation(&spec(), &wl(1e-4), Pattern::Uniform, &tiny_cfg(4));
        assert!(r.intra.count > 0 && r.inter.count > 0);
        assert!(r.inter.mean > r.intra.mean);
    }

    #[test]
    fn event_cap_reports_incomplete() {
        let cfg = SimConfig {
            max_events: 5_000,
            ..tiny_cfg(5)
        };
        // The cap fires long before the measured population delivers.
        let r = run_simulation(&spec(), &wl(0.5), Pattern::Uniform, &cfg);
        assert!(!r.completed);
        assert!(r.delivered_recorded < 2_000);
    }

    #[test]
    fn overload_completes_with_exploded_latency() {
        // The generated population is finite, so even far past saturation
        // the run drains eventually — with latencies orders of magnitude
        // above the light-load floor (how saturation shows up in Figs. 3–6).
        let light = run_simulation(&spec(), &wl(5e-5), Pattern::Uniform, &tiny_cfg(5));
        let heavy = run_simulation(&spec(), &wl(5e-2), Pattern::Uniform, &tiny_cfg(5));
        assert!(light.completed && heavy.completed);
        assert!(heavy.latency.mean > 10.0 * light.latency.mean);
    }

    #[test]
    fn histogram_collects_all_recorded() {
        let cfg = SimConfig {
            histogram: Some((10_000.0, 100)),
            ..tiny_cfg(6)
        };
        let r = run_simulation(&spec(), &wl(1e-4), Pattern::Uniform, &cfg);
        let h = r.histogram.unwrap();
        assert_eq!(h.total(), r.delivered_recorded);
        assert_eq!(h.underflow(), 0);
    }

    #[test]
    fn cluster_local_pattern_reduces_latency() {
        let uni = run_simulation(&spec(), &wl(1e-4), Pattern::Uniform, &tiny_cfg(8));
        let local = run_simulation(
            &spec(),
            &wl(1e-4),
            Pattern::ClusterLocal { locality: 0.95 },
            &tiny_cfg(8),
        );
        assert!(local.latency.mean < uni.latency.mean);
    }

    #[test]
    fn golden_trace_of_an_isolated_message() {
        use crate::trace::TraceEventKind;
        // At a near-zero rate the first message travels alone; its trace
        // must show the exact wormhole timing semantics.
        let s = spec();
        let m_flits = 4u32;
        let wl = Workload::new(1e-9, m_flits, 256.0).unwrap();
        let cfg = SimConfig {
            warmup: 0,
            measured: 1,
            drain: 0,
            seed: 3,
            trace_messages: 1,
            ..SimConfig::default()
        };
        let built = BuiltSystem::build(&s, wl.flit_bytes);
        let r = run_simulation_built(&built, &wl, Pattern::Uniform, &cfg);
        assert!(r.completed);
        assert_eq!(r.traces.len(), 1);
        let trace = &r.traces[0];

        // Structure: Generated, then per channel an Acquired (no blocking
        // in an empty network), SegmentDone per segment, final Delivered.
        let TraceEventKind::Generated { src, dst } = trace.events[0].kind else {
            panic!("first event must be Generated");
        };
        let segments = built.segments_for(src as usize, dst as usize);
        let expected_chans: Vec<u32> = segments
            .iter()
            .flat_map(|seg| seg.chans.iter().copied())
            .collect();
        assert_eq!(trace.acquired_channels(), expected_chans);
        assert!(!trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Blocked { .. })));
        let seg_dones = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::SegmentDone { .. }))
            .count();
        assert_eq!(seg_dones, segments.len());

        // Timing: each acquisition happens exactly one crossing after the
        // previous one within a segment (uncontended header pipeline).
        let gen_time = trace.events[0].time;
        let mut expect = gen_time;
        let mut idx = 0;
        for seg in &segments {
            for (k, &chan) in seg.chans.iter().enumerate() {
                let ev = trace
                    .events
                    .iter()
                    .find(|e| matches!(e.kind, TraceEventKind::Acquired { chan: c } if c == chan))
                    .unwrap();
                if !(k == 0 && idx > 0) {
                    // Within a segment: exact pipeline timing.
                    assert!(
                        (ev.time - expect).abs() < 1e-9,
                        "chan {chan}: acquired {} expected {expect}",
                        ev.time
                    );
                }
                expect = ev.time + built.chan_time(chan);
                idx += 1;
            }
            // Segment finish = header end + (M−1)·bottleneck.
            let bot = seg
                .chans
                .iter()
                .map(|&c| built.chan_time(c))
                .fold(0.0f64, f64::max);
            expect += (m_flits as f64 - 1.0) * bot;
            // Next segment's header starts no earlier than the VCT start;
            // just track real acquisition time (checked above for k==0 via
            // the running expectation reset).
            let _ = expect;
        }
        // Delivered latency equals the recorded latency sink value.
        assert!((trace.latency().unwrap() - r.latency.mean).abs() < 1e-9);
    }

    #[test]
    fn tracing_off_keeps_results_empty_and_identical() {
        let s = spec();
        let wl = wl(2e-4);
        let base = run_simulation(&s, &wl, Pattern::Uniform, &tiny_cfg(6));
        let traced = run_simulation(
            &s,
            &wl,
            Pattern::Uniform,
            &SimConfig {
                trace_messages: 50,
                ..tiny_cfg(6)
            },
        );
        assert!(base.traces.is_empty());
        assert_eq!(traced.traces.len(), 50);
        // Tracing must not perturb the simulation.
        assert_eq!(base.latency, traced.latency);
        assert_eq!(base.sim_time, traced.sim_time);
    }

    #[test]
    fn percentiles_are_ordered_and_bracket_the_mean() {
        let r = run_simulation(
            &spec(),
            &wl(3e-4),
            Pattern::Uniform,
            &SimConfig {
                collect_percentiles: true,
                ..tiny_cfg(13)
            },
        );
        assert!(r.completed);
        let (p50, p95, p99) = r.percentiles.unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 <= r.latency.max && p99 <= r.latency.max);
        assert!(p50 >= r.latency.min);
        // The distribution is bimodal (fast intra vs slow inter messages),
        // so no mean/median ordering is asserted — only coherence bounds.
        // Disabled by default.
        let r2 = run_simulation(&spec(), &wl(3e-4), Pattern::Uniform, &tiny_cfg(13));
        assert!(r2.percentiles.is_none());
        // Collection must not perturb results.
        assert_eq!(r.latency, r2.latency);
    }

    #[test]
    fn adaptive_routing_completes_and_stays_close_to_deterministic() {
        let det = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(14));
        let ada = run_simulation(
            &spec(),
            &wl(2e-4),
            Pattern::Uniform,
            &SimConfig {
                adaptive_routing: true,
                ..tiny_cfg(14)
            },
        );
        assert!(det.completed && ada.completed);
        let rel = (det.latency.mean - ada.latency.mean).abs() / det.latency.mean;
        assert!(
            rel < 0.10,
            "det {} vs adaptive {}",
            det.latency.mean,
            ada.latency.mean
        );
    }

    #[test]
    fn channel_grants_are_fifo_among_traced_messages() {
        use crate::trace::TraceEventKind;
        // Heavy enough load that blocking occurs; FIFO arbitration means
        // that for any channel, messages that blocked on it are granted in
        // the order they blocked.
        let r = run_simulation(
            &spec(),
            &wl(1.5e-3),
            Pattern::Uniform,
            &SimConfig {
                trace_messages: 400,
                ..tiny_cfg(15)
            },
        );
        assert!(r.completed);
        // Collect (block_time, acquire_time) per (channel, message).
        let mut per_chan: std::collections::HashMap<u32, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        let mut any_blocked = false;
        for trace in &r.traces {
            let mut pending: std::collections::HashMap<u32, f64> = Default::default();
            for e in &trace.events {
                match e.kind {
                    TraceEventKind::Blocked { chan } => {
                        pending.insert(chan, e.time);
                    }
                    TraceEventKind::Acquired { chan } => {
                        if let Some(block_t) = pending.remove(&chan) {
                            any_blocked = true;
                            per_chan.entry(chan).or_default().push((block_t, e.time));
                        }
                    }
                    _ => {}
                }
            }
        }
        assert!(any_blocked, "load too light to exercise blocking");
        for (chan, mut grants) in per_chan {
            // Sort by block time; acquire times must then be sorted too.
            grants.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in grants.windows(2) {
                assert!(
                    w[1].1 >= w[0].1,
                    "channel {chan}: FIFO violated ({:?} then {:?})",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn per_cluster_stats_cover_all_clusters() {
        let r = run_simulation(&spec(), &wl(2e-4), Pattern::Uniform, &tiny_cfg(9));
        assert_eq!(r.per_cluster.len(), 4);
        let total: u64 = r.per_cluster.iter().map(|s| s.count).sum();
        assert_eq!(total, r.delivered_recorded);
        for s in &r.per_cluster {
            assert!(s.count > 0, "every cluster generates traffic");
        }
    }
}
