//! Intra-run parallel simulation: the worm event loop sharded by cluster
//! with conservative lookahead synchronization, bit-identical to the
//! serial oracle.
//!
//! # Partition
//!
//! The paper's two-level structure gives a natural cut: every ICN1 and
//! ECN1 channel belongs to exactly one cluster, and the ICN2 fabric joins
//! them. Clusters are grouped into contiguous *shards* (plus one *hub*
//! shard owning ICN2), each running its own [`Scheduler`] instance over
//! its own channels and nodes. Intra-cluster messages never leave their
//! shard; an inter-cluster message hops shard → hub → shard at its
//! segment boundaries.
//!
//! # Conservative synchronization
//!
//! The minimum crossing time Δ of the inter-cluster fabric (every ECN1
//! and ICN2 channel — [`BuiltSystem::min_intercluster_channel_time`]) is
//! a guaranteed lower bound on cross-shard latency, i.e. a classic
//! Chandy–Misra/YAWNS lookahead. Shards advance in lockstep windows
//! `[t, t + Δ)` where `t` jumps to the global minimum next-event time
//! (so sparse phases cost one barrier per event, not per Δ). The key
//! invariant making Δ usable despite zero-latency segment handoffs:
//! a segment-boundary continuation is *pre-announced* when the final
//! channel of the segment is **granted** — a grant is irrevocable
//! (faults affect acquisitions, never in-flight crossings), the
//! boundary's outcome is a pure function of state known at grant time,
//! and the final crossing itself takes ≥ Δ, so the announcement always
//! reaches the receiving shard a full window before it is due. Under
//! timed fault schedules the retry timeout also bounds cross-shard
//! retransmission latency, so Δ additionally shrinks to it.
//!
//! # Bit-identical determinism
//!
//! Sharded results are a deterministic function of the configuration —
//! independent of shard count and thread interleaving — and f64-bit-equal
//! to the serial engine:
//!
//! * **RNG**: all randomness (arrival times, destinations, adaptive
//!   ascent digits) is consumed in `(time, seq)` order of Generate
//!   events only, so a cheap serial pre-pass (the *generation oracle*)
//!   replays the exact serial draw order and hands each shard its nodes'
//!   arrival streams, routes included.
//! * **Transfers** are merged in a fixed order — `(time, src shard,
//!   src sequence)` — so barrier exchange is schedule-independent.
//! * **Statistics** are not accumulated shard-locally: recorded
//!   deliveries are logged with their delivery times and pushed through
//!   the online sinks in merged `(time, shard, local order)` order,
//!   reproducing the serial accumulation order exactly.
//! * **Stopping** is reconstructed, not approximated: shards overrun the
//!   stop inside the final window, and a per-window journal (an undo map
//!   for busy state plus a redo log of counter events) rolls every shard
//!   back to the exact serial stop — the event that delivered the
//!   `measured`-th recorded message, or the event-cap pop.
//!
//! The only field excluded from bit-identity is
//! [`SimResults::peak_live_msgs`], which becomes the max over shard-local
//! slabs (each shard only sees its resident messages).
//!
//! Exact f64 time ties between events of *unrelated* messages on
//! different shards are assumed absent (arrival times are continuous, so
//! such ties have measure zero); all systematic same-time cascades stay
//! within one shard or are independent across channels, as pinned by the
//! cross-engine property tests.
//!
//! Runs that cannot shard losslessly fall back to the serial engine:
//! traced runs (trace ids are global), adaptive routing under fault
//! schedules (retransmissions re-draw ascent digits mid-run in a
//! state-dependent order no oracle can pre-play), and degenerate
//! configurations (a single cluster, an empty measured population).

use crate::build::{
    AdaptiveRouteCache, AdaptiveScratch, BuiltSystem, RouteRef, RouteTable, SegMeta,
};
use crate::config::{Coupling, FaultAction, SchedulerKind, ShardMode, SimConfig};
use crate::events::{CalendarQueue, EventQueue, Scheduler};
use crate::results::{exact_percentiles, EngineCounters, SimResults, StopReason, WarmupAudit};
use cocnet_model::Workload;
use cocnet_stats::{Histogram, OnlineStats, Percentiles};
use cocnet_workloads::{ArrivalProcess, ArrivalSpec, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Whether this configuration can run sharded and bit-identical; callers
/// fall back to the serial engine otherwise.
pub(crate) fn sharding_eligible(built: &BuiltSystem, cfg: &SimConfig) -> bool {
    let faulted = !cfg.faults.events.is_empty()
        || !cfg.faults.links.is_empty()
        || cfg.faults.link_fraction > 0.0;
    !matches!(cfg.shards, ShardMode::Off)
        && cfg.trace_messages == 0
        && cfg.measured > 0
        && built.spec().num_clusters() >= 2
        && !(cfg.adaptive_routing && faulted)
}

// ---------------------------------------------------------------------------
// Generation oracle
// ---------------------------------------------------------------------------

/// One Generate-event pop of the serial run, pre-played: everything the
/// event would have drawn from the global RNG, in the exact serial order.
#[derive(Debug, Clone, Copy)]
struct ArrivalRec {
    time: f64,
    /// Destination node; `u32::MAX` marks a no-op pop (population
    /// already complete when this arrival fired).
    dst: u32,
    /// Destination statically partitioned away (write-off at generation).
    unreachable: bool,
    recorded: bool,
    audited: bool,
    /// Interned route (deterministic routing).
    route: RouteRef,
    /// Arena index into the oracle's shared route cache (adaptive).
    cache_idx: u32,
}

const NOOP: u32 = u32::MAX;

/// The serial generation pre-pass: per-node arrival streams plus the
/// shared read-only adaptive route arena.
struct Oracle {
    streams: Vec<Vec<ArrivalRec>>,
    cache: AdaptiveRouteCache,
}

/// Replays the serial engine's RNG consumption. Randomness is drawn only
/// while processing Generate events, which the serial queue pops in
/// `(time, seq)` order among themselves regardless of interleaved
/// traffic events (a scheduler seq restriction preserves relative
/// order), so a plain `(time, seq)` queue over arrivals reproduces the
/// serial stream exactly — including the draw-free no-op pops after the
/// population completes.
fn build_oracle(
    built: &BuiltSystem,
    pattern: &Pattern,
    cfg: &SimConfig,
    arrival: &ArrivalSpec,
) -> Oracle {
    let n = built.total_nodes();
    let spec = built.spec();
    let routes = built.route_table();
    let total = cfg.total_messages();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut arrivals: Vec<ArrivalProcess> = vec![arrival.build(); n];
    let mut streams: Vec<Vec<ArrivalRec>> = vec![Vec::new(); n];
    let mut cache = AdaptiveRouteCache::default();
    let mut scratch = AdaptiveScratch::default();
    let mut q = EventQueue::<u32>::new();
    // Initial arrivals draw in node order, exactly as `prime` does.
    for (node, a) in arrivals.iter_mut().enumerate() {
        let t = a.next_arrival(&mut rng);
        q.schedule(t, node as u32);
    }
    let mut generated = 0u64;
    while let Some(ev) = q.pop() {
        let node = ev.kind as usize;
        let t = ev.time;
        if generated >= total {
            streams[node].push(ArrivalRec {
                time: t,
                dst: NOOP,
                unreachable: false,
                recorded: false,
                audited: false,
                route: RouteRef::DYNAMIC,
                cache_idx: 0,
            });
            continue;
        }
        let dst = pattern.sample(spec, node, &mut rng);
        let gidx = generated;
        if routes.is_unreachable(node, dst) {
            generated += 1;
            streams[node].push(ArrivalRec {
                time: t,
                dst: dst as u32,
                unreachable: true,
                recorded: false,
                audited: false,
                route: RouteRef::DYNAMIC,
                cache_idx: 0,
            });
            if generated < total {
                let next = arrivals[node].next_arrival(&mut rng);
                q.schedule(next, node as u32);
            }
            continue;
        }
        let recorded = gidx >= cfg.warmup && gidx < cfg.warmup + cfg.measured;
        let audited = cfg.audit_warmup && gidx < cfg.warmup + cfg.measured;
        let (route, cache_idx) = if cfg.adaptive_routing {
            let idx = cache.route_idx(built, node, dst, &mut rng, &mut scratch);
            (RouteRef::DYNAMIC, idx)
        } else {
            (routes.route_ref(node, dst), 0)
        };
        generated += 1;
        streams[node].push(ArrivalRec {
            time: t,
            dst: dst as u32,
            unreachable: false,
            recorded,
            audited,
            route,
            cache_idx,
        });
        if generated < total {
            let next = arrivals[node].next_arrival(&mut rng);
            q.schedule(next, node as u32);
        }
    }
    Oracle { streams, cache }
}

// ---------------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------------

/// The cluster-group / hub partition: who owns which node and channel.
struct Partition {
    /// Number of cluster groups; the hub shard's id equals `groups`.
    groups: u32,
    node_shard: Vec<u32>,
    chan_shard: Vec<u32>,
    /// Contiguous global node range per shard (empty for the hub).
    shard_nodes: Vec<std::ops::Range<u32>>,
}

impl Partition {
    fn new(built: &BuiltSystem, mode: ShardMode) -> Partition {
        let c = built.spec().num_clusters();
        let groups = match mode {
            ShardMode::Off => unreachable!("caller checked eligibility"),
            ShardMode::Auto => c as u32,
            ShardMode::N(k) => k.clamp(1, c as u32),
        };
        // Balanced contiguous cluster → group map.
        let group_of = |ci: usize| -> u32 { (ci as u64 * groups as u64 / c as u64) as u32 };
        let node_shard: Vec<u32> = (0..built.total_nodes())
            .map(|f| group_of(built.cluster_of(f)))
            .collect();
        let chan_shard: Vec<u32> = (0..built.num_channels() as u32)
            .map(|ch| match built.channel_cluster(ch) {
                Some(ci) => group_of(ci),
                None => groups,
            })
            .collect();
        let n_shards = groups as usize + 1;
        let mut shard_nodes = vec![0u32..0u32; n_shards];
        for s in 0..groups {
            let lo = node_shard.partition_point(|&g| g < s) as u32;
            let hi = node_shard.partition_point(|&g| g <= s) as u32;
            shard_nodes[s as usize] = lo..hi;
        }
        Partition {
            groups,
            node_shard,
            chan_shard,
            shard_nodes,
        }
    }

    fn n_shards(&self) -> usize {
        self.groups as usize + 1
    }
}

// ---------------------------------------------------------------------------
// Cross-shard transfers
// ---------------------------------------------------------------------------

/// The message state that crosses a shard boundary.
#[derive(Debug, Clone, Copy)]
struct XferMsg {
    gen_time: f64,
    prev_finish: f64,
    route: RouteRef,
    cache_idx: u32,
    seg: u8,
    nsegs: u8,
    recorded: bool,
    audited: bool,
    src_cluster: u32,
    src: u32,
    dst: u32,
    attempt: u32,
}

/// A pre-announced cross-shard continuation: a segment-boundary channel
/// request (direct call or scheduled event, mirroring the serial
/// coupling semantics) or a retransmission re-entry at the source.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    /// Execution time on the receiver.
    time: f64,
    /// Serial executed this as a direct `request_current` call inside
    /// another event (uncounted); event-form transfers become counted
    /// scheduled events.
    direct: bool,
    /// Re-entry after a retry timeout instead of a boundary request.
    retransmit: bool,
    dst_shard: u32,
    src_shard: u32,
    src_seq: u64,
    msg: XferMsg,
}

/// The deterministic barrier merge order.
fn transfer_key(x: &Transfer) -> (f64, u32, u64) {
    (x.time, x.src_shard, x.src_seq)
}

// ---------------------------------------------------------------------------
// Per-shard journal (exact stop reconstruction)
// ---------------------------------------------------------------------------

/// One countable happening inside the current window; replayed up to the
/// reconstructed stop cut.
#[derive(Debug, Clone, Copy)]
enum JOp {
    /// A counted event pop (the walk's unit; carries no counter delta —
    /// `events_processed` is reconstructed globally).
    Pop,
    /// `generated += 1`.
    Gen,
    /// `delivered_total += 1`.
    Delivered,
    Dropped,
    Retrans,
    Unreach,
    /// Channel granted: `busy = true`, `busy_since = t`.
    Grant {
        chan: u32,
    },
    /// Release accrual: `busy_total += t - busy_since`.
    Accrue {
        chan: u32,
    },
    /// Channel freed after its queue drained.
    Free {
        chan: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct JRec {
    t: f64,
    op: JOp,
}

/// Window-start counter snapshot (the undo baseline).
#[derive(Debug, Clone, Copy, Default)]
struct CounterSnap {
    generated: u64,
    delivered_total: u64,
    dropped: u64,
    retransmits: u64,
    unreachable: u64,
    events_processed: u64,
}

/// A recorded and/or audited delivery, logged for merged-order stat
/// accumulation at the coordinator.
#[derive(Debug, Clone, Copy)]
struct DeliveryEntry {
    t: f64,
    latency: f64,
    /// Flat source node id — with `gen_time`, a canonical identity for
    /// the message that both engines can order same-instant ties by.
    src: u32,
    gen_time: f64,
    recorded: bool,
    audited: bool,
    intra: bool,
    src_cluster: u32,
    shard: u32,
    /// Journal length right after this delivery's ops — locates the
    /// delivering pop for exact-stop cuts.
    jcut: u32,
}

/// Canonical accumulation order for delivered statistics: pop time of
/// the delivering `Advance`, then the message's (source node,
/// generation time) identity for same-instant ties.
///
/// Cross-shard ties are real, not measure-zero: one multi-channel
/// release can unblock two messages on different shards at the same
/// instant, and a symmetric topology then finishes both remaining
/// paths in bit-equal time. The serial engine's natural tie order
/// (global schedule sequence) is unobservable from inside a shard, so
/// both engines defer their sink pushes and replay them in this
/// explicitly message-identified order instead — making the merged
/// `Summary` bits independent of the partition by construction.
pub(crate) fn delivery_order(a: (f64, u32, f64), b: (f64, u32, f64)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0)
        .then_with(|| a.1.cmp(&b.1))
        .then_with(|| a.2.total_cmp(&b.2))
}

// ---------------------------------------------------------------------------
// Shard simulator
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum SEvent {
    Generate { node: u32 },
    Advance { msg: u32 },
    Release { chan: u32 },
    Request { msg: u32 },
    Fault { link: u32, fail: bool },
    Retransmit { msg: u32 },
}

#[derive(Debug)]
struct Chan {
    t: f64,
    busy: bool,
    queue: VecDeque<u32>,
}

/// Shard-resident message state — the serial `Msg` plus the shared-arena
/// route index and the generation index that orders merged deliveries.
#[derive(Debug, Clone, Copy)]
struct SMsg {
    gen_time: f64,
    prev_finish: f64,
    cur: SegMeta,
    route: RouteRef,
    cache_idx: u32,
    seg: u8,
    nsegs: u8,
    idx: u16,
    recorded: bool,
    audited: bool,
    intra: bool,
    src_cluster: u32,
    src: u32,
    dst: u32,
    attempt: u32,
}

impl SMsg {
    const VACANT: SMsg = SMsg {
        gen_time: 0.0,
        prev_finish: 0.0,
        cur: SegMeta {
            start: 0,
            len: 0,
            sum_t: 0.0,
            bottleneck_t: 0.0,
        },
        route: RouteRef::DYNAMIC,
        cache_idx: 0,
        seg: 0,
        nsegs: 0,
        idx: 0,
        recorded: false,
        audited: false,
        intra: false,
        src_cluster: 0,
        src: 0,
        dst: 0,
        attempt: 0,
    };
}

/// Saved pre-window busy state of one touched channel.
#[derive(Debug, Clone, Copy)]
struct BusyUndo {
    busy_total: f64,
    busy_since: f64,
    busy: bool,
}

struct ShardSim<'a, S> {
    id: u32,
    built: &'a BuiltSystem,
    routes: &'a RouteTable,
    cache: &'a AdaptiveRouteCache,
    part: &'a Partition,
    streams: &'a [Vec<ArrivalRec>],
    cfg: &'a SimConfig,
    m_flits: f64,
    queue: S,
    chans: Vec<Chan>,
    msgs: Vec<SMsg>,
    free: Vec<u32>,
    /// Per-owned-node cursor into its oracle stream.
    cursors: Vec<u32>,
    failed: Vec<bool>,
    now: f64,
    last_pop: f64,
    events_processed: u64,
    generated: u64,
    delivered_total: u64,
    dropped: u64,
    retransmits: u64,
    unreachable: u64,
    busy_total: Vec<f64>,
    busy_since: Vec<f64>,
    // Window machinery.
    /// Pending direct-form transfers, sorted by [`transfer_key`];
    /// `inc_head` marks the executed prefix.
    incoming: Vec<Transfer>,
    inc_head: usize,
    outgoing: Vec<Transfer>,
    xfer_seq: u64,
    entries: Vec<DeliveryEntry>,
    journal: Vec<JRec>,
    undo: std::collections::HashMap<u32, BusyUndo>,
    snap: CounterSnap,
}

impl<'a, S: Scheduler<SEvent>> ShardSim<'a, S> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: u32,
        built: &'a BuiltSystem,
        oracle: &'a Oracle,
        part: &'a Partition,
        cfg: &'a SimConfig,
        wl: &Workload,
    ) -> Self {
        let chans = (0..built.num_channels())
            .map(|c| Chan {
                t: built.chan_time(c as u32),
                busy: false,
                queue: VecDeque::new(),
            })
            .collect();
        let failed = if built.static_failed().is_empty() && !cfg.faults.events.is_empty() {
            vec![false; built.num_channels()]
        } else {
            built.static_failed().to_vec()
        };
        let nodes = part.shard_nodes[id as usize].clone();
        ShardSim {
            id,
            built,
            routes: built.route_table(),
            cache: &oracle.cache,
            part,
            streams: &oracle.streams,
            cfg,
            m_flits: wl.msg_flits as f64,
            queue: S::new(),
            chans,
            msgs: Vec::new(),
            free: Vec::new(),
            cursors: vec![0; nodes.len()],
            failed,
            now: 0.0,
            last_pop: f64::NEG_INFINITY,
            events_processed: 0,
            generated: 0,
            delivered_total: 0,
            dropped: 0,
            retransmits: 0,
            unreachable: 0,
            busy_total: vec![0.0; built.num_channels()],
            busy_since: vec![0.0; built.num_channels()],
            incoming: Vec::new(),
            inc_head: 0,
            outgoing: Vec::new(),
            xfer_seq: 0,
            entries: Vec::new(),
            journal: Vec::new(),
            undo: std::collections::HashMap::new(),
            snap: CounterSnap::default(),
        }
    }

    /// Seeds owned fault events (first, like the serial prime) and the
    /// initial Generate of every owned node.
    fn prime(&mut self) {
        for ev in &self.cfg.faults.events {
            if self.part.chan_shard[ev.link as usize] == self.id {
                self.queue.schedule(
                    ev.time,
                    SEvent::Fault {
                        link: ev.link,
                        fail: matches!(ev.action, FaultAction::Fail),
                    },
                );
            }
        }
        for node in self.part.shard_nodes[self.id as usize].clone() {
            if let Some(rec) = self.streams[node as usize].first() {
                self.queue.schedule(rec.time, SEvent::Generate { node });
            }
        }
    }

    fn jot(&mut self, t: f64, op: JOp) {
        self.journal.push(JRec { t, op });
    }

    /// Saves a channel's busy state on first touch within the window.
    fn touch(&mut self, chan: u32) {
        let c = chan as usize;
        self.undo.entry(chan).or_insert(BusyUndo {
            busy_total: self.busy_total[c],
            busy_since: self.busy_since[c],
            busy: self.chans[c].busy,
        });
    }

    #[inline]
    fn seg_chan(&self, msg_id: u32, k: u32) -> u32 {
        let m = &self.msgs[msg_id as usize];
        if m.route.is_dynamic() {
            self.cache.route(m.cache_idx).chans[(m.cur.start + k as u64) as usize]
        } else {
            self.routes.chan_at(m.cur.start + k as u64)
        }
    }

    #[inline]
    fn seg_meta(&self, msg_id: u32, seg: u8) -> SegMeta {
        let m = &self.msgs[msg_id as usize];
        if m.route.is_dynamic() {
            self.cache.route(m.cache_idx).segs[seg as usize]
        } else {
            self.routes.seg_meta(m.route, seg as u32)
        }
    }

    #[inline]
    fn is_failed(&self, chan: u32) -> bool {
        !self.failed.is_empty() && self.failed[chan as usize]
    }

    fn alloc(&mut self) -> u32 {
        match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.msgs.len() as u32;
                self.msgs.push(SMsg::VACANT);
                s
            }
        }
    }

    /// Next local activity time: the queue head or the earliest pending
    /// direct transfer.
    fn next_time(&mut self) -> Option<f64> {
        let tq = self.queue.peek_time();
        let tx = self.incoming.get(self.inc_head).map(|x| x.time);
        match (tq, tx) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Opens a window: snapshot counters, clear the journal/undo state.
    fn begin_window(&mut self) {
        self.snap = CounterSnap {
            generated: self.generated,
            delivered_total: self.delivered_total,
            dropped: self.dropped,
            retransmits: self.retransmits,
            unreachable: self.unreachable,
            events_processed: self.events_processed,
        };
        self.journal.clear();
        self.undo.clear();
        self.entries.clear();
        self.outgoing.clear();
    }

    /// Processes every local event and pending direct transfer strictly
    /// before `w1`.
    fn run_window(&mut self, w1: f64) {
        loop {
            let tq = self.queue.peek_time();
            let tx = self.incoming.get(self.inc_head).map(|x| x.time);
            let take_x = match (tq, tx) {
                (None, None) => break,
                (Some(q), None) => {
                    if q >= w1 {
                        break;
                    }
                    false
                }
                (None, Some(x)) => {
                    if x >= w1 {
                        break;
                    }
                    true
                }
                (Some(q), Some(x)) => {
                    if q.min(x) >= w1 {
                        break;
                    }
                    // A direct transfer executed inside the sender's
                    // event; on a time tie it goes first (deterministic;
                    // cross-message ties have measure zero).
                    x <= q
                }
            };
            if take_x {
                let x = self.incoming[self.inc_head];
                self.inc_head += 1;
                debug_assert!(x.time >= self.now - 1e-9, "transfer in the past");
                self.now = x.time;
                let slot = self.materialize(&x.msg);
                self.request_current(slot, x.time);
            } else {
                let ev = self.queue.pop().expect("peeked non-empty");
                self.events_processed += 1;
                self.jot(ev.time, JOp::Pop);
                debug_assert!(ev.time >= self.now - 1e-9, "time must not run backwards");
                self.now = ev.time;
                self.last_pop = ev.time;
                match ev.kind {
                    SEvent::Generate { node } => self.on_generate(node, ev.time),
                    SEvent::Advance { msg } => self.on_advance(msg, ev.time),
                    SEvent::Release { chan } => self.on_release(chan, ev.time),
                    SEvent::Request { msg } => self.request_current(msg, ev.time),
                    SEvent::Fault { link, fail } => self.on_fault(link, fail),
                    SEvent::Retransmit { msg } => self.on_retransmit(msg, ev.time),
                }
            }
        }
    }

    /// Materializes a transferred message into a local slab slot.
    fn materialize(&mut self, xm: &XferMsg) -> u32 {
        let slot = self.alloc();
        self.msgs[slot as usize] = SMsg {
            gen_time: xm.gen_time,
            prev_finish: xm.prev_finish,
            cur: SegMeta {
                start: 0,
                len: 0,
                sum_t: 0.0,
                bottleneck_t: 0.0,
            },
            route: xm.route,
            cache_idx: xm.cache_idx,
            seg: xm.seg,
            nsegs: xm.nsegs,
            idx: 0,
            recorded: xm.recorded,
            audited: xm.audited,
            intra: false,
            src_cluster: xm.src_cluster,
            src: xm.src,
            dst: xm.dst,
            attempt: xm.attempt,
        };
        let cur = self.seg_meta(slot, xm.seg);
        self.msgs[slot as usize].cur = cur;
        slot
    }

    /// Accepts one barrier-delivered transfer: direct forms join the
    /// sorted pending list, event forms become counted scheduled events.
    fn deliver(&mut self, x: Transfer) {
        if x.direct {
            self.incoming.push(x);
        } else {
            let slot = self.materialize(&x.msg);
            let kind = if x.retransmit {
                SEvent::Retransmit { msg: slot }
            } else {
                SEvent::Request { msg: slot }
            };
            self.queue.schedule(x.time, kind);
        }
    }

    /// Re-sorts the pending direct transfers after barrier delivery.
    fn settle_incoming(&mut self) {
        self.incoming.drain(..self.inc_head);
        self.inc_head = 0;
        self.incoming.sort_unstable_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then(a.src_shard.cmp(&b.src_shard))
                .then(a.src_seq.cmp(&b.src_seq))
        });
    }

    fn to_xfer(m: &SMsg, seg: u8, prev_finish: f64) -> XferMsg {
        XferMsg {
            gen_time: m.gen_time,
            prev_finish,
            route: m.route,
            cache_idx: m.cache_idx,
            seg,
            nsegs: m.nsegs,
            recorded: m.recorded,
            audited: m.audited,
            src_cluster: m.src_cluster,
            src: m.src,
            dst: m.dst,
            attempt: m.attempt,
        }
    }

    /// Pre-announces the cross-shard continuation of a message whose
    /// final segment channel was just granted at `t`: the boundary
    /// outcome is a pure function of state known now, the crossing takes
    /// ≥ Δ, so the receiving shard learns of it a full window early.
    fn announce(&mut self, msg_id: u32, t: f64, cross: f64) {
        let m = self.msgs[msg_id as usize];
        let t_fire = t + cross;
        let header_limited = t_fire + (self.m_flits - 1.0) * m.cur.bottleneck_t;
        let finish = match self.cfg.coupling {
            Coupling::StoreAndForward | Coupling::VirtualCutThrough => header_limited,
            Coupling::CutThrough => header_limited.max(m.prev_finish + m.cur.sum_t),
        };
        let next = self.seg_meta(msg_id, m.seg + 1);
        let (time, direct) = match self.cfg.coupling {
            Coupling::StoreAndForward => (finish, false),
            Coupling::VirtualCutThrough => {
                let start = (finish - (self.m_flits - 1.0) * next.bottleneck_t).max(t_fire);
                if start <= t_fire {
                    (t_fire, true)
                } else {
                    (start, false)
                }
            }
            Coupling::CutThrough => (t_fire, true),
        };
        let first_chan = if m.route.is_dynamic() {
            self.cache.route(m.cache_idx).chans[next.start as usize]
        } else {
            self.routes.chan_at(next.start)
        };
        let dst_shard = self.part.chan_shard[first_chan as usize];
        debug_assert_ne!(dst_shard, self.id, "segment boundaries always cross shards");
        let seq = self.xfer_seq;
        self.xfer_seq += 1;
        self.outgoing.push(Transfer {
            time,
            direct,
            retransmit: false,
            dst_shard,
            src_shard: self.id,
            src_seq: seq,
            msg: Self::to_xfer(&m, m.seg + 1, finish),
        });
    }

    fn on_fault(&mut self, link: u32, fail: bool) {
        debug_assert!(!self.failed.is_empty(), "fault events imply a full mask");
        self.failed[link as usize] = fail;
        self.failed[(link ^ 1) as usize] = fail;
    }

    fn drop_msg(&mut self, msg_id: u32, t: f64) {
        let m = self.msgs[msg_id as usize];
        self.dropped += 1;
        self.jot(t, JOp::Dropped);
        for k in 0..m.idx {
            let held = self.seg_chan(msg_id, k as u32);
            self.queue.schedule(t, SEvent::Release { chan: held });
        }
        if m.attempt + 1 >= self.cfg.faults.max_attempts {
            self.unreachable += 1;
            self.jot(t, JOp::Unreach);
            self.free.push(msg_id);
        } else {
            let delay = self.cfg.faults.retry_delay(m.attempt);
            let src_shard = self.part.node_shard[m.src as usize];
            if src_shard == self.id {
                self.queue
                    .schedule(t + delay, SEvent::Retransmit { msg: msg_id });
            } else {
                // Re-entry happens at the source's shard; the retry
                // timeout bounds the delay from below, so the window Δ
                // (shrunk to it under fault schedules) covers this hop.
                let seq = self.xfer_seq;
                self.xfer_seq += 1;
                self.outgoing.push(Transfer {
                    time: t + delay,
                    direct: false,
                    retransmit: true,
                    dst_shard: src_shard,
                    src_shard: self.id,
                    src_seq: seq,
                    msg: Self::to_xfer(&m, m.seg, m.prev_finish),
                });
                self.free.push(msg_id);
            }
        }
    }

    fn on_retransmit(&mut self, msg_id: u32, t: f64) {
        self.retransmits += 1;
        self.jot(t, JOp::Retrans);
        debug_assert!(
            !self.msgs[msg_id as usize].route.is_dynamic(),
            "adaptive + faults falls back to the serial engine"
        );
        let cur = self.seg_meta(msg_id, 0);
        let mm = &mut self.msgs[msg_id as usize];
        mm.attempt += 1;
        mm.seg = 0;
        mm.idx = 0;
        mm.prev_finish = t;
        mm.cur = cur;
        self.request_current(msg_id, t);
    }

    fn on_generate(&mut self, node: u32, t: f64) {
        let local = (node - self.part.shard_nodes[self.id as usize].start) as usize;
        let k = self.cursors[local] as usize;
        self.cursors[local] += 1;
        let stream = &self.streams[node as usize];
        let rec = stream[k];
        debug_assert_eq!(rec.time.to_bits(), t.to_bits(), "oracle replay out of sync");
        if rec.dst == NOOP {
            return;
        }
        self.generated += 1;
        self.jot(t, JOp::Gen);
        if rec.unreachable {
            self.unreachable += 1;
            self.jot(t, JOp::Unreach);
            if let Some(next) = stream.get(k + 1) {
                let nt = next.time;
                self.queue.schedule(nt, SEvent::Generate { node });
            }
            return;
        }
        let slot = self.alloc();
        let nsegs = if rec.route.is_dynamic() {
            self.cache.route(rec.cache_idx).nsegs
        } else {
            self.routes.num_segments(rec.route) as u8
        };
        let dst = rec.dst as usize;
        self.msgs[slot as usize] = SMsg {
            gen_time: t,
            prev_finish: t,
            cur: SegMeta {
                start: 0,
                len: 0,
                sum_t: 0.0,
                bottleneck_t: 0.0,
            },
            route: rec.route,
            cache_idx: rec.cache_idx,
            seg: 0,
            nsegs,
            idx: 0,
            recorded: rec.recorded,
            audited: rec.audited,
            intra: self.built.cluster_of(node as usize) == self.built.cluster_of(dst),
            src_cluster: self.built.cluster_of(node as usize) as u32,
            src: node,
            dst: dst as u32,
            attempt: 0,
        };
        let cur = self.seg_meta(slot, 0);
        self.msgs[slot as usize].cur = cur;
        self.request_current(slot, t);
        if let Some(next) = stream.get(k + 1) {
            let nt = next.time;
            self.queue.schedule(nt, SEvent::Generate { node });
        }
    }

    fn request_current(&mut self, msg_id: u32, t: f64) {
        let idx = self.msgs[msg_id as usize].idx;
        let chan = self.seg_chan(msg_id, idx as u32);
        debug_assert_eq!(
            self.part.chan_shard[chan as usize], self.id,
            "requested a channel outside this shard"
        );
        if self.is_failed(chan) {
            self.drop_msg(msg_id, t);
            return;
        }
        if self.chans[chan as usize].busy {
            self.chans[chan as usize].queue.push_back(msg_id);
        } else {
            // Save the pre-window busy state before mutating it.
            self.touch(chan);
            let cross = self.chans[chan as usize].t;
            self.chans[chan as usize].busy = true;
            self.busy_since[chan as usize] = t;
            self.jot(t, JOp::Grant { chan });
            self.queue
                .schedule(t + cross, SEvent::Advance { msg: msg_id });
            let m = &self.msgs[msg_id as usize];
            if (m.idx as u32) + 1 == m.cur.len && m.seg + 1 < m.nsegs {
                self.announce(msg_id, t, cross);
            }
        }
    }

    fn on_advance(&mut self, msg_id: u32, t: f64) {
        let m = self.msgs[msg_id as usize];
        let at_seg_end = (m.idx as u32) + 1 == m.cur.len;
        if !at_seg_end {
            self.msgs[msg_id as usize].idx += 1;
            self.request_current(msg_id, t);
            return;
        }
        let header_limited = t + (self.m_flits - 1.0) * m.cur.bottleneck_t;
        let finish = match self.cfg.coupling {
            Coupling::StoreAndForward | Coupling::VirtualCutThrough => header_limited,
            Coupling::CutThrough => header_limited.max(m.prev_finish + m.cur.sum_t),
        };
        let mut suffix = 0.0;
        for k in (0..m.cur.len).rev() {
            let chan = self.seg_chan(msg_id, k);
            let release = (finish - suffix).max(t);
            self.queue.schedule(release, SEvent::Release { chan });
            suffix += self.chans[chan as usize].t;
        }
        let last_segment = m.seg + 1 == m.nsegs;
        if last_segment {
            self.delivered_total += 1;
            self.jot(t, JOp::Delivered);
            let latency = finish - m.gen_time;
            if m.recorded || m.audited {
                self.entries.push(DeliveryEntry {
                    t,
                    latency,
                    src: m.src,
                    gen_time: m.gen_time,
                    recorded: m.recorded,
                    audited: m.audited,
                    intra: m.intra,
                    src_cluster: m.src_cluster,
                    shard: self.id,
                    jcut: self.journal.len() as u32,
                });
            }
            self.free.push(msg_id);
        } else {
            // The continuation lives on another shard and was announced
            // at the final grant; locally the message is done.
            self.free.push(msg_id);
        }
    }

    fn on_release(&mut self, chan: u32, t: f64) {
        self.touch(chan);
        self.busy_total[chan as usize] += t - self.busy_since[chan as usize];
        self.jot(t, JOp::Accrue { chan });
        debug_assert!(self.chans[chan as usize].busy, "releasing a free channel");
        loop {
            let Some(next) = self.chans[chan as usize].queue.pop_front() else {
                self.chans[chan as usize].busy = false;
                self.jot(t, JOp::Free { chan });
                return;
            };
            if self.is_failed(chan) {
                self.drop_msg(next, t);
                continue;
            }
            let cross = self.chans[chan as usize].t;
            self.busy_since[chan as usize] = t;
            self.jot(t, JOp::Grant { chan });
            self.queue
                .schedule(t + cross, SEvent::Advance { msg: next });
            let m = &self.msgs[next as usize];
            if (m.idx as u32) + 1 == m.cur.len && m.seg + 1 < m.nsegs {
                self.announce(next, t, cross);
            }
            return;
        }
    }

    // -- stop reconstruction ------------------------------------------------

    /// Rolls this shard back to the exact serial stop: restore pre-window
    /// busy state and counters, replay the journal up to `jcut` (filtered
    /// to `t ≤ t_sim`), then flush open busy intervals at `t_sim`.
    fn truncate_to(&mut self, jcut: usize, t_sim: f64) {
        for (&chan, u) in &self.undo {
            let c = chan as usize;
            self.busy_total[c] = u.busy_total;
            self.busy_since[c] = u.busy_since;
            self.chans[c].busy = u.busy;
        }
        self.generated = self.snap.generated;
        self.delivered_total = self.snap.delivered_total;
        self.dropped = self.snap.dropped;
        self.retransmits = self.snap.retransmits;
        self.unreachable = self.snap.unreachable;
        for i in 0..jcut {
            let r = self.journal[i];
            if r.t > t_sim {
                continue;
            }
            match r.op {
                JOp::Pop => {}
                JOp::Gen => self.generated += 1,
                JOp::Delivered => self.delivered_total += 1,
                JOp::Dropped => self.dropped += 1,
                JOp::Retrans => self.retransmits += 1,
                JOp::Unreach => self.unreachable += 1,
                JOp::Grant { chan } => {
                    self.chans[chan as usize].busy = true;
                    self.busy_since[chan as usize] = r.t;
                }
                JOp::Accrue { chan } => {
                    self.busy_total[chan as usize] += r.t - self.busy_since[chan as usize];
                }
                JOp::Free { chan } => self.chans[chan as usize].busy = false,
            }
        }
    }

    /// Flushes the open busy interval of every still-busy owned channel
    /// at the run's final clock, exactly like the serial epilogue.
    fn flush_busy(&mut self, t_sim: f64) {
        for chan in 0..self.chans.len() {
            if self.part.chan_shard[chan] == self.id && self.chans[chan].busy {
                self.busy_total[chan] += t_sim - self.busy_since[chan];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Window protocol
// ---------------------------------------------------------------------------

/// Everything the coordinator needs from one shard after one window.
struct WindowRep {
    shard: u32,
    /// Earliest remaining local activity (queue head or pending direct
    /// transfer) — all `≥ w1`.
    next_time: Option<f64>,
    outgoing: Vec<Transfer>,
    entries: Vec<DeliveryEntry>,
    window_pops: u64,
    last_pop: f64,
}

/// Per-shard journal geometry, shipped only when a window contains a
/// stop candidate.
struct JournalRep {
    /// Journal indices of the window's Pop records, in order.
    pop_positions: Vec<u32>,
    /// The matching pop times.
    pop_times: Vec<f64>,
}

/// How the final window is cut.
#[derive(Clone)]
enum FinalizeMode {
    /// Roll back to `jcuts[shard]` journal ops filtered to `t ≤ t_sim`
    /// (`usize::MAX` = the whole journal), then flush open busy time.
    Exact { jcuts: Vec<usize>, t_sim: f64 },
    /// The run drained: no truncation, just flush open busy intervals.
    Drain { t_sim: f64 },
}

/// A shard's final contribution to the merged results.
struct ShardFinal {
    generated: u64,
    delivered_total: u64,
    dropped: u64,
    retransmits: u64,
    unreachable: u64,
    busy_total: Vec<f64>,
    slab_len: u64,
}

fn shard_window<S: Scheduler<SEvent>>(
    s: &mut ShardSim<'_, S>,
    w1: f64,
    inbox: Vec<Transfer>,
) -> WindowRep {
    s.begin_window();
    for x in inbox {
        s.deliver(x);
    }
    s.settle_incoming();
    s.run_window(w1);
    WindowRep {
        shard: s.id,
        next_time: s.next_time(),
        outgoing: std::mem::take(&mut s.outgoing),
        entries: std::mem::take(&mut s.entries),
        window_pops: s.events_processed - s.snap.events_processed,
        last_pop: s.last_pop,
    }
}

fn shard_journal<S: Scheduler<SEvent>>(s: &ShardSim<'_, S>) -> JournalRep {
    let mut pop_positions = Vec::new();
    let mut pop_times = Vec::new();
    for (i, r) in s.journal.iter().enumerate() {
        if matches!(r.op, JOp::Pop) {
            pop_positions.push(i as u32);
            pop_times.push(r.t);
        }
    }
    JournalRep {
        pop_positions,
        pop_times,
    }
}

fn shard_finalize<S: Scheduler<SEvent>>(
    s: &mut ShardSim<'_, S>,
    mode: &FinalizeMode,
) -> ShardFinal {
    match *mode {
        FinalizeMode::Exact { ref jcuts, t_sim } => {
            let jc = jcuts[s.id as usize].min(s.journal.len());
            s.truncate_to(jc, t_sim);
            s.flush_busy(t_sim);
        }
        FinalizeMode::Drain { t_sim } => s.flush_busy(t_sim),
    }
    ShardFinal {
        generated: s.generated,
        delivered_total: s.delivered_total,
        dropped: s.dropped,
        retransmits: s.retransmits,
        unreachable: s.unreachable,
        busy_total: std::mem::take(&mut s.busy_total),
        slab_len: s.msgs.len() as u64,
    }
}

enum Cmd {
    Window {
        w1: f64,
        inboxes: Vec<Vec<Transfer>>,
    },
    ShipJournal,
    Finalize(FinalizeMode),
}

enum Rep {
    Window(Vec<WindowRep>),
    Journal(Vec<(u32, JournalRep)>),
    Final(Vec<(u32, ShardFinal)>),
}

fn worker_loop<S: Scheduler<SEvent>>(
    shards: &mut [ShardSim<'_, S>],
    rx: std::sync::mpsc::Receiver<Cmd>,
    tx: std::sync::mpsc::Sender<Rep>,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Window { w1, inboxes } => {
                let reps = shards
                    .iter_mut()
                    .zip(inboxes)
                    .map(|(s, inbox)| shard_window(s, w1, inbox))
                    .collect();
                if tx.send(Rep::Window(reps)).is_err() {
                    return;
                }
            }
            Cmd::ShipJournal => {
                let js = shards.iter().map(|s| (s.id, shard_journal(s))).collect();
                if tx.send(Rep::Journal(js)).is_err() {
                    return;
                }
            }
            Cmd::Finalize(mode) => {
                let fs = shards
                    .iter_mut()
                    .map(|s| (s.id, shard_finalize(s, &mode)))
                    .collect();
                let _ = tx.send(Rep::Final(fs));
                return;
            }
        }
    }
}

/// The shard pool: the same window protocol served inline (one worker)
/// or over channels to scoped worker threads. Results are identical by
/// construction — every merge the coordinator performs is ordered by
/// shard id, never by arrival.
enum Pool<'p, 'a, S> {
    Inline(&'p mut Vec<ShardSim<'a, S>>),
    Threads {
        txs: Vec<std::sync::mpsc::Sender<Cmd>>,
        rxs: Vec<std::sync::mpsc::Receiver<Rep>>,
        /// Shard ids per worker, aligned with `txs`.
        owners: Vec<Vec<u32>>,
    },
}

impl<S: Scheduler<SEvent>> Pool<'_, '_, S> {
    /// Runs one window on every shard; `pending[shard]` is consumed as
    /// each shard's transfer inbox. Replies come back in shard-id order.
    fn window(&mut self, w1: f64, pending: &mut [Vec<Transfer>]) -> Vec<WindowRep> {
        match self {
            Pool::Inline(shards) => shards
                .iter_mut()
                .map(|s| {
                    let inbox = std::mem::take(&mut pending[s.id as usize]);
                    shard_window(s, w1, inbox)
                })
                .collect(),
            Pool::Threads { txs, rxs, owners } => {
                for (w, tx) in txs.iter().enumerate() {
                    let inboxes = owners[w]
                        .iter()
                        .map(|&id| std::mem::take(&mut pending[id as usize]))
                        .collect();
                    tx.send(Cmd::Window { w1, inboxes }).expect("worker alive");
                }
                let mut reps: Vec<WindowRep> = Vec::new();
                for rx in rxs.iter() {
                    match rx.recv().expect("worker reply") {
                        Rep::Window(mut v) => reps.append(&mut v),
                        _ => unreachable!("protocol: expected window reply"),
                    }
                }
                reps.sort_by_key(|r| r.shard);
                reps
            }
        }
    }

    /// Ships the current window's journal geometry, indexed by shard id.
    fn journals(&mut self) -> Vec<JournalRep> {
        match self {
            Pool::Inline(shards) => shards.iter().map(|s| shard_journal(s)).collect(),
            Pool::Threads { txs, rxs, .. } => {
                for tx in txs.iter() {
                    tx.send(Cmd::ShipJournal).expect("worker alive");
                }
                let mut js: Vec<(u32, JournalRep)> = Vec::new();
                for rx in rxs.iter() {
                    match rx.recv().expect("worker reply") {
                        Rep::Journal(mut v) => js.append(&mut v),
                        _ => unreachable!("protocol: expected journal reply"),
                    }
                }
                js.sort_by_key(|(id, _)| *id);
                js.into_iter().map(|(_, j)| j).collect()
            }
        }
    }

    /// Cuts the final window and collects per-shard results, indexed by
    /// shard id. Workers terminate after replying.
    fn finalize(&mut self, mode: FinalizeMode) -> Vec<ShardFinal> {
        match self {
            Pool::Inline(shards) => shards
                .iter_mut()
                .map(|s| shard_finalize(s, &mode))
                .collect(),
            Pool::Threads { txs, rxs, .. } => {
                for tx in txs.iter() {
                    tx.send(Cmd::Finalize(mode.clone())).expect("worker alive");
                }
                let mut fs: Vec<(u32, ShardFinal)> = Vec::new();
                for rx in rxs.iter() {
                    match rx.recv().expect("worker reply") {
                        Rep::Final(mut v) => fs.append(&mut v),
                        _ => unreachable!("protocol: expected final reply"),
                    }
                }
                fs.sort_by_key(|(id, _)| *id);
                fs.into_iter().map(|(_, f)| f).collect()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// The statistic sinks, fed in merged `(time, shard, order)` delivery
/// order — the exact accumulation order of the serial engine.
struct Sinks {
    latency: OnlineStats,
    intra: OnlineStats,
    inter: OnlineStats,
    per_cluster: Vec<OnlineStats>,
    histogram: Option<Histogram>,
    percentiles: Option<Percentiles>,
    audit: Option<Vec<f64>>,
    recorded_done: u64,
}

impl Sinks {
    fn new(built: &BuiltSystem, cfg: &SimConfig) -> Self {
        Sinks {
            latency: OnlineStats::new(),
            intra: OnlineStats::new(),
            inter: OnlineStats::new(),
            per_cluster: vec![OnlineStats::new(); built.spec().num_clusters()],
            histogram: cfg
                .histogram
                .map(|(hi, bins)| Histogram::new(0.0, hi, bins)),
            percentiles: if cfg.collect_percentiles {
                Some(Percentiles::with_capacity(cfg.measured as usize))
            } else {
                None
            },
            audit: if cfg.audit_warmup {
                Some(Vec::with_capacity((cfg.warmup + cfg.measured) as usize))
            } else {
                None
            },
            recorded_done: 0,
        }
    }

    /// Mirrors the serial delivery path: audit stream first, then the
    /// recorded sinks.
    fn replay(&mut self, e: &DeliveryEntry) {
        if e.audited {
            if let Some(a) = &mut self.audit {
                a.push(e.latency);
            }
        }
        if e.recorded {
            self.latency.push(e.latency);
            if e.intra {
                self.intra.push(e.latency);
            } else {
                self.inter.push(e.latency);
            }
            self.per_cluster[e.src_cluster as usize].push(e.latency);
            if let Some(h) = &mut self.histogram {
                h.record(e.latency);
            }
            if let Some(p) = &mut self.percentiles {
                p.record(e.latency);
            }
            self.recorded_done += 1;
        }
    }
}

/// The conservative lookahead Δ: the minimum inter-cluster (ECN1 + ICN2)
/// crossing time — every cross-shard continuation is announced at the
/// grant of a crossing taking at least this long. A timed fault schedule
/// adds cross-shard retransmissions delayed by at least the retry
/// timeout, so Δ shrinks to it. Static-only faults never drop messages
/// (interned routes avoid failed links), so they leave Δ alone.
fn lookahead(built: &BuiltSystem, cfg: &SimConfig) -> f64 {
    let mut d = built.min_intercluster_channel_time();
    if !cfg.faults.events.is_empty() {
        d = d.min(cfg.faults.retry_timeout);
    }
    d
}

#[allow(clippy::too_many_arguments)]
fn assemble(
    built: &BuiltSystem,
    cfg: &SimConfig,
    part: &Partition,
    mut sinks: Sinks,
    finals: Vec<ShardFinal>,
    events_processed: u64,
    completed: bool,
    t_sim: f64,
    stop: StopReason,
) -> SimResults {
    let mut busy = vec![0.0; built.num_channels()];
    for (c, b) in busy.iter_mut().enumerate() {
        *b = finals[part.chan_shard[c] as usize].busy_total[c];
    }
    SimResults::collect(
        &sinks.latency,
        &sinks.intra,
        &sinks.inter,
        &sinks.per_cluster,
        finals.iter().map(|f| f.generated).sum(),
        sinks.recorded_done,
        completed,
        t_sim,
        sinks.histogram.take(),
        busy,
        Vec::new(),
        sinks.percentiles.as_mut().and_then(exact_percentiles),
        sinks
            .audit
            .as_deref()
            .and_then(|stream| WarmupAudit::from_stream(stream, cfg.warmup)),
        EngineCounters {
            events_processed,
            peak_live_msgs: finals.iter().map(|f| f.slab_len).max().unwrap_or(0),
            delivered_total: finals.iter().map(|f| f.delivered_total).sum(),
            dropped: finals.iter().map(|f| f.dropped).sum(),
            retransmits: finals.iter().map(|f| f.retransmits).sum(),
            unreachable: finals.iter().map(|f| f.unreachable).sum(),
            stop,
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn run_loop<S: Scheduler<SEvent>>(
    pool: &mut Pool<'_, '_, S>,
    n_shards: usize,
    delta: f64,
    built: &BuiltSystem,
    cfg: &SimConfig,
    part: &Partition,
    mut tmin: Option<f64>,
) -> SimResults {
    let mut sinks = Sinks::new(built, cfg);
    let mut events_before: u64 = 0;
    // The serial clock starts at 0 and only moves on executed pops.
    let mut last_pop: f64 = 0.0;
    let mut pending: Vec<Vec<Transfer>> = vec![Vec::new(); n_shards];
    loop {
        let Some(t0) = tmin else {
            // Every queue, pending transfer and inbox is empty: drained.
            let finals = pool.finalize(FinalizeMode::Drain { t_sim: last_pop });
            return assemble(
                built,
                cfg,
                part,
                sinks,
                finals,
                events_before,
                false,
                last_pop,
                StopReason::Drained,
            );
        };
        // GVT jump: the window starts at the global minimum next-event
        // time. Guard against float absorption (t0 + Δ == t0) so the
        // window always admits the t0 event and the loop progresses.
        let mut w1 = t0 + delta;
        if w1 <= t0 {
            w1 = t0.next_up();
        }
        let reps = pool.window(w1, &mut pending);
        let window_pops: u64 = reps.iter().map(|r| r.window_pops).sum();
        // Merged delivery order: the canonical (time, src, gen_time)
        // order shared with the serial engine's deferred sink replay —
        // see `delivery_order`.
        let mut entries: Vec<DeliveryEntry> = reps
            .iter()
            .flat_map(|r| r.entries.iter().copied())
            .collect();
        entries.sort_by(|a, b| delivery_order((a.t, a.src, a.gen_time), (b.t, b.src, b.gen_time)));
        let recorded_in_window = entries.iter().filter(|e| e.recorded).count() as u64;
        let measured_hit = sinks.recorded_done + recorded_in_window >= cfg.measured;
        let cap_hit = events_before + window_pops > cfg.max_events;
        if measured_hit || cap_hit {
            let js = pool.journals();
            if measured_hit {
                // The serial engine breaks on the pop that delivers the
                // `measured`-th recorded message — locate it.
                let need = (cfg.measured - sinks.recorded_done) as usize;
                let stop_entry = entries
                    .iter()
                    .filter(|e| e.recorded)
                    .nth(need - 1)
                    .copied()
                    .expect("measured_hit guarantees the entry exists");
                let s_star = stop_entry.shard as usize;
                let jp = &js[s_star];
                // The delivering pop: last Pop record before the entry.
                let k_stop = jp.pop_positions.partition_point(|&p| p < stop_entry.jcut) - 1;
                let t_stop = stop_entry.t;
                debug_assert_eq!(jp.pop_times[k_stop].to_bits(), t_stop.to_bits());
                // Global event number of the stop pop: everything before
                // it in merged time order, plus itself.
                let mut events_at_stop = events_before + (k_stop as u64 + 1);
                for (sid, j) in js.iter().enumerate() {
                    if sid != s_star {
                        events_at_stop +=
                            j.pop_times.iter().filter(|&&t| t <= t_stop).count() as u64;
                    }
                }
                if events_at_stop <= cfg.max_events {
                    let mut jcuts = vec![usize::MAX; n_shards];
                    jcuts[s_star] = jp
                        .pop_positions
                        .get(k_stop + 1)
                        .map(|&p| p as usize)
                        .unwrap_or(usize::MAX);
                    for e in &entries {
                        if e.t <= t_stop && (e.jcut as usize) <= jcuts[e.shard as usize] {
                            sinks.replay(e);
                        }
                    }
                    debug_assert_eq!(sinks.recorded_done, cfg.measured);
                    let finals = pool.finalize(FinalizeMode::Exact {
                        jcuts,
                        t_sim: t_stop,
                    });
                    return assemble(
                        built,
                        cfg,
                        part,
                        sinks,
                        finals,
                        events_at_stop,
                        true,
                        t_stop,
                        StopReason::MeasuredComplete,
                    );
                }
                // The measured milestone lies past the event cap: the cap
                // fired first. Fall through.
            }
            // Event cap: the serial engine counts the breaching pop but
            // does not execute it, and the clock stays on the last
            // executed event.
            let n_exec = (cfg.max_events - events_before) as usize;
            let mut pops: Vec<(f64, u32, u32)> = js
                .iter()
                .enumerate()
                .flat_map(|(sid, j)| {
                    j.pop_times
                        .iter()
                        .enumerate()
                        .map(move |(k, &t)| (t, sid as u32, k as u32))
                })
                .collect();
            pops.sort_by(|a, b| a.0.total_cmp(&b.0));
            debug_assert!(pops.len() > n_exec, "cap implies an unexecuted pop");
            let t_sim = if n_exec == 0 {
                last_pop
            } else {
                pops[n_exec - 1].0
            };
            let mut n_exec_s = vec![0usize; n_shards];
            for &(_, sid, _) in &pops[..n_exec] {
                n_exec_s[sid as usize] += 1;
            }
            let jcuts: Vec<usize> = (0..n_shards)
                .map(|sid| {
                    js[sid]
                        .pop_positions
                        .get(n_exec_s[sid])
                        .map(|&p| p as usize)
                        .unwrap_or(usize::MAX)
                })
                .collect();
            for e in &entries {
                if e.t <= t_sim && (e.jcut as usize) <= jcuts[e.shard as usize] {
                    sinks.replay(e);
                }
            }
            let finals = pool.finalize(FinalizeMode::Exact { jcuts, t_sim });
            return assemble(
                built,
                cfg,
                part,
                sinks,
                finals,
                cfg.max_events + 1,
                false,
                t_sim,
                StopReason::EventCap,
            );
        }
        // No stop in this window: fold its deliveries into the sinks and
        // route its transfers for the next barrier.
        for e in &entries {
            sinks.replay(e);
        }
        events_before += window_pops;
        let mut next: Option<f64> = reps
            .iter()
            .filter_map(|r| r.next_time)
            .fold(None, |m, t| Some(m.map_or(t, |m: f64| m.min(t))));
        for r in &reps {
            if r.last_pop > last_pop {
                last_pop = r.last_pop;
            }
        }
        let mut all: Vec<Transfer> = reps.into_iter().flat_map(|r| r.outgoing).collect();
        all.sort_by(|a, b| {
            transfer_key(a)
                .0
                .total_cmp(&transfer_key(b).0)
                .then(a.src_shard.cmp(&b.src_shard))
                .then(a.src_seq.cmp(&b.src_seq))
        });
        for x in all {
            next = Some(next.map_or(x.time, |m: f64| m.min(x.time)));
            pending[x.dst_shard as usize].push(x);
        }
        tmin = next;
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Runs the sharded engine; the caller must have checked
/// [`sharding_eligible`].
pub(crate) fn run_sharded(
    built: &BuiltSystem,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
    arrival: &ArrivalSpec,
) -> SimResults {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_sharded_workers(built, wl, pattern, cfg, arrival, workers)
}

/// Test seam: like the internal sharded runner but with an explicit
/// worker-thread count, so the parallel window protocol is exercised
/// even on a single-core machine. Not part of the public API.
#[doc(hidden)]
pub fn run_sharded_workers(
    built: &BuiltSystem,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
    arrival: &ArrivalSpec,
    workers: usize,
) -> SimResults {
    assert!(
        sharding_eligible(built, cfg),
        "configuration cannot run sharded (shards off, traced, adaptive + faults, \
         single cluster, or empty measured population)"
    );
    match cfg.scheduler {
        SchedulerKind::Heap => {
            run_sharded_generic::<EventQueue<SEvent>>(built, wl, pattern, cfg, arrival, workers)
        }
        SchedulerKind::Calendar => {
            run_sharded_generic::<CalendarQueue<SEvent>>(built, wl, pattern, cfg, arrival, workers)
        }
    }
}

fn run_sharded_generic<S: Scheduler<SEvent> + Send>(
    built: &BuiltSystem,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
    arrival: &ArrivalSpec,
    workers: usize,
) -> SimResults {
    assert!(
        arrival.mean_rate() > 0.0,
        "simulation needs a positive generation rate"
    );
    let oracle = build_oracle(built, &pattern, cfg, arrival);
    let part = Partition::new(built, cfg.shards);
    let n = part.n_shards();
    let delta = lookahead(built, cfg);
    let mut shards: Vec<ShardSim<'_, S>> = (0..n)
        .map(|i| ShardSim::new(i as u32, built, &oracle, &part, cfg, wl))
        .collect();
    let mut tmin: Option<f64> = None;
    for s in shards.iter_mut() {
        s.prime();
        if let Some(t) = s.next_time() {
            tmin = Some(tmin.map_or(t, |m: f64| m.min(t)));
        }
    }
    let workers = workers.clamp(1, n);
    if workers <= 1 {
        run_loop(
            &mut Pool::Inline(&mut shards),
            n,
            delta,
            built,
            cfg,
            &part,
            tmin,
        )
    } else {
        std::thread::scope(|scope| {
            let mut txs = Vec::new();
            let mut rxs = Vec::new();
            let mut owners = Vec::new();
            let per = n.div_ceil(workers);
            for chunk in shards.chunks_mut(per) {
                let (ctx, crx) = std::sync::mpsc::channel::<Cmd>();
                let (wtx, wrx) = std::sync::mpsc::channel::<Rep>();
                owners.push(chunk.iter().map(|s| s.id).collect::<Vec<u32>>());
                scope.spawn(move || worker_loop(chunk, crx, wtx));
                txs.push(ctx);
                rxs.push(wrx);
            }
            run_loop::<S>(
                &mut Pool::Threads { txs, rxs, owners },
                n,
                delta,
                built,
                cfg,
                &part,
                tmin,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_simulation_built;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};

    fn spec() -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
            topology: Default::default(),
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net1).unwrap()
    }

    fn wl(rate: f64) -> Workload {
        Workload::new(rate, 32, 256.0).unwrap()
    }

    fn cfg(seed: u64) -> SimConfig {
        SimConfig {
            warmup: 200,
            measured: 2_000,
            drain: 200,
            seed,
            ..SimConfig::default()
        }
    }

    /// Field-by-field bit-equality, `peak_live_msgs` excluded (documented
    /// as shard-local).
    fn assert_bit_identical(serial: &SimResults, sharded: &SimResults, label: &str) {
        assert_eq!(serial.latency, sharded.latency, "{label}: latency");
        assert_eq!(serial.intra, sharded.intra, "{label}: intra");
        assert_eq!(serial.inter, sharded.inter, "{label}: inter");
        assert_eq!(
            serial.per_cluster, sharded.per_cluster,
            "{label}: per_cluster"
        );
        assert_eq!(serial.generated, sharded.generated, "{label}: generated");
        assert_eq!(
            serial.delivered_recorded, sharded.delivered_recorded,
            "{label}: delivered_recorded"
        );
        assert_eq!(serial.completed, sharded.completed, "{label}: completed");
        assert_eq!(
            serial.sim_time.to_bits(),
            sharded.sim_time.to_bits(),
            "{label}: sim_time {} vs {}",
            serial.sim_time,
            sharded.sim_time
        );
        assert_eq!(serial.histogram, sharded.histogram, "{label}: histogram");
        assert_eq!(
            serial.channel_busy.len(),
            sharded.channel_busy.len(),
            "{label}: channel count"
        );
        for (c, (a, b)) in serial
            .channel_busy
            .iter()
            .zip(&sharded.channel_busy)
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: channel_busy[{c}] {a} vs {b}"
            );
        }
        assert_eq!(
            serial.percentiles, sharded.percentiles,
            "{label}: percentiles"
        );
        assert_eq!(
            serial.events_processed, sharded.events_processed,
            "{label}: events_processed"
        );
        assert_eq!(
            serial.delivered_total, sharded.delivered_total,
            "{label}: delivered_total"
        );
        assert_eq!(serial.dropped, sharded.dropped, "{label}: dropped");
        assert_eq!(
            serial.retransmits, sharded.retransmits,
            "{label}: retransmits"
        );
        assert_eq!(
            serial.unreachable, sharded.unreachable,
            "{label}: unreachable"
        );
        assert_eq!(serial.stop, sharded.stop, "{label}: stop");
    }

    #[test]
    fn sharded_bit_identical_to_serial_uniform() {
        let spec = spec();
        let wl = wl(3e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let serial = run_simulation_built(&built, &wl, Pattern::Uniform, &cfg(11));
        let sharded = run_simulation_built(
            &built,
            &wl,
            Pattern::Uniform,
            &SimConfig {
                shards: ShardMode::Auto,
                ..cfg(11)
            },
        );
        assert!(serial.completed);
        assert_bit_identical(&serial, &sharded, "uniform/auto");
    }

    #[test]
    fn sharded_bit_identical_across_couplings_schedulers_and_shard_counts() {
        let spec = spec();
        let wl = wl(6e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        for coupling in [
            Coupling::VirtualCutThrough,
            Coupling::StoreAndForward,
            Coupling::CutThrough,
        ] {
            for scheduler in [SchedulerKind::Heap, SchedulerKind::Calendar] {
                let base = SimConfig {
                    coupling,
                    scheduler,
                    ..cfg(23)
                };
                let serial = run_simulation_built(&built, &wl, Pattern::Uniform, &base);
                for shards in [ShardMode::N(1), ShardMode::N(2), ShardMode::Auto] {
                    let sharded = run_simulation_built(
                        &built,
                        &wl,
                        Pattern::Uniform,
                        &SimConfig {
                            shards,
                            ..base.clone()
                        },
                    );
                    assert_bit_identical(
                        &serial,
                        &sharded,
                        &format!("{coupling:?}/{scheduler:?}/{shards:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_bit_identical_with_adaptive_routing() {
        // Adaptive routing without faults shards fine: the oracle
        // pre-draws the ascent digits in generation order.
        let spec = spec();
        let wl = wl(4e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let base = SimConfig {
            adaptive_routing: true,
            ..cfg(31)
        };
        let serial = run_simulation_built(&built, &wl, Pattern::Uniform, &base);
        let sharded = run_simulation_built(
            &built,
            &wl,
            Pattern::Uniform,
            &SimConfig {
                shards: ShardMode::Auto,
                ..base
            },
        );
        assert!(serial.completed);
        assert_bit_identical(&serial, &sharded, "adaptive");
    }

    #[test]
    fn sharded_bit_identical_with_side_channels() {
        // Histogram, exact percentiles and the warm-up audit must all
        // come out of the merged replay bit-equal to the serial sinks.
        let spec = spec();
        let wl = wl(5e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let base = SimConfig {
            histogram: Some((50_000.0, 64)),
            collect_percentiles: true,
            audit_warmup: true,
            ..cfg(37)
        };
        let serial = run_simulation_built(&built, &wl, Pattern::Uniform, &base);
        let sharded = run_simulation_built(
            &built,
            &wl,
            Pattern::Uniform,
            &SimConfig {
                shards: ShardMode::Auto,
                ..base
            },
        );
        assert_bit_identical(&serial, &sharded, "side-channels");
        assert_eq!(serial.warmup_audit, sharded.warmup_audit);
    }

    #[test]
    fn sharded_bit_identical_with_static_faults() {
        // Static faults reroute at build time; drops never happen, so
        // sharding stays lossless (write-offs occur at generation).
        let spec = spec();
        let wl = wl(3e-4);
        let mut base = cfg(41);
        base.faults.link_fraction = 0.15;
        base.faults.fault_seed = 99;
        let built = BuiltSystem::try_build_with(
            &spec,
            wl.flit_bytes,
            cocnet_topology::AscentPolicy::default(),
            &base.faults,
        )
        .unwrap();
        let serial = run_simulation_built(&built, &wl, Pattern::Uniform, &base);
        let sharded = run_simulation_built(
            &built,
            &wl,
            Pattern::Uniform,
            &SimConfig {
                shards: ShardMode::Auto,
                ..base.clone()
            },
        );
        assert!(serial.unreachable > 0, "15% faults partition some pairs");
        assert_bit_identical(&serial, &sharded, "static-faults");
    }

    /// The injection channel of node 0's interned routes.
    fn node0_injection_channel(built: &BuiltSystem) -> u32 {
        let routes = built.route_table();
        let r = routes.route_ref(0, 1);
        let seg = routes.seg_meta(r, 0);
        routes.chan_at(seg.start)
    }

    #[test]
    fn sharded_bit_identical_with_timed_fail_and_repair() {
        // Timed Fail/Repair exercises drops, cross-shard retransmission
        // timers and the fault-shrunk lookahead. The repair lands late
        // enough that this spec's traffic has already run into the dead
        // link and retried across the outage.
        let spec = spec();
        let wl = wl(2e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let dead = node0_injection_channel(&built);
        let mut base = cfg(43);
        base.faults.events = vec![
            crate::config::FaultEvent {
                time: 0.0,
                link: dead,
                action: FaultAction::Fail,
            },
            crate::config::FaultEvent {
                time: 100_000.0,
                link: dead,
                action: crate::config::FaultAction::Repair,
            },
        ];
        base.faults.max_attempts = 64;
        base.faults.retry_timeout = 100.0;
        base.faults.max_timeout = 800.0;
        for scheduler in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let base = SimConfig {
                scheduler,
                ..base.clone()
            };
            let serial = run_simulation_built(&built, &wl, Pattern::Uniform, &base);
            assert!(serial.completed && serial.retransmits > 0);
            for shards in [ShardMode::N(2), ShardMode::Auto] {
                let sharded = run_simulation_built(
                    &built,
                    &wl,
                    Pattern::Uniform,
                    &SimConfig {
                        shards,
                        ..base.clone()
                    },
                );
                assert_bit_identical(
                    &serial,
                    &sharded,
                    &format!("fail-repair/{scheduler:?}/{shards:?}"),
                );
            }
        }
    }

    #[test]
    fn sharded_bit_identical_on_drained_stop() {
        // A permanent unrepaired fault drains the run: retry budgets
        // exhaust and the queues run dry with write-offs.
        let spec = spec();
        let wl = wl(2e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let dead = node0_injection_channel(&built);
        let mut base = cfg(47);
        base.faults.events = vec![crate::config::FaultEvent {
            time: 0.0,
            link: dead,
            action: FaultAction::Fail,
        }];
        base.faults.max_attempts = 3;
        base.faults.retry_timeout = 50.0;
        base.faults.max_timeout = 200.0;
        let serial = run_simulation_built(&built, &wl, Pattern::Uniform, &base);
        assert_eq!(serial.stop, StopReason::Drained);
        assert!(serial.unreachable > 0);
        let sharded = run_simulation_built(
            &built,
            &wl,
            Pattern::Uniform,
            &SimConfig {
                shards: ShardMode::Auto,
                ..base.clone()
            },
        );
        assert_bit_identical(&serial, &sharded, "drained");
    }

    #[test]
    fn sharded_bit_identical_on_event_cap_stop() {
        // The cap-breaching pop is counted but never executed; the
        // sharded engine must reconstruct that exact cut.
        let spec = spec();
        let wl = wl(8e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        for max_events in [5_000u64, 5_001, 20_000] {
            let base = SimConfig {
                max_events,
                ..cfg(53)
            };
            let serial = run_simulation_built(&built, &wl, Pattern::Uniform, &base);
            assert_eq!(serial.stop, StopReason::EventCap, "cap {max_events}");
            let sharded = run_simulation_built(
                &built,
                &wl,
                Pattern::Uniform,
                &SimConfig {
                    shards: ShardMode::Auto,
                    ..base
                },
            );
            assert_bit_identical(&serial, &sharded, &format!("cap/{max_events}"));
        }
    }

    #[test]
    fn threaded_workers_match_inline_protocol() {
        // Forcing two worker threads on any machine exercises the mpsc
        // window protocol; results must not depend on the worker count.
        let spec = spec();
        let wl = wl(5e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let base = SimConfig {
            shards: ShardMode::Auto,
            ..cfg(59)
        };
        let arrival = ArrivalSpec::Poisson { rate: wl.lambda_g };
        let inline = run_sharded_workers(&built, &wl, Pattern::Uniform, &base, &arrival, 1);
        for workers in [2, 3, 5] {
            let threaded =
                run_sharded_workers(&built, &wl, Pattern::Uniform, &base, &arrival, workers);
            assert_bit_identical(&inline, &threaded, &format!("workers={workers}"));
            assert_eq!(
                inline.peak_live_msgs, threaded.peak_live_msgs,
                "slab peaks are worker-independent"
            );
        }
    }

    #[test]
    fn sharded_peak_live_is_max_of_shards_and_bounded_by_serial() {
        let spec = spec();
        let wl = wl(5e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let serial = run_simulation_built(&built, &wl, Pattern::Uniform, &cfg(61));
        let sharded = run_simulation_built(
            &built,
            &wl,
            Pattern::Uniform,
            &SimConfig {
                shards: ShardMode::Auto,
                ..cfg(61)
            },
        );
        assert!(sharded.peak_live_msgs >= 1);
        // Each shard sees a subset of the in-flight population, so the
        // max-of-shards peak never exceeds the serial slab (transit
        // messages can be double-materialised across a boundary, hence
        // a small slack).
        assert!(
            sharded.peak_live_msgs <= 2 * serial.peak_live_msgs,
            "sharded peak {} vs serial {}",
            sharded.peak_live_msgs,
            serial.peak_live_msgs
        );
    }

    #[test]
    fn cluster_local_pattern_bit_identical() {
        let spec = spec();
        let wl = wl(4e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let base = cfg(67);
        let serial =
            run_simulation_built(&built, &wl, Pattern::ClusterLocal { locality: 0.9 }, &base);
        let sharded = run_simulation_built(
            &built,
            &wl,
            Pattern::ClusterLocal { locality: 0.9 },
            &SimConfig {
                shards: ShardMode::Auto,
                ..base
            },
        );
        assert_bit_identical(&serial, &sharded, "cluster-local");
    }

    #[test]
    fn ineligible_configs_fall_back_to_serial() {
        let spec = spec();
        let wl = wl(3e-4);
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        // Tracing is global state the shards cannot reproduce.
        let traced = SimConfig {
            shards: ShardMode::Auto,
            trace_messages: 3,
            ..cfg(71)
        };
        assert!(!sharding_eligible(&built, &traced));
        let r = run_simulation_built(&built, &wl, Pattern::Uniform, &traced);
        assert_eq!(r.traces.len(), 3);
        // Adaptive + timed faults re-draws RNG mid-run.
        let mut ada = cfg(71);
        ada.shards = ShardMode::Auto;
        ada.adaptive_routing = true;
        ada.faults.events = vec![crate::config::FaultEvent {
            time: 0.0,
            link: 0,
            action: FaultAction::Fail,
        }];
        assert!(!sharding_eligible(&built, &ada));
        // Off is off.
        assert!(!sharding_eligible(&built, &cfg(71)));
    }
}
