//! Simulation run configuration.

use serde::{Deserialize, Serialize};

/// How the concentrator/dispatcher buffers couple adjacent networks on an
/// inter-cluster path.
///
/// The paper's model is subtly split on this: Eq. (20) merges the three
/// networks into one wormhole pipeline, while Eqs. (36)–(37) give the
/// concentrator a full-message service time `M·t_cs^{ICN2}` — a buffer that
/// decouples the drain rates of adjacent networks. Rate decoupling is what
/// makes every stage's service in Eqs. (29)–(30) use the *local* network's
/// flit time, so the default mode preserves it; the alternatives trade it
/// against serialization delay and are kept as ablations (see the
/// `coupling_modes` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Coupling {
    /// Virtual cut-through with rate conversion (default): the buffer
    /// forwards the header at the *latest* start time that keeps the output
    /// link streaming without flit starvation. Downstream channels are held
    /// only for their own network's full-message time (matching the model's
    /// per-network stage services and the concentrator's `M·t_cs^{ICN2}`
    /// M/G/1 service), while the serialization penalty of full buffering is
    /// mostly avoided.
    #[default]
    VirtualCutThrough,
    /// The buffer receives the whole message, then retransmits: adjacent
    /// networks are fully rate-decoupled, at the cost of one full-message
    /// serialization per boundary.
    StoreAndForward,
    /// The header forwards immediately and flits follow as they arrive:
    /// lowest zero-load latency, but a slow upstream network extends
    /// downstream channel holding times, moving saturation earlier than the
    /// model predicts.
    CutThrough,
}

/// Which future-event-list backend the engines run on.
///
/// Both backends pop events in the identical `(time, seq)` earliest-first
/// order (see [`crate::events`]), so the choice never changes a seeded
/// run's results — only its wall-clock cost. Selectable per scenario
/// (`"sim": {"scheduler": "Calendar"}`) or from the CLI
/// (`cocnet run … --scheduler calendar`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Binary-heap future-event list: O(log n) push/pop (default, the
    /// historical backend).
    #[default]
    Heap,
    /// Self-resizing calendar queue: amortized O(1) push/pop on banded
    /// timestamp distributions.
    Calendar,
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "heap" => Ok(SchedulerKind::Heap),
            "calendar" => Ok(SchedulerKind::Calendar),
            other => Err(format!(
                "unknown scheduler {other:?} (use \"heap\" or \"calendar\")"
            )),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Calendar => "calendar",
        })
    }
}

/// Configuration of one simulation run.
///
/// The defaults reproduce the paper's methodology (§4): 10 000 warm-up
/// messages, 100 000 measured messages, 10 000 drain messages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default, deny_unknown_fields)]
pub struct SimConfig {
    /// Messages generated before statistics gathering starts.
    pub warmup: u64,
    /// Messages whose latency is recorded.
    pub measured: u64,
    /// Extra messages generated after the measured ones so that the tail of
    /// the measured population is not biased by an emptying network.
    pub drain: u64,
    /// RNG seed; identical seeds give bit-identical results.
    pub seed: u64,
    /// Safety valve: abort (with `completed = false`) after this many
    /// processed events. A saturated network never delivers its measured
    /// population, so an un-capped run would never terminate.
    pub max_events: u64,
    /// Optional latency histogram: `(upper_bound, bins)`.
    pub histogram: Option<(f64, usize)>,
    /// Network-boundary coupling mode (see [`Coupling`]).
    pub coupling: Coupling,
    /// Flit-buffer depth per channel, used by the flit-level engine.
    /// The paper's assumption 6 is depth 1; deeper buffers are an
    /// extension experiment (`buffer_depth` bin). The worm engine ignores
    /// this (its message-level treatment has no per-flit buffering).
    pub flit_buffer_depth: u32,
    /// Record a full event trace for the first `trace_messages` generated
    /// messages (worm engine only). `0` disables tracing.
    pub trace_messages: u64,
    /// Use oblivious-adaptive routing (random ascent digits per message)
    /// instead of the deterministic Up*/Down* scheme (worm engine only).
    pub adaptive_routing: bool,
    /// Retain raw latency samples and report exact p50/p95/p99 (both
    /// engines; costs one `f64` per measured message).
    pub collect_percentiles: bool,
    /// Record the delivery-ordered latency stream of the warm-up +
    /// measured populations and run an MSER-5 warm-up audit over it
    /// ([`crate::WarmupAudit`]): the run is flagged when the detected
    /// truncation point exceeds the configured `warmup`. Costs one `f64`
    /// per audited message; never perturbs the simulation itself.
    pub audit_warmup: bool,
    /// Future-event-list backend (see [`SchedulerKind`]). Never changes
    /// results — both backends pop in the identical order — only speed.
    pub scheduler: SchedulerKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            warmup: 10_000,
            measured: 100_000,
            drain: 10_000,
            seed: 0x5eed_c0c0,
            max_events: 500_000_000,
            histogram: None,
            coupling: Coupling::default(),
            flit_buffer_depth: 1,
            trace_messages: 0,
            adaptive_routing: false,
            collect_percentiles: false,
            audit_warmup: false,
            scheduler: SchedulerKind::default(),
        }
    }
}

impl SimConfig {
    /// A scaled-down configuration for unit tests and quick validation:
    /// 1 000 warm-up, 10 000 measured, 1 000 drain.
    pub fn quick(seed: u64) -> Self {
        Self {
            warmup: 1_000,
            measured: 10_000,
            drain: 1_000,
            seed,
            max_events: 100_000_000,
            histogram: None,
            coupling: Coupling::default(),
            flit_buffer_depth: 1,
            trace_messages: 0,
            adaptive_routing: false,
            collect_percentiles: false,
            audit_warmup: false,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Total messages generated over the run.
    pub fn total_messages(&self) -> u64 {
        self.warmup + self.measured + self.drain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_methodology() {
        let c = SimConfig::default();
        assert_eq!(c.warmup, 10_000);
        assert_eq!(c.measured, 100_000);
        assert_eq!(c.drain, 10_000);
        assert_eq!(c.total_messages(), 120_000);
    }

    #[test]
    fn scheduler_kind_parses_cli_names() {
        assert_eq!("heap".parse::<SchedulerKind>(), Ok(SchedulerKind::Heap));
        assert_eq!(
            "calendar".parse::<SchedulerKind>(),
            Ok(SchedulerKind::Calendar)
        );
        assert!("Heap".parse::<SchedulerKind>().is_err());
        assert!("ladder".parse::<SchedulerKind>().is_err());
        assert_eq!(SchedulerKind::Calendar.to_string(), "calendar");
        assert_eq!(SimConfig::default().scheduler, SchedulerKind::Heap);
    }

    #[test]
    fn quick_is_smaller() {
        let c = SimConfig::quick(1);
        assert!(c.total_messages() < SimConfig::default().total_messages());
        assert_eq!(c.seed, 1);
    }
}
