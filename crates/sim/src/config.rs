//! Simulation run configuration.

use serde::{Deserialize, Serialize};

/// How the concentrator/dispatcher buffers couple adjacent networks on an
/// inter-cluster path.
///
/// The paper's model is subtly split on this: Eq. (20) merges the three
/// networks into one wormhole pipeline, while Eqs. (36)–(37) give the
/// concentrator a full-message service time `M·t_cs^{ICN2}` — a buffer that
/// decouples the drain rates of adjacent networks. Rate decoupling is what
/// makes every stage's service in Eqs. (29)–(30) use the *local* network's
/// flit time, so the default mode preserves it; the alternatives trade it
/// against serialization delay and are kept as ablations (see the
/// `coupling_modes` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Coupling {
    /// Virtual cut-through with rate conversion (default): the buffer
    /// forwards the header at the *latest* start time that keeps the output
    /// link streaming without flit starvation. Downstream channels are held
    /// only for their own network's full-message time (matching the model's
    /// per-network stage services and the concentrator's `M·t_cs^{ICN2}`
    /// M/G/1 service), while the serialization penalty of full buffering is
    /// mostly avoided.
    #[default]
    VirtualCutThrough,
    /// The buffer receives the whole message, then retransmits: adjacent
    /// networks are fully rate-decoupled, at the cost of one full-message
    /// serialization per boundary.
    StoreAndForward,
    /// The header forwards immediately and flits follow as they arrive:
    /// lowest zero-load latency, but a slow upstream network extends
    /// downstream channel holding times, moving saturation earlier than the
    /// model predicts.
    CutThrough,
}

/// Which future-event-list backend the engines run on.
///
/// Both backends pop events in the identical `(time, seq)` earliest-first
/// order (see [`crate::events`]), so the choice never changes a seeded
/// run's results — only its wall-clock cost. Selectable per scenario
/// (`"sim": {"scheduler": "Calendar"}`) or from the CLI
/// (`cocnet run … --scheduler calendar`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Binary-heap future-event list: O(log n) push/pop (default, the
    /// historical backend).
    #[default]
    Heap,
    /// Self-resizing calendar queue: amortized O(1) push/pop on banded
    /// timestamp distributions.
    Calendar,
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "heap" => Ok(SchedulerKind::Heap),
            "calendar" => Ok(SchedulerKind::Calendar),
            other => Err(format!(
                "unknown scheduler {other:?} (use \"heap\" or \"calendar\")"
            )),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Calendar => "calendar",
        })
    }
}

/// Intra-run sharding of the worm engine's event loop.
///
/// `Off` (the default) runs the classic serial loop — the golden oracle.
/// `Auto` and `N(k)` partition the loop into per-cluster shards plus one
/// ICN2 hub shard, synchronized conservatively on the inter-cluster
/// channel crossing time (see the README's "Intra-run sharding" section).
/// Sharded runs are bit-identical to the serial engine; the mode only
/// changes wall-clock cost, like [`SchedulerKind`]. Scenario files select
/// it with `"sim": {"shards": "Auto"}` or `{"shards": {"N": 4}}`; the CLI
/// with `--shards off|auto|<k>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShardMode {
    /// Serial event loop (default; the reference engine).
    #[default]
    Off,
    /// One shard per cluster. Machine-independent: the partition (and
    /// therefore the result bits) never depends on the core count; only
    /// the worker-thread pool running the shards does.
    Auto,
    /// Exactly this many cluster shards (clamped to the cluster count;
    /// the ICN2 hub shard is always added on top).
    N(u32),
}

impl std::str::FromStr for ShardMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(ShardMode::Off),
            "auto" => Ok(ShardMode::Auto),
            other => match other.parse::<u32>() {
                Ok(n) if n >= 1 => Ok(ShardMode::N(n)),
                _ => Err(format!(
                    "unknown shard mode {other:?} (use \"off\", \"auto\", or a count >= 1)"
                )),
            },
        }
    }
}

impl std::fmt::Display for ShardMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardMode::Off => f.write_str("off"),
            ShardMode::Auto => f.write_str("auto"),
            ShardMode::N(n) => write!(f, "{n}"),
        }
    }
}

/// How `BuiltSystem` interns deterministic routes into its `RouteTable`.
///
/// `Classed` (the default) interns one route *tail* per equivalence class —
/// `(src leaf switch, dst)` intra-cluster, `(src, dst)` across clusters —
/// and materializes each class lazily on first touch; the injection channel
/// (the only per-pair datum) is recovered arithmetically. Build cost and
/// resident bytes scale with the classes actually touched instead of all
/// `N²` pairs, which is what lifts the eager builder's 65 535-node cap and
/// makes 10⁶-endpoint orgs buildable. `Eager` keeps the historical
/// all-pairs CSR table as a golden oracle; both modes produce bit-identical
/// simulation results (pinned by the `intern_equivalence` property suite
/// and the golden regressions). Scenario files select it with
/// `"sim": {"interning": "Eager"}`; the CLI with `--interning eager`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InternMode {
    /// Lazy class-keyed interning (default): O(touched classes) space.
    #[default]
    Classed,
    /// Eager all-pairs CSR interning (the golden oracle; ≤ 65 535 nodes).
    Eager,
}

impl std::str::FromStr for InternMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "classed" => Ok(InternMode::Classed),
            "eager" => Ok(InternMode::Eager),
            other => Err(format!(
                "unknown intern mode {other:?} (use \"classed\" or \"eager\")"
            )),
        }
    }
}

impl std::fmt::Display for InternMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InternMode::Classed => "classed",
            InternMode::Eager => "eager",
        })
    }
}

/// What a timed fault event does to its link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// The link goes down: both directions refuse new acquisitions.
    Fail,
    /// The link comes back up.
    Repair,
}

/// One deterministic timed fault: at simulation time `time`, the physical
/// link carrying global channel `link` fails or repairs (both directions
/// in tandem). Scheduled through the engine's future-event list, so the
/// ordering relative to message events is exact and deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FaultEvent {
    /// Simulation time at which the event fires.
    pub time: f64,
    /// Global channel id of the affected link (either direction selects
    /// the physical link; see [`crate::BuiltSystem`]'s channel table).
    pub link: u32,
    /// Fail or repair.
    pub action: FaultAction,
}

/// Deterministic fault injection for one simulation run.
///
/// Static faults (`links`, `link_fraction`) are applied at build time and
/// also rewire the route tables (fault-aware Up*/Down* reroute); timed
/// `events` flip links mid-run through the event list without rerouting —
/// messages that hit a downed link are dropped and retransmitted from
/// their source after a timeout with capped exponential backoff
/// (`retry_timeout`, `backoff`, `max_timeout`) and a bounded attempt
/// budget (`max_attempts`). The default schedule is inert: no faults, and
/// zero-fault runs are bit-identical to a build without this subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default, deny_unknown_fields)]
pub struct FaultSchedule {
    /// Global channel ids failed from time 0. Either direction of a link
    /// selects the whole physical link: the reverse channel fails in
    /// tandem.
    pub links: Vec<u32>,
    /// Fraction of all physical links failed from time 0, in `[0, 1]`.
    /// The failed set is the first `⌊fraction · L⌋` links of one fixed
    /// pseudorandom permutation of all `L` links drawn from `fault_seed`,
    /// so sweeping the fraction produces *nested* fault sets — delivered
    /// throughput declines monotonically along the sweep.
    pub link_fraction: f64,
    /// Seed of the `link_fraction` permutation (independent of the
    /// traffic seed so fault placement is stable across replications).
    pub fault_seed: u64,
    /// Deterministic timed fail/repair events.
    pub events: Vec<FaultEvent>,
    /// Total transmission attempts per message (first try included);
    /// a message dropped on its last attempt counts as unreachable.
    pub max_attempts: u32,
    /// Timeout before the first retransmission, in simulation time units.
    pub retry_timeout: f64,
    /// Multiplier applied to the timeout after every failed attempt
    /// (capped exponential backoff); must be ≥ 1.
    pub backoff: f64,
    /// Upper bound on the per-attempt timeout.
    pub max_timeout: f64,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        Self {
            links: Vec::new(),
            link_fraction: 0.0,
            fault_seed: 0xfa_17,
            events: Vec::new(),
            max_attempts: 8,
            retry_timeout: 1_000.0,
            backoff: 2.0,
            max_timeout: 16_000.0,
        }
    }
}

impl FaultSchedule {
    /// Whether the schedule injects no faults at all — the zero-overhead
    /// fast path where runs stay bit-identical to a fault-free build.
    pub fn is_inert(&self) -> bool {
        self.links.is_empty() && self.link_fraction == 0.0 && self.events.is_empty()
    }

    /// The retransmission delay after `attempt` failed attempts
    /// (0-based): `retry_timeout · backoff^attempt`, capped at
    /// `max_timeout`.
    pub fn retry_delay(&self, attempt: u32) -> f64 {
        (self.retry_timeout * self.backoff.powi(attempt.min(64) as i32)).min(self.max_timeout)
    }

    /// Field-level validation (ranges and finiteness). Link-id range
    /// checks against a concrete system live in
    /// [`crate::validate_faults`], which knows the channel count.
    pub fn validate(&self) -> Result<(), String> {
        if !self.link_fraction.is_finite() || !(0.0..=1.0).contains(&self.link_fraction) {
            return Err(format!(
                "faults.link_fraction must be in [0, 1], got {}",
                self.link_fraction
            ));
        }
        if self.max_attempts == 0 {
            return Err("faults.max_attempts must be >= 1 (the first try counts)".into());
        }
        if !(self.retry_timeout.is_finite() && self.retry_timeout > 0.0) {
            return Err(format!(
                "faults.retry_timeout must be finite and > 0, got {}",
                self.retry_timeout
            ));
        }
        if !(self.backoff.is_finite() && self.backoff >= 1.0) {
            return Err(format!(
                "faults.backoff must be finite and >= 1, got {}",
                self.backoff
            ));
        }
        if !(self.max_timeout.is_finite() && self.max_timeout >= self.retry_timeout) {
            return Err(format!(
                "faults.max_timeout must be finite and >= retry_timeout, got {}",
                self.max_timeout
            ));
        }
        for (i, e) in self.events.iter().enumerate() {
            if !(e.time.is_finite() && e.time >= 0.0) {
                return Err(format!(
                    "faults.events[{i}].time must be finite and >= 0, got {}",
                    e.time
                ));
            }
        }
        Ok(())
    }
}

/// Configuration of one simulation run.
///
/// The defaults reproduce the paper's methodology (§4): 10 000 warm-up
/// messages, 100 000 measured messages, 10 000 drain messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default, deny_unknown_fields)]
pub struct SimConfig {
    /// Messages generated before statistics gathering starts.
    pub warmup: u64,
    /// Messages whose latency is recorded.
    pub measured: u64,
    /// Extra messages generated after the measured ones so that the tail of
    /// the measured population is not biased by an emptying network.
    pub drain: u64,
    /// RNG seed; identical seeds give bit-identical results.
    pub seed: u64,
    /// Safety valve: abort (with `completed = false`) after this many
    /// processed events. A saturated network never delivers its measured
    /// population, so an un-capped run would never terminate.
    pub max_events: u64,
    /// Optional latency histogram: `(upper_bound, bins)`.
    pub histogram: Option<(f64, usize)>,
    /// Network-boundary coupling mode (see [`Coupling`]).
    pub coupling: Coupling,
    /// Flit-buffer depth per channel, used by the flit-level engine.
    /// The paper's assumption 6 is depth 1; deeper buffers are an
    /// extension experiment (`buffer_depth` bin). The worm engine ignores
    /// this (its message-level treatment has no per-flit buffering).
    pub flit_buffer_depth: u32,
    /// Record a full event trace for the first `trace_messages` generated
    /// messages (worm engine only). `0` disables tracing.
    pub trace_messages: u64,
    /// Use oblivious-adaptive routing (random ascent digits per message)
    /// instead of the deterministic Up*/Down* scheme (worm engine only).
    pub adaptive_routing: bool,
    /// Retain raw latency samples and report exact p50/p95/p99 (both
    /// engines; costs one `f64` per measured message).
    pub collect_percentiles: bool,
    /// Record the delivery-ordered latency stream of the warm-up +
    /// measured populations and run an MSER-5 warm-up audit over it
    /// ([`crate::WarmupAudit`]): the run is flagged when the detected
    /// truncation point exceeds the configured `warmup`. Costs one `f64`
    /// per audited message; never perturbs the simulation itself.
    pub audit_warmup: bool,
    /// Future-event-list backend (see [`SchedulerKind`]). Never changes
    /// results — both backends pop in the identical order — only speed.
    pub scheduler: SchedulerKind,
    /// Fault injection (see [`FaultSchedule`]); inert by default.
    pub faults: FaultSchedule,
    /// Intra-run sharding of the worm engine (see [`ShardMode`]). Never
    /// changes results — sharded runs are bit-identical to serial — only
    /// wall-clock cost. Off by default; the flit engine ignores it.
    pub shards: ShardMode,
    /// Route-table interning strategy (see [`InternMode`]). Never changes
    /// results — class-keyed tables are bit-identical to the eager oracle —
    /// only build time and resident bytes. Classed by default.
    pub interning: InternMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            warmup: 10_000,
            measured: 100_000,
            drain: 10_000,
            seed: 0x5eed_c0c0,
            max_events: 500_000_000,
            histogram: None,
            coupling: Coupling::default(),
            flit_buffer_depth: 1,
            trace_messages: 0,
            adaptive_routing: false,
            collect_percentiles: false,
            audit_warmup: false,
            scheduler: SchedulerKind::default(),
            faults: FaultSchedule::default(),
            shards: ShardMode::default(),
            interning: InternMode::default(),
        }
    }
}

impl SimConfig {
    /// A scaled-down configuration for unit tests and quick validation:
    /// 1 000 warm-up, 10 000 measured, 1 000 drain.
    pub fn quick(seed: u64) -> Self {
        Self {
            warmup: 1_000,
            measured: 10_000,
            drain: 1_000,
            seed,
            max_events: 100_000_000,
            histogram: None,
            coupling: Coupling::default(),
            flit_buffer_depth: 1,
            trace_messages: 0,
            adaptive_routing: false,
            collect_percentiles: false,
            audit_warmup: false,
            scheduler: SchedulerKind::default(),
            faults: FaultSchedule::default(),
            shards: ShardMode::default(),
            interning: InternMode::default(),
        }
    }

    /// Total messages generated over the run.
    pub fn total_messages(&self) -> u64 {
        self.warmup + self.measured + self.drain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_methodology() {
        let c = SimConfig::default();
        assert_eq!(c.warmup, 10_000);
        assert_eq!(c.measured, 100_000);
        assert_eq!(c.drain, 10_000);
        assert_eq!(c.total_messages(), 120_000);
    }

    #[test]
    fn scheduler_kind_parses_cli_names() {
        assert_eq!("heap".parse::<SchedulerKind>(), Ok(SchedulerKind::Heap));
        assert_eq!(
            "calendar".parse::<SchedulerKind>(),
            Ok(SchedulerKind::Calendar)
        );
        assert!("Heap".parse::<SchedulerKind>().is_err());
        assert!("ladder".parse::<SchedulerKind>().is_err());
        assert_eq!(SchedulerKind::Calendar.to_string(), "calendar");
        assert_eq!(SimConfig::default().scheduler, SchedulerKind::Heap);
    }

    #[test]
    fn shard_mode_parses_cli_names() {
        assert_eq!("off".parse::<ShardMode>(), Ok(ShardMode::Off));
        assert_eq!("auto".parse::<ShardMode>(), Ok(ShardMode::Auto));
        assert_eq!("4".parse::<ShardMode>(), Ok(ShardMode::N(4)));
        assert!("0".parse::<ShardMode>().is_err());
        assert!("Auto".parse::<ShardMode>().is_err());
        assert_eq!(ShardMode::N(3).to_string(), "3");
        assert_eq!(ShardMode::Auto.to_string(), "auto");
        assert_eq!(SimConfig::default().shards, ShardMode::Off);
    }

    #[test]
    fn intern_mode_parses_cli_names() {
        assert_eq!("classed".parse::<InternMode>(), Ok(InternMode::Classed));
        assert_eq!("eager".parse::<InternMode>(), Ok(InternMode::Eager));
        assert!("Classed".parse::<InternMode>().is_err());
        assert!("lazy".parse::<InternMode>().is_err());
        assert_eq!(InternMode::Eager.to_string(), "eager");
        assert_eq!(SimConfig::default().interning, InternMode::Classed);
    }

    #[test]
    fn fault_schedule_default_is_inert() {
        let f = FaultSchedule::default();
        assert!(f.is_inert());
        assert!(SimConfig::default().faults.is_inert());
        let failed = FaultSchedule {
            link_fraction: 0.25,
            ..FaultSchedule::default()
        };
        assert!(!failed.is_inert());
    }

    #[test]
    fn retry_delay_backs_off_and_caps() {
        let f = FaultSchedule {
            retry_timeout: 100.0,
            backoff: 2.0,
            max_timeout: 350.0,
            ..FaultSchedule::default()
        };
        assert_eq!(f.retry_delay(0), 100.0);
        assert_eq!(f.retry_delay(1), 200.0);
        assert_eq!(f.retry_delay(2), 350.0, "capped");
        assert_eq!(f.retry_delay(200), 350.0, "huge attempt counts stay finite");
    }

    #[test]
    fn quick_is_smaller() {
        let c = SimConfig::quick(1);
        assert!(c.total_messages() < SimConfig::default().total_messages());
        assert_eq!(c.seed, 1);
    }
}
