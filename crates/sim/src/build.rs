//! Materialising a [`SystemSpec`] into simulator state: channel tables for
//! every network and path construction for intra- and inter-cluster
//! messages.
//!
//! Global channel numbering concatenates, in order: each cluster's ICN1,
//! each cluster's ECN1, then the ICN2 network. The ICN2 tree's "processing
//! nodes" are the `C` concentrator/dispatcher devices, one per cluster.

use cocnet_topology::{AscentPolicy, ChannelKind, Graph, MPortNTree, SystemSpec};
use rand::Rng;

/// One wormhole segment: a maximal run of channels between rate-decoupling
/// buffers (source, concentrator, dispatcher, sink).
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Global channel ids, in traversal order.
    pub chans: Vec<u32>,
}

/// A [`SystemSpec`] materialised for simulation.
#[derive(Debug)]
pub struct BuiltSystem {
    spec: SystemSpec,
    icn1: Vec<Graph>,
    ecn1: Vec<Graph>,
    icn2: Graph,
    icn1_off: Vec<u32>,
    ecn1_off: Vec<u32>,
    icn2_off: u32,
    /// Per-flit transfer time of every global channel.
    chan_time: Vec<f64>,
    /// Flat-node → (cluster, local) lookup.
    node_cluster: Vec<u32>,
    node_local: Vec<u32>,
    /// Up*/Down* ascent policy used for every route.
    policy: AscentPolicy,
}

impl BuiltSystem {
    /// Builds all network graphs and the global channel table for messages
    /// whose flits are `flit_bytes` long, using the default (balanced)
    /// ascent policy.
    pub fn build(spec: &SystemSpec, flit_bytes: f64) -> Self {
        Self::build_with_policy(spec, flit_bytes, AscentPolicy::default())
    }

    /// [`BuiltSystem::build`] with an explicit Up*/Down* ascent policy
    /// (see the `ablation_routing` experiment).
    pub fn build_with_policy(spec: &SystemSpec, flit_bytes: f64, policy: AscentPolicy) -> Self {
        let c = spec.num_clusters();
        let mut icn1 = Vec::with_capacity(c);
        let mut ecn1 = Vec::with_capacity(c);
        let mut icn1_off = Vec::with_capacity(c);
        let mut ecn1_off = Vec::with_capacity(c);
        let mut chan_time: Vec<f64> = Vec::new();

        let push_graph = |graph: &Graph, t_cn: f64, t_cs: f64, chan_time: &mut Vec<f64>| {
            let off = chan_time.len() as u32;
            for i in 0..graph.num_channels() {
                let kind = graph.channel(cocnet_topology::ChannelId(i as u32)).kind;
                chan_time.push(match kind {
                    ChannelKind::NodeToSwitch | ChannelKind::SwitchToNode => t_cn,
                    ChannelKind::SwitchToSwitch => t_cs,
                });
            }
            off
        };

        for i in 0..c {
            let tree = spec.cluster_tree(i);
            let g = Graph::build(tree);
            let net = &spec.clusters[i].icn1;
            icn1_off.push(push_graph(
                &g,
                net.t_cn(flit_bytes),
                net.t_cs(flit_bytes),
                &mut chan_time,
            ));
            icn1.push(g);
        }
        for i in 0..c {
            let tree = spec.cluster_tree(i);
            let g = Graph::build(tree);
            let net = &spec.clusters[i].ecn1;
            ecn1_off.push(push_graph(
                &g,
                net.t_cn(flit_bytes),
                net.t_cs(flit_bytes),
                &mut chan_time,
            ));
            ecn1.push(g);
        }
        let icn2_tree: MPortNTree = spec.icn2_tree();
        let icn2 = Graph::build(icn2_tree);
        let icn2_off = push_graph(
            &icn2,
            spec.icn2.t_cn(flit_bytes),
            spec.icn2.t_cs(flit_bytes),
            &mut chan_time,
        );

        let total = spec.total_nodes();
        let mut node_cluster = Vec::with_capacity(total);
        let mut node_local = Vec::with_capacity(total);
        for i in 0..c {
            for l in 0..spec.cluster_nodes(i) {
                node_cluster.push(i as u32);
                node_local.push(l as u32);
            }
        }

        Self {
            spec: spec.clone(),
            icn1,
            ecn1,
            icn2,
            icn1_off,
            ecn1_off,
            icn2_off,
            chan_time,
            node_cluster,
            node_local,
            policy,
        }
    }

    /// The underlying system specification.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Total number of global channels.
    pub fn num_channels(&self) -> usize {
        self.chan_time.len()
    }

    /// Per-flit transfer time of global channel `c`.
    pub fn chan_time(&self, c: u32) -> f64 {
        self.chan_time[c as usize]
    }

    /// Total number of processing nodes (flat indexing).
    pub fn total_nodes(&self) -> usize {
        self.node_cluster.len()
    }

    /// Cluster owning flat node `f`.
    pub fn cluster_of(&self, f: usize) -> usize {
        self.node_cluster[f] as usize
    }

    /// Which network a global channel belongs to, for diagnostics:
    /// `("ICN1", i)`, `("ECN1", i)` or `("ICN2", 0)`.
    pub fn network_of(&self, chan: u32) -> (&'static str, usize) {
        if chan >= self.icn2_off {
            return ("ICN2", 0);
        }
        for i in (0..self.ecn1_off.len()).rev() {
            if chan >= self.ecn1_off[i] {
                return ("ECN1", i);
            }
        }
        for i in (0..self.icn1_off.len()).rev() {
            if chan >= self.icn1_off[i] {
                return ("ICN1", i);
            }
        }
        unreachable!("channel id out of range")
    }

    /// Human-readable description of a global channel (network, endpoints).
    pub fn describe_channel(&self, chan: u32) -> String {
        let (net, i) = self.network_of(chan);
        let (graph, off) = match net {
            "ICN1" => (&self.icn1[i], self.icn1_off[i]),
            "ECN1" => (&self.ecn1[i], self.ecn1_off[i]),
            _ => (&self.icn2, self.icn2_off),
        };
        let desc = graph.channel(cocnet_topology::ChannelId(chan - off));
        match net {
            "ICN2" => format!("ICN2 {:?} -> {:?}", desc.from, desc.to),
            _ => format!("{net}({i}) {:?} -> {:?}", desc.from, desc.to),
        }
    }

    /// Builds the wormhole segments for a message from flat node `src` to
    /// flat node `dst`.
    ///
    /// * intra-cluster: one segment through ICN1(i);
    /// * inter-cluster: ECN1(i) ascent → ICN2 crossing → ECN1(j) descent,
    ///   three segments separated by the concentrator and dispatcher
    ///   buffers. The ICN2 segment's injection channel *is* the
    ///   concentrator queue; the ECN1(j) segment's first channel is the
    ///   dispatcher queue.
    ///
    /// # Panics
    /// Panics if `src == dst` (patterns never produce self-traffic).
    pub fn segments_for(&self, src: usize, dst: usize) -> Vec<Segment> {
        assert_ne!(src, dst, "self-traffic is excluded by assumption 2");
        let (ci, li) = (
            self.node_cluster[src] as usize,
            self.node_local[src] as usize,
        );
        let (cj, lj) = (
            self.node_cluster[dst] as usize,
            self.node_local[dst] as usize,
        );
        if ci == cj {
            let route = self.icn1[ci]
                .route_with_policy(li, lj, self.policy)
                .expect("valid local ids");
            let off = self.icn1_off[ci];
            return vec![Segment {
                chans: route.channels.iter().map(|c| off + c.0).collect(),
            }];
        }
        let up = self.ecn1[ci]
            .route_to_root_with_policy(li, self.policy)
            .expect("valid local id");
        let off_up = self.ecn1_off[ci];
        let cross = self
            .icn2
            .route_with_policy(ci, cj, self.policy)
            .expect("valid cluster ids");
        let down = self.ecn1[cj]
            .route_from_root_with_policy(lj, self.policy)
            .expect("valid local id");
        let off_down = self.ecn1_off[cj];
        vec![
            Segment {
                chans: up.channels.iter().map(|c| off_up + c.0).collect(),
            },
            Segment {
                chans: cross.channels.iter().map(|c| self.icn2_off + c.0).collect(),
            },
            Segment {
                chans: down.channels.iter().map(|c| off_down + c.0).collect(),
            },
        ]
    }
}

impl BuiltSystem {
    /// Like [`BuiltSystem::segments_for`], but with per-message random
    /// ascent digits — the oblivious-adaptive routing variant (paper ref
    /// \[7\] contrasts adaptive wormhole routing with the deterministic
    /// scheme the model assumes). Descent stays destination-determined.
    pub fn segments_for_adaptive<R: Rng + ?Sized>(
        &self,
        src: usize,
        dst: usize,
        rng: &mut R,
    ) -> Vec<Segment> {
        assert_ne!(src, dst, "self-traffic is excluded by assumption 2");
        let k = self.spec.m / 2;
        let mut digits =
            |len: u32| -> Vec<u32> { (0..len).map(|_| rng.random_range(0..k)).collect() };
        let (ci, li) = (
            self.node_cluster[src] as usize,
            self.node_local[src] as usize,
        );
        let (cj, lj) = (
            self.node_cluster[dst] as usize,
            self.node_local[dst] as usize,
        );
        if ci == cj {
            let n = self.spec.clusters[ci].n;
            let route = self.icn1[ci]
                .route_adaptive(li, lj, &digits(n.saturating_sub(1)))
                .expect("valid local ids");
            let off = self.icn1_off[ci];
            return vec![Segment {
                chans: route.channels.iter().map(|c| off + c.0).collect(),
            }];
        }
        let n_i = self.spec.clusters[ci].n;
        let n_c = self.spec.icn2_height().expect("validated");
        let up = self.ecn1[ci]
            .route_to_root_adaptive(li, &digits(n_i.saturating_sub(1)))
            .expect("valid local id");
        let off_up = self.ecn1_off[ci];
        let cross = self
            .icn2
            .route_adaptive(ci, cj, &digits(n_c.saturating_sub(1)))
            .expect("valid cluster ids");
        let down = self.ecn1[cj]
            .route_from_root_with_policy(lj, self.policy)
            .expect("valid local id");
        let off_down = self.ecn1_off[cj];
        vec![
            Segment {
                chans: up.channels.iter().map(|c| off_up + c.0).collect(),
            },
            Segment {
                chans: cross.channels.iter().map(|c| self.icn2_off + c.0).collect(),
            },
            Segment {
                chans: down.channels.iter().map(|c| off_down + c.0).collect(),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn spec() -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net1).unwrap()
    }

    #[test]
    fn channel_count_covers_all_networks() {
        let b = BuiltSystem::build(&spec(), 256.0);
        // ICN1 and ECN1 per cluster: 2·n·N directed channels each
        // (clusters: two with n=1,N=4 and two with n=2,N=8); ICN2: 2·n_c·C.
        let per_network: usize = 2 * (2 * 4) + 2 * (2 * 2 * 8);
        let expected = 2 * per_network + 2 * 4;
        assert_eq!(b.num_channels(), expected);
        assert_eq!(b.total_nodes(), 24);
    }

    #[test]
    fn intra_message_is_one_segment() {
        let b = BuiltSystem::build(&spec(), 256.0);
        let segs = b.segments_for(8, 9); // both in cluster 2
        assert_eq!(segs.len(), 1);
        assert!(!segs[0].chans.is_empty());
        assert_eq!(segs[0].chans.len() % 2, 0, "2h channels");
    }

    #[test]
    fn inter_message_is_three_segments() {
        let b = BuiltSystem::build(&spec(), 256.0);
        let segs = b.segments_for(0, 23); // cluster 0 -> cluster 3
        assert_eq!(segs.len(), 3);
        // ECN1(0) ascent: n_0 = 1 channel; ICN2: 2l; ECN1(3) descent: n_3 = 2.
        assert_eq!(segs[0].chans.len(), 1);
        assert_eq!(segs[1].chans.len() % 2, 0);
        assert_eq!(segs[2].chans.len(), 2);
    }

    #[test]
    fn segments_use_disjoint_channel_ranges() {
        let b = BuiltSystem::build(&spec(), 256.0);
        let segs = b.segments_for(0, 23);
        let all: Vec<u32> = segs.iter().flat_map(|s| s.chans.iter().copied()).collect();
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len(), "no channel repeats on a path");
        for &c in &all {
            assert!((c as usize) < b.num_channels());
        }
    }

    #[test]
    fn channel_times_match_network_characteristics() {
        let b = BuiltSystem::build(&spec(), 256.0);
        // Intra path channels use ICN1 times (net1).
        let segs = b.segments_for(8, 9);
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let first = segs[0].chans[0];
        assert!((b.chan_time(first) - net1.t_cn(256.0)).abs() < 1e-12);
        // Inter first segment uses ECN1 times (net2).
        let segs = b.segments_for(0, 23);
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        assert!((b.chan_time(segs[0].chans[0]) - net2.t_cn(256.0)).abs() < 1e-12);
    }

    #[test]
    fn adaptive_segments_share_shape_with_deterministic() {
        use rand::SeedableRng;
        let b = BuiltSystem::build(&spec(), 256.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for (src, dst) in [(0usize, 23usize), (8, 9), (4, 12)] {
            let det = b.segments_for(src, dst);
            let ada = b.segments_for_adaptive(src, dst, &mut rng);
            assert_eq!(det.len(), ada.len());
            for (d, a) in det.iter().zip(&ada) {
                assert_eq!(d.chans.len(), a.chans.len());
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn self_traffic_rejected() {
        let b = BuiltSystem::build(&spec(), 256.0);
        b.segments_for(3, 3);
    }

    #[test]
    fn cluster_of_matches_spec_layout() {
        let b = BuiltSystem::build(&spec(), 256.0);
        assert_eq!(b.cluster_of(0), 0);
        assert_eq!(b.cluster_of(7), 1);
        assert_eq!(b.cluster_of(8), 2);
        assert_eq!(b.cluster_of(23), 3);
    }
}
