//! Materialising a [`SystemSpec`] into simulator state: channel tables for
//! every network and path construction for intra- and inter-cluster
//! messages.
//!
//! Global channel numbering concatenates, in order: each cluster's ICN1,
//! each cluster's ECN1, then the ICN2 network. The ICN2 tree's "processing
//! nodes" are the `C` concentrator/dispatcher devices, one per cluster.

use crate::config::{FaultSchedule, InternMode};
use cocnet_topology::{
    AnyTopology, AscentPolicy, ChannelId, ChannelKind, FaultSet, SystemSpec, TopoSpec, Topology,
    TopologyError, TorusShape,
};
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Typed errors from materialising a [`SystemSpec`] into a [`BuiltSystem`]
/// (see [`BuiltSystem::try_build_with`]). A malformed spec or fault
/// schedule reaching the build now fails loudly with one of these instead
/// of aborting the process.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// Interning a route between spec-valid endpoints failed with a
    /// topology error other than fault disconnection — the spec and the
    /// built graphs disagree structurally.
    Route {
        /// Which route family was being interned.
        context: &'static str,
        /// The underlying topology error.
        err: TopologyError,
    },
    /// A fault schedule references a global channel id outside the system.
    FaultLinkOutOfRange {
        /// The offending channel id.
        link: u32,
        /// Number of global channels in the built system.
        num_channels: usize,
    },
    /// `link_fraction` is not a finite value in `[0, 1]`.
    BadFaultFraction {
        /// The offending fraction.
        fraction: f64,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Route { context, err } => {
                write!(f, "building {context} route failed: {err}")
            }
            Self::FaultLinkOutOfRange { link, num_channels } => write!(
                f,
                "fault link {link} out of range (system has {num_channels} channels)"
            ),
            Self::BadFaultFraction { fraction } => {
                write!(f, "fault link_fraction {fraction} must be in [0, 1]")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// SplitMix64 step — the deterministic generator behind the
/// `link_fraction` permutation (self-contained so fault placement never
/// depends on the traffic RNG).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Directed channels of one network, from shape arithmetic alone (no
/// graphs built): `2·n·N` for an m-port n-tree, `2·N·(1 + ndims)` for a
/// torus (one node link plus one plus-direction ring link per node per
/// dimension, each with its tandem reverse).
fn network_channels(topo: &TopoSpec, tree: impl FnOnce() -> cocnet_topology::MPortNTree) -> usize {
    match topo {
        TopoSpec::Tree => {
            let t = tree();
            2 * t.n() as usize * t.num_nodes()
        }
        TopoSpec::Torus(s) => 2 * s.num_nodes() * (1 + s.ndims()),
    }
}

/// Total global channels the built system of `spec` will have: each
/// cluster contributes an ICN1 and an ECN1 network, plus the global ICN2.
fn expected_channels(spec: &SystemSpec) -> usize {
    let mut total = 0usize;
    for i in 0..spec.num_clusters() {
        total += 2 * network_channels(&spec.clusters[i].topology, || spec.cluster_tree(i));
    }
    total + network_channels(&spec.topology, || spec.icn2_tree())
}

/// Spec-level validation of a fault schedule: field ranges
/// ([`FaultSchedule::validate`]) plus channel-id range checks against the
/// system `spec` describes — computed from tree arithmetic without
/// building any graphs, so `Scenario::validate()` can call it cheaply.
pub fn validate_faults(spec: &SystemSpec, faults: &FaultSchedule) -> Result<(), String> {
    faults.validate()?;
    let total = expected_channels(spec);
    for &l in &faults.links {
        if l as usize >= total {
            return Err(format!(
                "faults.links: channel id {l} out of range (system has {total} channels)"
            ));
        }
    }
    for (i, e) in faults.events.iter().enumerate() {
        if e.link as usize >= total {
            return Err(format!(
                "faults.events[{i}]: channel id {} out of range (system has {total} channels)",
                e.link
            ));
        }
    }
    Ok(())
}

/// Per-graph projection of the static global fault mask, consumed by the
/// fault-aware route interning.
#[derive(Debug, Clone)]
struct GraphFaults {
    icn1: Vec<FaultSet>,
    ecn1: Vec<FaultSet>,
    icn2: FaultSet,
}

impl GraphFaults {
    fn empty(c: usize) -> Self {
        Self {
            icn1: vec![FaultSet::new(); c],
            ecn1: vec![FaultSet::new(); c],
            icn2: FaultSet::new(),
        }
    }
}

/// One wormhole segment: a maximal run of channels between rate-decoupling
/// buffers (source, concentrator, dispatcher, sink).
///
/// This owned form is the *reference* representation, used by tests and
/// diagnostics; the engines run off the interned [`RouteTable`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Global channel ids, in traversal order.
    pub chans: Vec<u32>,
}

/// Index of one deterministic (src, dst) route in the [`RouteTable`].
///
/// A tagged 64-bit word; the top two bits select the representation:
///
/// * `00` — eager all-pairs reference: `src · N + dst` (the historical
///   encoding, which is what caps the eager table at 65 535 nodes);
/// * `01` — classed intra-cluster reference: class-record index, the
///   source's position under its leaf switch (the only per-pair datum),
///   and a per-pair dead flag for sources whose injection link a static
///   fault cut even though the shared class trunk survived;
/// * `10` — classed inter-cluster reference: the raw `(src, dst)` pair,
///   resolved through per-node ascent/descent and per-cluster-pair
///   crossing records at segment-lookup time;
/// * `11` — the [`RouteRef::DYNAMIC`] sentinel for per-message adaptive
///   routes, which live in the simulator's own arena instead of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteRef(u64);

const REF_TAG_SHIFT: u32 = 62;
const REF_TAG_EAGER: u64 = 0;
const REF_TAG_INTRA: u64 = 1;
const REF_TAG_INTER: u64 = 2;
/// Per-pair demotion flag of an intra reference (bit 61).
const REF_INTRA_DEAD: u64 = 1 << 61;

impl RouteRef {
    /// Sentinel for routes that are not interned (adaptive routing); the
    /// engine resolves these against its per-message route arena.
    pub const DYNAMIC: RouteRef = RouteRef(u64::MAX);

    /// Whether this reference points at a dynamic (non-interned) route.
    #[inline]
    pub fn is_dynamic(self) -> bool {
        self == Self::DYNAMIC
    }

    #[inline]
    fn tag(self) -> u64 {
        self.0 >> REF_TAG_SHIFT
    }

    #[inline]
    fn intra(cls: u32, j: u32, dead: bool) -> Self {
        debug_assert!(j < 1 << 20 && cls < 1 << 31);
        RouteRef(
            (REF_TAG_INTRA << REF_TAG_SHIFT)
                | if dead { REF_INTRA_DEAD } else { 0 }
                | ((j as u64) << 32)
                | cls as u64,
        )
    }

    /// `(class record, source position under leaf, injection dead)`.
    #[inline]
    fn intra_parts(self) -> (u32, u32, bool) {
        (
            self.0 as u32,
            (self.0 >> 32) as u32 & 0xf_ffff,
            self.0 & REF_INTRA_DEAD != 0,
        )
    }

    #[inline]
    fn inter(src: u64, dst: u64) -> Self {
        debug_assert!(src < 1 << 31 && dst < 1 << 31);
        RouteRef((REF_TAG_INTER << REF_TAG_SHIFT) | (src << 31) | dst)
    }

    #[inline]
    fn inter_parts(self) -> (usize, usize) {
        (
            ((self.0 >> 31) & 0x7fff_ffff) as usize,
            (self.0 & 0x7fff_ffff) as usize,
        )
    }
}

/// Precomputed view of one interned segment: where its channels live in
/// the route table's flat channel array, plus the two per-segment numbers
/// the wormhole drain model needs on every segment completion.
///
/// `sum_t` and `bottleneck_t` are accumulated in traversal order over the
/// exact same `f64` channel times the engine's channel table holds, so the
/// closed-form finish times computed from them are bit-identical to the
/// legacy per-event rescan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SegMeta {
    /// Where the segment's channels live, resolved by
    /// [`RouteTable::chan_at`]`(start + k)` for `k < len`: a plain index
    /// into the table's flat channel storage (or the owning dynamic-route
    /// arena), or — bit 63 set — a classed *virtual window* packing the
    /// class record, the source's position under its leaf switch and the
    /// channel position, so the per-pair injection channel is recovered
    /// arithmetically instead of being stored per pair.
    pub start: u64,
    /// Number of channels in the segment.
    pub len: u32,
    /// Σ of the per-flit channel times, in traversal order.
    pub sum_t: f64,
    /// Max of the per-flit channel times (the segment's drain bottleneck).
    pub bottleneck_t: f64,
}

/// The eager all-pairs route store: every deterministic (src, dst) route
/// interned once at build time into a flat CSR-style layout.
///
/// One segment per intra-cluster pair plus per-node ascent/descent and
/// per-cluster-pair crossing segments. Build cost and footprint are
/// quadratic in cluster size (the `N_i × N_i` intra blocks), which is why
/// this mode is capped at 65 535 nodes and kept as the golden oracle
/// behind [`InternMode::Eager`]; the default engine path runs off
/// [`ClassedTable`].
#[derive(Debug)]
pub struct EagerTable {
    /// Flat channel-id storage of every interned segment.
    chans: Vec<u32>,
    /// Segment `s` occupies `chans[seg_off[s]..seg_off[s + 1]]`.
    seg_off: Vec<u32>,
    /// Per-segment Σ of channel times (traversal order).
    seg_sum: Vec<f64>,
    /// Per-segment max channel time.
    seg_bot: Vec<f64>,
    /// Per flat node: ECN1 ascent segment (source → exit root).
    up_seg: Vec<u32>,
    /// Per flat node: ECN1 descent segment (entry root → destination).
    down_seg: Vec<u32>,
    /// Per (ci, cj) cluster pair, row-major: ICN2 crossing segment
    /// (`u32::MAX` on the unused diagonal).
    cross_seg: Vec<u32>,
    /// Per cluster: first segment id of its `N_i × N_i` intra block.
    intra_base: Vec<u32>,
    /// Per interned segment: whether static faults disconnected it (the
    /// fault-aware reroute found no path). Empty — the fast path — when
    /// every segment routed.
    dead_segs: Vec<bool>,
    /// Flat-node → cluster / local lookups (copies, so the table resolves
    /// routes without touching the rest of [`BuiltSystem`]).
    node_cluster: Vec<u32>,
    node_local: Vec<u32>,
    cluster_nodes: Vec<u32>,
    total_nodes: u32,
    num_clusters: u32,
}

/// Builder half of [`EagerTable`]: accumulates segments into the CSR arrays.
#[derive(Default)]
struct TableBuilder {
    chans: Vec<u32>,
    seg_off: Vec<u32>,
    seg_sum: Vec<f64>,
    seg_bot: Vec<f64>,
}

impl TableBuilder {
    fn new() -> Self {
        TableBuilder {
            seg_off: vec![0],
            ..Default::default()
        }
    }

    /// The id the next interned segment will get, guarding the u32 offset
    /// space: intra blocks are quadratic in cluster size, so a legal node
    /// count can still overflow the CSR offsets — fail loudly, never wrap.
    fn next_id(&self) -> u32 {
        let id = self.seg_off.len() - 1;
        assert!(
            id <= u32::MAX as usize && self.chans.len() <= u32::MAX as usize,
            "route table exceeds u32 offset space (clusters too large to intern)"
        );
        id as u32
    }

    /// Interns one segment: local channel ids shifted by the network's
    /// global offset, with `sum`/`bottleneck` accumulated in traversal
    /// order over the same values the engine's channel table will hold.
    fn push_seg(&mut self, route: &[ChannelId], off: u32, chan_time: &[f64]) -> u32 {
        let id = self.next_id();
        let mut sum = 0.0;
        let mut bot = 0.0f64;
        for c in route {
            let g = off + c.0;
            let t = chan_time[g as usize];
            sum += t;
            bot = bot.max(t);
            self.chans.push(g);
        }
        assert!(
            self.chans.len() <= u32::MAX as usize,
            "route table exceeds u32 offset space (clusters too large to intern)"
        );
        self.seg_off.push(self.chans.len() as u32);
        self.seg_sum.push(sum);
        self.seg_bot.push(bot);
        id
    }

    /// Interns an empty placeholder (the unreachable `li == lj` diagonal of
    /// an intra block, kept so block indexing stays a multiplication).
    fn push_empty(&mut self) -> u32 {
        let id = self.next_id();
        self.seg_off.push(self.chans.len() as u32);
        self.seg_sum.push(0.0);
        self.seg_bot.push(0.0);
        id
    }
}

impl EagerTable {
    #[allow(clippy::too_many_arguments)]
    fn build(
        icn1: &[Arc<AnyTopology>],
        ecn1: &[Arc<AnyTopology>],
        icn2: &AnyTopology,
        icn1_off: &[u32],
        ecn1_off: &[u32],
        icn2_off: u32,
        chan_time: &[f64],
        node_cluster: &[u32],
        node_local: &[u32],
        cluster_nodes: &[u32],
        policy: AscentPolicy,
        faults: &GraphFaults,
    ) -> Result<Self, BuildError> {
        let total_nodes = node_cluster.len();
        assert!(
            total_nodes <= u16::MAX as usize,
            "eager route interning is all-pairs and capped at 65535 nodes; \
             use classed interning (`\"interning\": \"Classed\"` / `--interning classed`, \
             the default) for larger systems"
        );
        let c = cluster_nodes.len();
        let mut b = TableBuilder::new();
        let mut scratch: Vec<ChannelId> = Vec::new();
        let mut dead_flags: Vec<bool> = Vec::new();

        // Disconnection under static faults is not a build error: the
        // segment is interned empty, marked dead, and the engines account
        // the affected messages as unreachable. Any other route failure is.
        fn routed(
            r: Result<u32, TopologyError>,
            context: &'static str,
        ) -> Result<bool, BuildError> {
            match r {
                Ok(_) => Ok(true),
                Err(TopologyError::Disconnected { .. }) => Ok(false),
                Err(err) => Err(BuildError::Route { context, err }),
            }
        }

        let mut up_seg = Vec::with_capacity(total_nodes);
        let mut down_seg = Vec::with_capacity(total_nodes);
        for f in 0..total_nodes {
            let ci = node_cluster[f] as usize;
            let li = node_local[f] as usize;
            let fs = &faults.ecn1[ci];
            let ok = routed(
                ecn1[ci].route_exit_into_avoiding(li, policy, fs, &mut scratch),
                "ECN1 ascent",
            )?;
            up_seg.push(if ok {
                b.push_seg(&scratch, ecn1_off[ci], chan_time)
            } else {
                b.push_empty()
            });
            dead_flags.push(!ok);
            let ok = routed(
                ecn1[ci].route_entry_into_avoiding(li, policy, fs, &mut scratch),
                "ECN1 descent",
            )?;
            down_seg.push(if ok {
                b.push_seg(&scratch, ecn1_off[ci], chan_time)
            } else {
                b.push_empty()
            });
            dead_flags.push(!ok);
        }

        let mut cross_seg = Vec::with_capacity(c * c);
        for ci in 0..c {
            for cj in 0..c {
                if ci == cj {
                    cross_seg.push(u32::MAX);
                    continue;
                }
                let ok = routed(
                    icn2.route_into_avoiding(ci, cj, policy, &faults.icn2, &mut scratch),
                    "ICN2 crossing",
                )?;
                cross_seg.push(if ok {
                    b.push_seg(&scratch, icn2_off, chan_time)
                } else {
                    b.push_empty()
                });
                dead_flags.push(!ok);
            }
        }

        let mut intra_base = Vec::with_capacity(c);
        for ci in 0..c {
            intra_base.push((b.seg_off.len() - 1) as u32);
            let ni = cluster_nodes[ci] as usize;
            for li in 0..ni {
                for lj in 0..ni {
                    if li == lj {
                        b.push_empty();
                        dead_flags.push(false);
                        continue;
                    }
                    let ok = routed(
                        icn1[ci].route_into_avoiding(
                            li,
                            lj,
                            policy,
                            &faults.icn1[ci],
                            &mut scratch,
                        ),
                        "ICN1 intra",
                    )?;
                    if ok {
                        b.push_seg(&scratch, icn1_off[ci], chan_time);
                    } else {
                        b.push_empty();
                    }
                    dead_flags.push(!ok);
                }
            }
        }

        // Keep the flags only when something actually died: the empty vec
        // is the zero-fault fast path of `is_unreachable`.
        let dead_segs = if dead_flags.contains(&true) {
            dead_flags
        } else {
            Vec::new()
        };

        Ok(EagerTable {
            chans: b.chans,
            seg_off: b.seg_off,
            seg_sum: b.seg_sum,
            seg_bot: b.seg_bot,
            up_seg,
            down_seg,
            cross_seg,
            intra_base,
            dead_segs,
            node_cluster: node_cluster.to_vec(),
            node_local: node_local.to_vec(),
            cluster_nodes: cluster_nodes.to_vec(),
            total_nodes: total_nodes as u32,
            num_clusters: c as u32,
        })
    }

    #[inline]
    fn decode(&self, r: RouteRef) -> (usize, usize) {
        debug_assert_eq!(r.tag(), REF_TAG_EAGER, "classed ref in an eager table");
        (
            (r.0 / self.total_nodes as u64) as usize,
            (r.0 % self.total_nodes as u64) as usize,
        )
    }

    #[inline]
    fn route_ref(&self, src: usize, dst: usize) -> RouteRef {
        debug_assert_ne!(src, dst, "self-traffic is excluded by assumption 2");
        debug_assert!(src < self.total_nodes as usize && dst < self.total_nodes as usize);
        RouteRef(src as u64 * self.total_nodes as u64 + dst as u64)
    }

    #[inline]
    fn num_segments(&self, r: RouteRef) -> u32 {
        let (src, dst) = self.decode(r);
        if self.node_cluster[src] == self.node_cluster[dst] {
            1
        } else {
            3
        }
    }

    #[inline]
    fn seg_id(&self, r: RouteRef, k: u32) -> u32 {
        let (src, dst) = self.decode(r);
        let ci = self.node_cluster[src] as usize;
        let cj = self.node_cluster[dst] as usize;
        if ci == cj {
            let ni = self.cluster_nodes[ci];
            self.intra_base[ci] + self.node_local[src] * ni + self.node_local[dst]
        } else {
            match k {
                0 => self.up_seg[src],
                1 => self.cross_seg[ci * self.num_clusters as usize + cj],
                _ => self.down_seg[dst],
            }
        }
    }

    #[inline]
    fn is_unreachable(&self, src: usize, dst: usize) -> bool {
        if self.dead_segs.is_empty() {
            return false;
        }
        let r = self.route_ref(src, dst);
        let n = self.num_segments(r);
        (0..n).any(|k| {
            let s = self.seg_id(r, k);
            self.dead_segs[s as usize]
        })
    }

    #[inline]
    fn seg_meta(&self, r: RouteRef, k: u32) -> SegMeta {
        let s = self.seg_id(r, k) as usize;
        let start = self.seg_off[s];
        SegMeta {
            start: start as u64,
            len: self.seg_off[s + 1] - start,
            sum_t: self.seg_sum[s],
            bottleneck_t: self.seg_bot[s],
        }
    }

    /// Number of interned segments (including empty diagonal placeholders).
    fn num_interned_segments(&self) -> usize {
        self.seg_sum.len()
    }

    /// Resident bytes of the interned arrays (capacity-based estimate).
    fn resident_bytes(&self) -> usize {
        self.chans.len() * 4
            + self.seg_off.len() * 4
            + (self.seg_sum.len() + self.seg_bot.len()) * 8
            + (self.up_seg.len() + self.down_seg.len() + self.cross_seg.len()) * 4
            + self.intra_base.len() * 4
            + self.dead_segs.len()
            + (self.node_cluster.len() + self.node_local.len() + self.cluster_nodes.len()) * 4
    }
}

/// Sentinel of the classed table's record-id arrays: not yet materialized.
const UNSET: u32 = u32::MAX;

/// Tag bit of a classed virtual [`SegMeta::start`] window.
const VSTART_TAG: u64 = 1 << 63;
/// Bits of the channel-position field of a virtual window (the low field,
/// so `start + k` walks the segment like a plain index).
const VSTART_POS_BITS: u32 = 12;

/// Packs a virtual channel window: `tag(1) | chans_off(31) | j(20) |
/// pos(12)`. `chans_off` points straight at the class's channel window
/// (head slot = the leaf's base injection channel, then the shared tail),
/// so the per-flit [`ClassedTable::chan_at`] decode costs a single arena
/// read — no record-table indirection on the hot path.
#[inline]
fn vstart(chans_off: u64, j: u32) -> u64 {
    VSTART_TAG | (chans_off << 32) | ((j as u64) << VSTART_POS_BITS)
}

/// Growable append-only storage readable without locks: a spine of
/// geometrically growing chunks (1024, 2048, 4096, …), each allocated at
/// most once. Already-written entries are never moved, so readers resolve
/// an index with pure arithmetic plus one atomic load while a writer
/// (serialized by the owning table's lock) appends to the tail. Entry `i`
/// lives in chunk `⌊log₂(i/1024 + 1)⌋`.
macro_rules! chunked_arena {
    ($name:ident, $atom:ty, $val:ty) => {
        #[derive(Debug)]
        struct $name {
            /// Writer-side chunk owner (append path, table lock held).
            chunks: Vec<OnceLock<Box<[$atom]>>>,
            /// Reader-side data pointers, one per chunk, published with
            /// `Release` when the chunk is first allocated. The hot `get`
            /// resolves an index with two dependent loads (pointer, then
            /// element) instead of walking Vec → OnceLock → Box — the
            /// difference is double-digit percent events/sec on the flit
            /// engine, whose per-flit loop ends in [`ClassedTable::chan_at`].
            ptrs: [AtomicPtr<$atom>; 33],
        }

        impl $name {
            const BASE: u64 = 1024;

            fn new() -> Self {
                Self {
                    chunks: (0..33).map(|_| OnceLock::new()).collect(),
                    ptrs: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
                }
            }

            #[inline]
            fn locate(i: u64) -> (usize, usize) {
                let t = i / Self::BASE + 1;
                let c = t.ilog2();
                (c as usize, (i - Self::BASE * ((1 << c) - 1)) as usize)
            }

            /// Reads entry `i`. The caller must have observed the
            /// publication of `i` (a `Release`-stored record id or a
            /// lock-guarded map entry), which makes the chunk pointer and
            /// the entry's value visible.
            #[inline]
            fn get(&self, i: u64) -> $val {
                let (c, o) = Self::locate(i);
                let ptr = self.ptrs[c].load(Ordering::Acquire);
                debug_assert!(!ptr.is_null(), "published entry");
                // SAFETY: a non-null pointer is published (`Release`)
                // exactly once per chunk, after the chunk's atomics are
                // fully initialized; the `OnceLock` keeps the chunk
                // allocation alive and unmoved for as long as `self`
                // exists; and `locate` maps any `i` to an offset within
                // its chunk's `BASE << c` capacity, so the access is in
                // bounds even for a not-yet-appended tail entry (which
                // the caller contract above rules out anyway).
                unsafe { (*ptr.add(o)).load(Ordering::Acquire) }
            }

            /// Writes entry `i`; only called with the owning table's write
            /// lock held, entries appended in order.
            fn set(&self, i: u64, v: $val) {
                let (c, o) = Self::locate(i);
                let chunk = self.chunks[c]
                    .get_or_init(|| (0..Self::BASE << c).map(|_| <$atom>::new(0)).collect());
                if self.ptrs[c].load(Ordering::Relaxed).is_null() {
                    // Writers are serialized by the table lock, so this
                    // check-then-store cannot race another writer.
                    self.ptrs[c].store(chunk.as_ptr() as *mut $atom, Ordering::Release);
                }
                chunk[o].store(v, Ordering::Release);
            }
        }
    };
}

chunked_arena!(ChunkedU32, AtomicU32, u32);
chunked_arena!(ChunkedU64, AtomicU64, u64);

/// Mutable half of [`ClassedTable`], guarded by one `RwLock`: the
/// class-lookup map, the arena tail positions, and the route scratch
/// buffer. Readers of already-published records never touch it — only
/// `route_ref` (class lookup) and first-touch materialization do.
#[derive(Debug, Default)]
struct LazyState {
    /// `(cluster, src route class, dst local id)` → class-record offset.
    intra: HashMap<(u32, u32, u32), u32>,
    /// Entries appended to the channel arena so far.
    chan_len: u64,
    /// Words appended to the record arena so far.
    rec_len: u64,
    /// Records materialized so far (intra classes + inter segments).
    segs: usize,
    scratch: Vec<ChannelId>,
}

/// The class-keyed lazy route store (see [`InternMode::Classed`]).
///
/// Nothing is interned at build time. On first touch of a (src, dst) pair
/// the table materializes — once per *equivalence class*, not per pair —
/// the route data every pair of the class shares:
///
/// * intra-cluster: one **class record** per `(cluster, src route class,
///   dst)` holding the route *tail* (everything after the injection
///   channel — identical for every source of the class, see
///   [`Topology::route_tail_into`]) plus the left-folded `sum_t` /
///   `bottleneck_t`, which are class-uniform because all injection
///   channels of one ICN1 share `t_cn`. The per-pair injection channel is
///   recovered arithmetically (`icn1_off + 2·local`) through the virtual
///   [`SegMeta::start`] window, so per-pair storage is zero.
/// * inter-cluster: one ascent record per source node, one descent record
///   per destination node, one crossing record per cluster pair — the
///   same sharing the eager table exploits, minus the quadratic intra
///   blocks and the all-pairs build sweep.
///
/// Static faults are applied per class on the shared trunk
/// ([`Topology::route_tail_into_avoiding`] reroutes or marks the class
/// dead);
/// an injection-link fault demotes only the affected pair via the dead
/// flag carried in its [`RouteRef`].
///
/// Reads after materialization are lock-free: record ids live in dense
/// atomic arrays (or travel inside `RouteRef`s), and record/channel words
/// live in append-only chunked arenas. First-touch materialization is
/// serialized by one write lock with a double-check, so engines sharing
/// the table across threads (the sharded engine, parallel replications)
/// materialize each class exactly once.
#[derive(Debug)]
pub struct ClassedTable {
    icn1: Vec<Arc<AnyTopology>>,
    ecn1: Vec<Arc<AnyTopology>>,
    icn2: Arc<AnyTopology>,
    icn1_off: Vec<u32>,
    ecn1_off: Vec<u32>,
    icn2_off: u32,
    chan_time: Arc<Vec<f64>>,
    /// Static global fault mask (empty for zero-fault builds).
    failed: Arc<Vec<bool>>,
    faults: GraphFaults,
    faulted: bool,
    policy: AscentPolicy,
    node_cluster: Arc<Vec<u32>>,
    node_local: Arc<Vec<u32>>,
    num_clusters: u32,
    total_nodes: u64,
    /// Per flat node: ECN1 ascent record offset, [`UNSET`] until touched.
    up_ids: Vec<AtomicU32>,
    /// Per flat node: ECN1 descent record offset.
    down_ids: Vec<AtomicU32>,
    /// Per (ci, cj) cluster pair, row-major: ICN2 crossing record offset.
    cross_ids: Vec<AtomicU32>,
    /// Flat channel-id storage of every materialized segment.
    chans: ChunkedU32,
    /// Record words: every record is 4 words `[chans_off, sum_t bits,
    /// bottleneck_t bits, len]`. `len` counts the whole segment
    /// (injection included for intra); `len == 0` marks a
    /// fault-disconnected record. An intra class's channel window starts
    /// with a head slot — the injection channel of the leaf's *first*
    /// member, from which member `j`'s is `head + 2·j` — followed by the
    /// shared route tail, so [`ClassedTable::chan_at`] resolves any
    /// position with one arena read.
    recs: ChunkedU64,
    lazy: RwLock<LazyState>,
}

impl ClassedTable {
    #[allow(clippy::too_many_arguments)]
    fn new(
        icn1: Vec<Arc<AnyTopology>>,
        ecn1: Vec<Arc<AnyTopology>>,
        icn2: Arc<AnyTopology>,
        icn1_off: Vec<u32>,
        ecn1_off: Vec<u32>,
        icn2_off: u32,
        chan_time: Arc<Vec<f64>>,
        failed: Arc<Vec<bool>>,
        faults: GraphFaults,
        policy: AscentPolicy,
        node_cluster: Arc<Vec<u32>>,
        node_local: Arc<Vec<u32>>,
    ) -> Self {
        let total = node_cluster.len();
        let c = icn1.len();
        assert!(
            total < 1 << 31,
            "classed route refs encode flat node ids in 31 bits"
        );
        for g in &icn1 {
            assert!(
                g.max_class_members() <= 1 << 20,
                "classed route refs encode the class position in 20 bits"
            );
        }
        let unset = |n: usize| (0..n).map(|_| AtomicU32::new(UNSET)).collect();
        let faulted = !failed.is_empty();
        Self {
            icn1,
            ecn1,
            icn2,
            icn1_off,
            ecn1_off,
            icn2_off,
            chan_time,
            failed,
            faults,
            faulted,
            policy,
            node_cluster,
            node_local,
            num_clusters: c as u32,
            total_nodes: total as u64,
            up_ids: unset(total),
            down_ids: unset(total),
            cross_ids: unset(c * c),
            chans: ChunkedU32::new(),
            recs: ChunkedU64::new(),
            lazy: RwLock::new(LazyState::default()),
        }
    }

    /// Maps a route result to "segment exists": fault disconnection is a
    /// dead (empty) record, any other error is a structural bug — the
    /// lazy analogue of the eager builder's [`BuildError::Route`], which
    /// a spec that passed validation can never hit.
    fn seg_ok(r: Result<u32, TopologyError>, context: &'static str) -> bool {
        match r {
            Ok(_) => true,
            Err(TopologyError::Disconnected { .. }) => false,
            Err(err) => panic!("building {context} route failed: {err}"),
        }
    }

    /// Appends one 4-word inter record (with its channels when `ok`),
    /// returning the record offset. Caller holds the write lock.
    fn push_inter_rec(&self, st: &mut LazyState, ok: bool, route: &[ChannelId], off: u32) -> u32 {
        let chans_off = st.chan_len;
        let mut sum = 0.0f64;
        let mut bot = 0.0f64;
        let mut len = 0u64;
        if ok {
            for c in route {
                let g = off + c.0;
                let t = self.chan_time[g as usize];
                sum += t;
                bot = bot.max(t);
                self.chans.set(st.chan_len, g);
                st.chan_len += 1;
                len += 1;
            }
        }
        let rec = st.rec_len;
        assert!(rec < 1 << 31, "route-record arena exceeds the id budget");
        for w in [chans_off, sum.to_bits(), bot.to_bits(), len] {
            self.recs.set(st.rec_len, w);
            st.rec_len += 1;
        }
        st.segs += 1;
        rec as u32
    }

    /// Record offset of `src`'s ECN1 ascent, materializing on first touch.
    fn up_rec(&self, src: usize) -> u32 {
        let id = self.up_ids[src].load(Ordering::Acquire);
        if id != UNSET {
            return id;
        }
        let mut st = self.lazy.write().expect("route table lock");
        let id = self.up_ids[src].load(Ordering::Acquire);
        if id != UNSET {
            return id;
        }
        let ci = self.node_cluster[src] as usize;
        let li = self.node_local[src] as usize;
        let mut scratch = std::mem::take(&mut st.scratch);
        let ok = Self::seg_ok(
            self.ecn1[ci].route_exit_into_avoiding(
                li,
                self.policy,
                &self.faults.ecn1[ci],
                &mut scratch,
            ),
            "ECN1 ascent",
        );
        let rec = self.push_inter_rec(&mut st, ok, &scratch, self.ecn1_off[ci]);
        st.scratch = scratch;
        self.up_ids[src].store(rec, Ordering::Release);
        rec
    }

    /// Record offset of `dst`'s ECN1 descent, materializing on first touch.
    fn down_rec(&self, dst: usize) -> u32 {
        let id = self.down_ids[dst].load(Ordering::Acquire);
        if id != UNSET {
            return id;
        }
        let mut st = self.lazy.write().expect("route table lock");
        let id = self.down_ids[dst].load(Ordering::Acquire);
        if id != UNSET {
            return id;
        }
        let cj = self.node_cluster[dst] as usize;
        let lj = self.node_local[dst] as usize;
        let mut scratch = std::mem::take(&mut st.scratch);
        let ok = Self::seg_ok(
            self.ecn1[cj].route_entry_into_avoiding(
                lj,
                self.policy,
                &self.faults.ecn1[cj],
                &mut scratch,
            ),
            "ECN1 descent",
        );
        let rec = self.push_inter_rec(&mut st, ok, &scratch, self.ecn1_off[cj]);
        st.scratch = scratch;
        self.down_ids[dst].store(rec, Ordering::Release);
        rec
    }

    /// Record offset of the `ci → cj` ICN2 crossing, materializing on
    /// first touch.
    fn cross_rec(&self, ci: usize, cj: usize) -> u32 {
        let idx = ci * self.num_clusters as usize + cj;
        let id = self.cross_ids[idx].load(Ordering::Acquire);
        if id != UNSET {
            return id;
        }
        let mut st = self.lazy.write().expect("route table lock");
        let id = self.cross_ids[idx].load(Ordering::Acquire);
        if id != UNSET {
            return id;
        }
        let mut scratch = std::mem::take(&mut st.scratch);
        let ok = Self::seg_ok(
            self.icn2
                .route_into_avoiding(ci, cj, self.policy, &self.faults.icn2, &mut scratch),
            "ICN2 crossing",
        );
        let rec = self.push_inter_rec(&mut st, ok, &scratch, self.icn2_off);
        st.scratch = scratch;
        self.cross_ids[idx].store(rec, Ordering::Release);
        rec
    }

    /// The global injection channel of local node `li` in cluster `ci`:
    /// node↔leaf links are the first channels of every graph, two per node
    /// in node order, so injection is `2·li` locally.
    #[inline]
    fn intra_inj(&self, ci: usize, li: usize) -> u32 {
        self.icn1_off[ci] + 2 * li as u32
    }

    /// Class record of the intra pair `(src, dst)`, materializing the
    /// class — keyed `(cluster, route_class(src), dst)` — on first touch
    /// by any member pair.
    fn intra_cls(&self, src: usize, dst: usize) -> u32 {
        let ci = self.node_cluster[src];
        let li = self.node_local[src] as usize;
        let lj = self.node_local[dst];
        let leaf = self.icn1[ci as usize]
            .route_class_of(li)
            .expect("valid local id") as u32;
        let key = (ci, leaf, lj);
        if let Some(&cls) = self.lazy.read().expect("route table lock").intra.get(&key) {
            return cls;
        }
        let mut st = self.lazy.write().expect("route table lock");
        if let Some(&cls) = st.intra.get(&key) {
            return cls;
        }
        let graph = &self.icn1[ci as usize];
        let mut scratch = std::mem::take(&mut st.scratch);
        let ok = Self::seg_ok(
            graph.route_tail_into_avoiding(
                li,
                lj as usize,
                self.policy,
                &self.faults.icn1[ci as usize],
                &mut scratch,
            ),
            "ICN1 intra",
        );
        let off = self.icn1_off[ci as usize];
        let chans_off = st.chan_len;
        let mut sum = 0.0f64;
        let mut bot = 0.0f64;
        let mut len = 0u64;
        if ok {
            assert!(
                chans_off < 1 << 31,
                "channel arena exceeds the virtual-window offset budget"
            );
            // Fold exactly as the eager builder does, injection first. The
            // materializing pair's injection time stands in for every
            // member's: all ICN1 injection channels share one t_cn, so the
            // folded sum/bottleneck are class-uniform bit for bit.
            let t = self.chan_time[self.intra_inj(ci as usize, li) as usize];
            sum += t;
            bot = bot.max(t);
            len = 1;
            // Head slot: the injection channel of the class's first member.
            // Member `j`'s is `head + 2·j` (class members are consecutive
            // node ids and node↔switch links come two per node in node
            // order), which is what lets `chan_at` resolve a pair's
            // injection with the same single arena read as a tail channel.
            let base = self.intra_inj(ci as usize, graph.class_first_node(leaf as usize));
            self.chans.set(st.chan_len, base);
            st.chan_len += 1;
            for c in &scratch {
                let g = off + c.0;
                let t = self.chan_time[g as usize];
                sum += t;
                bot = bot.max(t);
                self.chans.set(st.chan_len, g);
                st.chan_len += 1;
                len += 1;
            }
            assert!(
                len < 1 << VSTART_POS_BITS,
                "segment too long for the virtual channel window"
            );
        }
        let rec = st.rec_len;
        assert!(rec < 1 << 31, "route-record arena exceeds the id budget");
        for w in [chans_off, sum.to_bits(), bot.to_bits(), len] {
            self.recs.set(st.rec_len, w);
            st.rec_len += 1;
        }
        st.segs += 1;
        st.scratch = scratch;
        st.intra.insert(key, rec as u32);
        rec as u32
    }

    #[inline]
    fn route_ref(&self, src: usize, dst: usize) -> RouteRef {
        debug_assert_ne!(src, dst, "self-traffic is excluded by assumption 2");
        debug_assert!(src < self.total_nodes as usize && dst < self.total_nodes as usize);
        let ci = self.node_cluster[src];
        if ci == self.node_cluster[dst] {
            let cls = self.intra_cls(src, dst);
            let li = self.node_local[src] as usize;
            let j = self.icn1[ci as usize]
                .class_member_of(li)
                .expect("valid local id") as u32;
            let dead = self.faulted && self.failed[self.intra_inj(ci as usize, li) as usize];
            RouteRef::intra(cls, j, dead)
        } else {
            RouteRef::inter(src as u64, dst as u64)
        }
    }

    #[inline]
    fn num_segments(&self, r: RouteRef) -> u32 {
        if r.tag() == REF_TAG_INTRA {
            1
        } else {
            3
        }
    }

    #[inline]
    fn seg_meta(&self, r: RouteRef, k: u32) -> SegMeta {
        if r.tag() == REF_TAG_INTRA {
            let (cls, j, dead) = r.intra_parts();
            let len = self.recs.get(cls as u64 + 3) as u32;
            let start = vstart(self.recs.get(cls as u64), j);
            if dead || len == 0 {
                // Same shape the eager table's empty placeholder yields.
                // (`start` is never dereferenced at `len == 0`.)
                return SegMeta {
                    start,
                    len: 0,
                    sum_t: 0.0,
                    bottleneck_t: 0.0,
                };
            }
            SegMeta {
                start,
                len,
                sum_t: f64::from_bits(self.recs.get(cls as u64 + 1)),
                bottleneck_t: f64::from_bits(self.recs.get(cls as u64 + 2)),
            }
        } else {
            let (src, dst) = r.inter_parts();
            let rec = match k {
                0 => self.up_rec(src),
                1 => self.cross_rec(
                    self.node_cluster[src] as usize,
                    self.node_cluster[dst] as usize,
                ),
                _ => self.down_rec(dst),
            } as u64;
            SegMeta {
                start: self.recs.get(rec),
                len: self.recs.get(rec + 3) as u32,
                sum_t: f64::from_bits(self.recs.get(rec + 1)),
                bottleneck_t: f64::from_bits(self.recs.get(rec + 2)),
            }
        }
    }

    #[inline]
    fn chan_at(&self, idx: u64) -> u32 {
        if idx & VSTART_TAG == 0 {
            return self.chans.get(idx);
        }
        let pos = idx & ((1 << VSTART_POS_BITS) - 1);
        let off = (idx >> 32) & 0x7fff_ffff;
        if pos == 0 {
            let j = (idx >> VSTART_POS_BITS) as u32 & 0xf_ffff;
            self.chans.get(off) + 2 * j
        } else {
            self.chans.get(off + pos)
        }
    }

    #[inline]
    fn is_unreachable(&self, src: usize, dst: usize) -> bool {
        if !self.faulted {
            return false;
        }
        let ci = self.node_cluster[src] as usize;
        let cj = self.node_cluster[dst] as usize;
        if ci == cj {
            let cls = self.intra_cls(src, dst);
            if self.recs.get(cls as u64 + 3) as u32 == 0 {
                return true;
            }
            self.failed[self.intra_inj(ci, self.node_local[src] as usize) as usize]
        } else {
            let up = self.up_rec(src) as u64;
            let cross = self.cross_rec(ci, cj) as u64;
            let down = self.down_rec(dst) as u64;
            self.recs.get(up + 3) == 0
                || self.recs.get(cross + 3) == 0
                || self.recs.get(down + 3) == 0
        }
    }

    /// Records materialized so far (intra classes + inter segments).
    fn num_interned_segments(&self) -> usize {
        self.lazy.read().expect("route table lock").segs
    }

    /// Resident bytes: dense id arrays plus arena entries actually
    /// written plus the class map (entry estimate).
    fn resident_bytes(&self) -> usize {
        let st = self.lazy.read().expect("route table lock");
        (self.up_ids.len() + self.down_ids.len() + self.cross_ids.len()) * 4
            + st.chan_len as usize * 4
            + st.rec_len as usize * 8
            + st.intra.len() * (std::mem::size_of::<((u32, u32, u32), u32)>() + 16)
    }
}

/// All deterministic (src, dst) wormhole routes of a built system.
///
/// Routes share structure aggressively: an inter-cluster route is always
/// `up(src) → cross(cluster(src), cluster(dst)) → down(dst)` and
/// intra-cluster routes collapse into `(leaf(src), dst)` equivalence
/// classes. Resolving a [`RouteRef`] to its segments is pure arithmetic
/// plus a handful of array reads, and yields [`SegMeta`] entries whose
/// `sum_t`/`bottleneck_t` are precomputed, which is what keeps the
/// engines' event loops allocation- and rescan-free.
///
/// Two interchangeable representations exist (selected by
/// [`InternMode`]): the lazy class-keyed [`ClassedTable`] (default) and
/// the eager all-pairs [`EagerTable`] oracle. Both produce bit-identical
/// segment metadata for every pair; they differ only in build cost and
/// resident bytes.
// One `RouteTable` exists per built system, so the variant size gap
// (the classed table inlines two 33-pointer chunk spines precisely so
// the per-flit `chan_at` costs no extra indirection) buys hot-path
// speed for a few hundred one-off bytes; boxing would undo that.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum RouteTable {
    /// Eager all-pairs CSR table (the golden oracle; ≤ 65 535 nodes).
    Eager(EagerTable),
    /// Lazy class-keyed table (the default; O(touched classes) space).
    Classed(ClassedTable),
}

impl RouteTable {
    /// The interned route of a (src, dst) pair (flat node indexing).
    ///
    /// # Panics
    /// Debug-panics on `src == dst` (patterns never produce self-traffic).
    #[inline]
    pub fn route_ref(&self, src: usize, dst: usize) -> RouteRef {
        match self {
            RouteTable::Eager(t) => t.route_ref(src, dst),
            RouteTable::Classed(t) => t.route_ref(src, dst),
        }
    }

    /// How many wormhole segments the route crosses (1 intra, 3 inter).
    #[inline]
    pub fn num_segments(&self, r: RouteRef) -> u32 {
        match self {
            RouteTable::Eager(t) => t.num_segments(r),
            RouteTable::Classed(t) => t.num_segments(r),
        }
    }

    /// Whether static faults disconnected the (src, dst) pair: some
    /// segment of its deterministic route has no fault-free Up*/Down*
    /// path. `false` for every pair of a zero-fault build (one branch).
    /// The answer also covers adaptive routing — adaptive ascents explore
    /// a subset of the same path space the fault-aware search exhausts.
    #[inline]
    pub fn is_unreachable(&self, src: usize, dst: usize) -> bool {
        match self {
            RouteTable::Eager(t) => t.is_unreachable(src, dst),
            RouteTable::Classed(t) => t.is_unreachable(src, dst),
        }
    }

    /// Metadata of segment `k` (0-based) of route `r`.
    #[inline]
    pub fn seg_meta(&self, r: RouteRef, k: u32) -> SegMeta {
        match self {
            RouteTable::Eager(t) => t.seg_meta(r, k),
            RouteTable::Classed(t) => t.seg_meta(r, k),
        }
    }

    /// The global channel id at position `start + k` of an interned
    /// segment (`k < len`): the engines' per-hop channel lookup. Resolves
    /// plain indices against the flat channel storage and classed virtual
    /// windows arithmetically.
    #[inline]
    pub fn chan_at(&self, idx: u64) -> u32 {
        match self {
            RouteTable::Eager(t) => t.chans[idx as usize],
            RouteTable::Classed(t) => t.chan_at(idx),
        }
    }

    /// The channels of one interned segment, in traversal order.
    pub fn segment_channels(&self, m: SegMeta) -> Vec<u32> {
        (0..m.len as u64)
            .map(|k| self.chan_at(m.start + k))
            .collect()
    }

    /// Number of interned segments: all of them (including empty diagonal
    /// placeholders) for the eager table, the materialized-so-far count
    /// for the classed table.
    pub fn num_interned_segments(&self) -> usize {
        match self {
            RouteTable::Eager(t) => t.num_interned_segments(),
            RouteTable::Classed(t) => t.num_interned_segments(),
        }
    }

    /// Estimated resident bytes of the table's storage — the scale metric
    /// `org_scale` and `bench_snapshot` report.
    pub fn resident_bytes(&self) -> usize {
        match self {
            RouteTable::Eager(t) => t.resident_bytes(),
            RouteTable::Classed(t) => t.resident_bytes(),
        }
    }

    /// Which interning mode built this table.
    pub fn mode(&self) -> InternMode {
        match self {
            RouteTable::Eager(_) => InternMode::Eager,
            RouteTable::Classed(_) => InternMode::Classed,
        }
    }
}

/// Reusable buffers for building one message's adaptive route without
/// allocating: the worm engine owns one per simulator and the capacity is
/// retained across messages.
#[derive(Debug, Default)]
pub struct AdaptiveScratch {
    digits: Vec<u32>,
    route: Vec<ChannelId>,
}

/// A [`SystemSpec`] materialised for simulation.
///
/// Graphs and lookup tables live behind `Arc`s: clusters with the same
/// `(m, n)` share one graph (a million-endpoint org has thousands of
/// identical clusters but only a handful of distinct trees), and the
/// [`ClassedTable`] holds the same `Arc`s instead of copies.
#[derive(Debug)]
pub struct BuiltSystem {
    spec: SystemSpec,
    icn1: Vec<Arc<AnyTopology>>,
    ecn1: Vec<Arc<AnyTopology>>,
    icn2: Arc<AnyTopology>,
    icn1_off: Vec<u32>,
    ecn1_off: Vec<u32>,
    icn2_off: u32,
    /// Per-flit transfer time of every global channel.
    chan_time: Arc<Vec<f64>>,
    /// Flat-node → (cluster, local) lookup.
    node_cluster: Arc<Vec<u32>>,
    node_local: Arc<Vec<u32>>,
    /// Up*/Down* ascent policy used for every route.
    policy: AscentPolicy,
    /// Every deterministic route, interned per class or per pair (see
    /// [`RouteTable`]).
    routes: RouteTable,
    /// Static (build-time) fault mask: one bool per global channel, both
    /// directions of a failed link set. Empty for zero-fault builds.
    failed: Arc<Vec<bool>>,
}

impl BuiltSystem {
    /// Builds all network graphs and the global channel table for messages
    /// whose flits are `flit_bytes` long, using the default (balanced)
    /// ascent policy.
    pub fn build(spec: &SystemSpec, flit_bytes: f64) -> Self {
        Self::build_with_policy(spec, flit_bytes, AscentPolicy::default())
    }

    /// [`BuiltSystem::build`] with an explicit Up*/Down* ascent policy
    /// (see the `ablation_routing` experiment).
    ///
    /// # Panics
    /// A zero-fault build of a spec that passed [`SystemSpec`] validation
    /// cannot fail; any residual error panics with its typed message.
    pub fn build_with_policy(spec: &SystemSpec, flit_bytes: f64, policy: AscentPolicy) -> Self {
        Self::try_build_with(spec, flit_bytes, policy, &FaultSchedule::default())
            .unwrap_or_else(|e| panic!("zero-fault build of a validated spec failed: {e}"))
    }

    /// Fallible form of [`BuiltSystem::build`] with the default policy and
    /// no faults.
    pub fn try_build(spec: &SystemSpec, flit_bytes: f64) -> Result<Self, BuildError> {
        Self::try_build_with(
            spec,
            flit_bytes,
            AscentPolicy::default(),
            &FaultSchedule::default(),
        )
    }

    /// The full build: explicit ascent policy plus a fault schedule whose
    /// *static* part (`links`, `link_fraction`) is applied here — failed
    /// links are masked out of every interned route (fault-aware Up*/Down*
    /// reroute), disconnected pairs are recorded for
    /// [`RouteTable::is_unreachable`], and the resulting channel mask is
    /// exposed through [`BuiltSystem::static_failed`] for the engines.
    /// Timed `events` are range-checked here but applied by the engines.
    ///
    /// With an inert schedule this is byte-for-byte the historical build.
    pub fn try_build_with(
        spec: &SystemSpec,
        flit_bytes: f64,
        policy: AscentPolicy,
        faults: &FaultSchedule,
    ) -> Result<Self, BuildError> {
        Self::try_build_full(spec, flit_bytes, policy, faults, InternMode::default())
    }

    /// [`BuiltSystem::try_build_with`] with an explicit route-interning
    /// mode: [`InternMode::Classed`] (the default) materializes routes
    /// lazily per equivalence class and scales to millions of endpoints;
    /// [`InternMode::Eager`] pre-interns all pairs (the golden oracle,
    /// ≤ 65 535 nodes). The two are bit-identical in every simulation
    /// result.
    pub fn try_build_full(
        spec: &SystemSpec,
        flit_bytes: f64,
        policy: AscentPolicy,
        faults: &FaultSchedule,
        interning: InternMode,
    ) -> Result<Self, BuildError> {
        let c = spec.num_clusters();
        let mut icn1 = Vec::with_capacity(c);
        let mut ecn1 = Vec::with_capacity(c);
        let mut icn1_off = Vec::with_capacity(c);
        let mut ecn1_off = Vec::with_capacity(c);
        let mut chan_time: Vec<f64> = Vec::new();

        let push_graph = |graph: &AnyTopology, t_cn: f64, t_cs: f64, chan_time: &mut Vec<f64>| {
            let off = chan_time.len() as u32;
            for i in 0..graph.num_channels() {
                let kind = graph.channel(cocnet_topology::ChannelId(i as u32)).kind;
                chan_time.push(match kind {
                    ChannelKind::NodeToSwitch | ChannelKind::SwitchToNode => t_cn,
                    ChannelKind::SwitchToSwitch => t_cs,
                });
            }
            off
        };

        // One channel graph per distinct shape — clusters with the same
        // backend shape (tree `(m, n)` or torus dims) share the structure
        // (channel ids, routes) even though their channel *times* differ,
        // which the per-network offsets into `chan_time` already express.
        #[derive(PartialEq, Eq, Hash)]
        enum TopoKey {
            Tree(u32, u32),
            Torus(TorusShape),
        }
        let m = spec.m;
        let mut graph_cache: HashMap<TopoKey, Arc<AnyTopology>> = HashMap::new();
        let mut get_graph = |topo: &TopoSpec, tree_height: u32| -> Arc<AnyTopology> {
            let key = match topo {
                TopoSpec::Tree => TopoKey::Tree(m, tree_height),
                TopoSpec::Torus(s) => TopoKey::Torus(*s),
            };
            graph_cache
                .entry(key)
                .or_insert_with(|| {
                    Arc::new(
                        AnyTopology::build(m, tree_height, topo)
                            .expect("validated spec builds its channel graph"),
                    )
                })
                .clone()
        };

        for i in 0..c {
            let g = get_graph(&spec.clusters[i].topology, spec.clusters[i].n);
            let net = &spec.clusters[i].icn1;
            icn1_off.push(push_graph(
                &g,
                net.t_cn(flit_bytes),
                net.t_cs(flit_bytes),
                &mut chan_time,
            ));
            icn1.push(g);
        }
        for i in 0..c {
            let g = get_graph(&spec.clusters[i].topology, spec.clusters[i].n);
            let net = &spec.clusters[i].ecn1;
            ecn1_off.push(push_graph(
                &g,
                net.t_cn(flit_bytes),
                net.t_cs(flit_bytes),
                &mut chan_time,
            ));
            ecn1.push(g);
        }
        let icn2_height = if spec.topology.is_tree() {
            spec.icn2_height().expect("validated")
        } else {
            0
        };
        let icn2 = get_graph(&spec.topology, icn2_height);
        let icn2_off = push_graph(
            &icn2,
            spec.icn2.t_cn(flit_bytes),
            spec.icn2.t_cs(flit_bytes),
            &mut chan_time,
        );

        let total = spec.total_nodes();
        let mut node_cluster = Vec::with_capacity(total);
        let mut node_local = Vec::with_capacity(total);
        for i in 0..c {
            for l in 0..spec.cluster_nodes(i) {
                node_cluster.push(i as u32);
                node_local.push(l as u32);
            }
        }

        // Every backend holds an even channel count (2·n·N for a tree,
        // 2·N·(1 + ndims) for a torus), so every network offset is even
        // and the global reverse of channel `g` is `g ^ 1`, exactly as
        // within one graph. The fault mask relies on it.
        debug_assert!(
            icn1_off.iter().chain(ecn1_off.iter()).all(|&o| o % 2 == 0) && icn2_off % 2 == 0,
            "network offsets must be even for global reverse = id ^ 1"
        );

        let num_channels = chan_time.len();
        if !(faults.link_fraction.is_finite() && (0.0..=1.0).contains(&faults.link_fraction)) {
            return Err(BuildError::BadFaultFraction {
                fraction: faults.link_fraction,
            });
        }
        for &l in &faults.links {
            if l as usize >= num_channels {
                return Err(BuildError::FaultLinkOutOfRange {
                    link: l,
                    num_channels,
                });
            }
        }
        for e in &faults.events {
            if e.link as usize >= num_channels {
                return Err(BuildError::FaultLinkOutOfRange {
                    link: e.link,
                    num_channels,
                });
            }
        }

        // Static fault mask: explicit links plus the first ⌊fraction·L⌋
        // links of one fixed SplitMix64 Fisher–Yates permutation — nested
        // across fractions, so degradation sweeps decline monotonically.
        let mut failed: Vec<bool> = Vec::new();
        if !faults.links.is_empty() || faults.link_fraction > 0.0 {
            failed = vec![false; num_channels];
            for &l in &faults.links {
                failed[l as usize] = true;
                failed[(l ^ 1) as usize] = true;
            }
            if faults.link_fraction > 0.0 {
                let nlinks = num_channels / 2;
                let mut perm: Vec<u32> = (0..nlinks as u32).collect();
                let mut state = faults.fault_seed;
                for i in (1..nlinks).rev() {
                    let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                    perm.swap(i, j);
                }
                let take = ((faults.link_fraction * nlinks as f64).floor() as usize).min(nlinks);
                for &l in &perm[..take] {
                    failed[2 * l as usize] = true;
                    failed[2 * l as usize + 1] = true;
                }
            }
        }

        // Project the global mask into per-graph fault sets for the
        // fault-aware route interning.
        let mut gf = GraphFaults::empty(c);
        for g in (0..failed.len()).step_by(2) {
            if !failed[g] {
                continue;
            }
            let g32 = g as u32;
            if g32 >= icn2_off {
                gf.icn2.fail_link(ChannelId(g32 - icn2_off));
            } else if let Some(i) = (0..c).rev().find(|&i| g32 >= ecn1_off[i]) {
                gf.ecn1[i].fail_link(ChannelId(g32 - ecn1_off[i]));
            } else {
                let i = (0..c)
                    .rev()
                    .find(|&i| g32 >= icn1_off[i])
                    .expect("channel below every offset");
                gf.icn1[i].fail_link(ChannelId(g32 - icn1_off[i]));
            }
        }

        let cluster_nodes: Vec<u32> = (0..c).map(|i| spec.cluster_nodes(i) as u32).collect();
        let chan_time = Arc::new(chan_time);
        let node_cluster = Arc::new(node_cluster);
        let node_local = Arc::new(node_local);
        let failed = Arc::new(failed);
        let routes = match interning {
            InternMode::Eager => RouteTable::Eager(EagerTable::build(
                &icn1,
                &ecn1,
                &icn2,
                &icn1_off,
                &ecn1_off,
                icn2_off,
                &chan_time,
                &node_cluster,
                &node_local,
                &cluster_nodes,
                policy,
                &gf,
            )?),
            InternMode::Classed => RouteTable::Classed(ClassedTable::new(
                icn1.clone(),
                ecn1.clone(),
                icn2.clone(),
                icn1_off.clone(),
                ecn1_off.clone(),
                icn2_off,
                chan_time.clone(),
                failed.clone(),
                gf,
                policy,
                node_cluster.clone(),
                node_local.clone(),
            )),
        };

        Ok(Self {
            spec: spec.clone(),
            icn1,
            ecn1,
            icn2,
            icn1_off,
            ecn1_off,
            icn2_off,
            chan_time,
            node_cluster,
            node_local,
            policy,
            routes,
            failed,
        })
    }

    /// The static (build-time) failed-channel mask: one bool per global
    /// channel, both directions of a failed link set. Empty — no mask at
    /// all — for zero-fault builds; the engines seed their live fault
    /// state from it.
    pub fn static_failed(&self) -> &[bool] {
        &self.failed
    }

    /// The underlying system specification.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The interned deterministic route table (built once per system).
    #[inline]
    pub fn route_table(&self) -> &RouteTable {
        &self.routes
    }

    /// Total number of global channels.
    pub fn num_channels(&self) -> usize {
        self.chan_time.len()
    }

    /// Per-flit transfer time of global channel `c`.
    pub fn chan_time(&self, c: u32) -> f64 {
        self.chan_time[c as usize]
    }

    /// Total number of processing nodes (flat indexing).
    pub fn total_nodes(&self) -> usize {
        self.node_cluster.len()
    }

    /// Cluster owning flat node `f`.
    pub fn cluster_of(&self, f: usize) -> usize {
        self.node_cluster[f] as usize
    }

    /// Cluster owning a global channel (`None` for ICN2 fabric channels).
    /// Every ICN1 and ECN1 channel belongs to exactly one cluster; this is
    /// the sharded engine's channel → shard partition map.
    pub fn channel_cluster(&self, chan: u32) -> Option<usize> {
        match self.network_of(chan) {
            ("ICN2", _) => None,
            (_, i) => Some(i),
        }
    }

    /// Which network a global channel belongs to, for diagnostics:
    /// `("ICN1", i)`, `("ECN1", i)` or `("ICN2", 0)`.
    pub fn network_of(&self, chan: u32) -> (&'static str, usize) {
        if chan >= self.icn2_off {
            return ("ICN2", 0);
        }
        for i in (0..self.ecn1_off.len()).rev() {
            if chan >= self.ecn1_off[i] {
                return ("ECN1", i);
            }
        }
        for i in (0..self.icn1_off.len()).rev() {
            if chan >= self.icn1_off[i] {
                return ("ICN1", i);
            }
        }
        unreachable!("channel id out of range")
    }

    /// Human-readable description of a global channel (network, endpoints).
    pub fn describe_channel(&self, chan: u32) -> String {
        let (net, i) = self.network_of(chan);
        let (graph, off) = match net {
            "ICN1" => (&self.icn1[i], self.icn1_off[i]),
            "ECN1" => (&self.ecn1[i], self.ecn1_off[i]),
            _ => (&self.icn2, self.icn2_off),
        };
        let desc = graph.channel(cocnet_topology::ChannelId(chan - off));
        match net {
            "ICN2" => format!("ICN2 {:?} -> {:?}", desc.from, desc.to),
            _ => format!("{net}({i}) {:?} -> {:?}", desc.from, desc.to),
        }
    }

    /// Builds the wormhole segments for a message from flat node `src` to
    /// flat node `dst`.
    ///
    /// * intra-cluster: one segment through ICN1(i);
    /// * inter-cluster: ECN1(i) ascent → ICN2 crossing → ECN1(j) descent,
    ///   three segments separated by the concentrator and dispatcher
    ///   buffers. The ICN2 segment's injection channel *is* the
    ///   concentrator queue; the ECN1(j) segment's first channel is the
    ///   dispatcher queue.
    ///
    /// # Panics
    /// Panics if `src == dst` (patterns never produce self-traffic).
    pub fn segments_for(&self, src: usize, dst: usize) -> Vec<Segment> {
        assert_ne!(src, dst, "self-traffic is excluded by assumption 2");
        let (ci, li) = (
            self.node_cluster[src] as usize,
            self.node_local[src] as usize,
        );
        let (cj, lj) = (
            self.node_cluster[dst] as usize,
            self.node_local[dst] as usize,
        );
        let seg = |route: &[ChannelId], off: u32| Segment {
            chans: route.iter().map(|c| off + c.0).collect(),
        };
        let mut scratch: Vec<ChannelId> = Vec::new();
        if ci == cj {
            self.icn1[ci]
                .route_into(li, lj, self.policy, &mut scratch)
                .expect("valid local ids");
            return vec![seg(&scratch, self.icn1_off[ci])];
        }
        self.ecn1[ci]
            .route_exit_into(li, self.policy, &mut scratch)
            .expect("valid local id");
        let up = seg(&scratch, self.ecn1_off[ci]);
        self.icn2
            .route_into(ci, cj, self.policy, &mut scratch)
            .expect("valid cluster ids");
        let cross = seg(&scratch, self.icn2_off);
        self.ecn1[cj]
            .route_entry_into(lj, self.policy, &mut scratch)
            .expect("valid local id");
        let down = seg(&scratch, self.ecn1_off[cj]);
        vec![up, cross, down]
    }
}

impl BuiltSystem {
    /// Builds one message's adaptive route directly into the caller's
    /// arena — the allocation-free form of
    /// [`BuiltSystem::segments_for_adaptive`], used by the worm engine's
    /// hot path. `out` is cleared and filled with global channel ids; the
    /// returned metas index into `out` and carry the same precomputed
    /// `sum_t`/`bottleneck_t` the interned table provides for
    /// deterministic routes.
    ///
    /// Draws exactly the same random digits, in the same order, as
    /// [`BuiltSystem::segments_for_adaptive`], so simulations are
    /// bit-identical whichever form builds the route.
    pub fn adaptive_route_into<R: Rng + ?Sized>(
        &self,
        src: usize,
        dst: usize,
        rng: &mut R,
        scratch: &mut AdaptiveScratch,
        out: &mut Vec<u32>,
    ) -> ([SegMeta; 3], u8) {
        self.adaptive_draw_digits(src, dst, rng, &mut scratch.digits);
        let digits = std::mem::take(&mut scratch.digits);
        let r = self.adaptive_route_from_digits(src, dst, &digits, scratch, out);
        scratch.digits = digits;
        r
    }

    /// How many random ascent digits an adaptive route from `src` to
    /// `dst` consumes: `(up, cross)` — `n_i − 1` free ascent choices in
    /// the first network, plus `n_c − 1` in ICN2 for inter-cluster pairs.
    pub fn adaptive_digit_counts(&self, src: usize, dst: usize) -> (u32, u32) {
        let ci = self.node_cluster[src] as usize;
        let cj = self.node_cluster[dst] as usize;
        let n_i = self.spec.clusters[ci].n.saturating_sub(1);
        if ci == cj {
            (n_i, 0)
        } else {
            let n_c = self.spec.icn2_height().expect("validated");
            (n_i, n_c.saturating_sub(1))
        }
    }

    /// Draws an adaptive route's ascent digits into `digits` — exactly
    /// the same count and order [`BuiltSystem::adaptive_route_into`]
    /// consumes, so separating the draw from the route construction
    /// (e.g. to consult a memo cache between the two) never perturbs the
    /// RNG stream.
    pub fn adaptive_draw_digits<R: Rng + ?Sized>(
        &self,
        src: usize,
        dst: usize,
        rng: &mut R,
        digits: &mut Vec<u32>,
    ) {
        let k = self.spec.m / 2;
        let (up, cross) = self.adaptive_digit_counts(src, dst);
        digits.clear();
        for _ in 0..up + cross {
            digits.push(rng.random_range(0..k));
        }
    }

    /// The deterministic tail of [`BuiltSystem::adaptive_route_into`]:
    /// materialises the route selected by pre-drawn ascent `digits`
    /// (`up` digits first, then `cross`, as laid out by
    /// [`BuiltSystem::adaptive_draw_digits`]). Identical digits produce
    /// bit-identical channel lists and segment metadata.
    pub fn adaptive_route_from_digits(
        &self,
        src: usize,
        dst: usize,
        digits: &[u32],
        scratch: &mut AdaptiveScratch,
        out: &mut Vec<u32>,
    ) -> ([SegMeta; 3], u8) {
        assert_ne!(src, dst, "self-traffic is excluded by assumption 2");
        out.clear();
        let (ci, li) = (
            self.node_cluster[src] as usize,
            self.node_local[src] as usize,
        );
        let (cj, lj) = (
            self.node_cluster[dst] as usize,
            self.node_local[dst] as usize,
        );
        let mut metas = [SegMeta::default(); 3];
        let append = |route: &[ChannelId], off: u32, out: &mut Vec<u32>| -> SegMeta {
            let start = out.len() as u32;
            let mut sum = 0.0;
            let mut bot = 0.0f64;
            for c in route {
                let g = off + c.0;
                let t = self.chan_time[g as usize];
                sum += t;
                bot = bot.max(t);
                out.push(g);
            }
            SegMeta {
                start: start as u64,
                len: out.len() as u32 - start,
                sum_t: sum,
                bottleneck_t: bot,
            }
        };
        if ci == cj {
            self.icn1[ci]
                .route_adaptive_into(li, lj, digits, &mut scratch.route)
                .expect("valid local ids");
            metas[0] = append(&scratch.route, self.icn1_off[ci], out);
            return (metas, 1);
        }
        let n_up = self.spec.clusters[ci].n.saturating_sub(1) as usize;
        self.ecn1[ci]
            .route_exit_adaptive_into(li, &digits[..n_up], &mut scratch.route)
            .expect("valid local id");
        metas[0] = append(&scratch.route, self.ecn1_off[ci], out);
        self.icn2
            .route_adaptive_into(ci, cj, &digits[n_up..], &mut scratch.route)
            .expect("valid cluster ids");
        metas[1] = append(&scratch.route, self.icn2_off, out);
        self.ecn1[cj]
            .route_entry_into(lj, self.policy, &mut scratch.route)
            .expect("valid local id");
        metas[2] = append(&scratch.route, self.ecn1_off[cj], out);
        (metas, 3)
    }

    /// The smallest single-channel crossing time on the inter-cluster
    /// fabric (every ECN1 and ICN2 channel) — the concrete-channel form
    /// of [`SystemSpec::intercluster_lookahead`], taken over the built
    /// channel table. This is the sharded engine's conservative sync
    /// lookahead: a message emitted into the inter-cluster fabric at `t`
    /// cannot request a channel on another shard before `t + Δ`.
    pub fn min_intercluster_channel_time(&self) -> f64 {
        // Channel numbering is all ICN1s, then all ECN1s, then ICN2, so
        // everything at or past the first ECN1 offset is boundary fabric.
        let from = self.ecn1_off.first().copied().unwrap_or(self.icn2_off) as usize;
        self.chan_time[from..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Like [`BuiltSystem::segments_for`], but with per-message random
    /// ascent digits — the oblivious-adaptive routing variant (paper ref
    /// \[7\] contrasts adaptive wormhole routing with the deterministic
    /// scheme the model assumes). Descent stays destination-determined.
    pub fn segments_for_adaptive<R: Rng + ?Sized>(
        &self,
        src: usize,
        dst: usize,
        rng: &mut R,
    ) -> Vec<Segment> {
        assert_ne!(src, dst, "self-traffic is excluded by assumption 2");
        let k = self.spec.m / 2;
        let mut digits =
            |len: u32| -> Vec<u32> { (0..len).map(|_| rng.random_range(0..k)).collect() };
        let (ci, li) = (
            self.node_cluster[src] as usize,
            self.node_local[src] as usize,
        );
        let (cj, lj) = (
            self.node_cluster[dst] as usize,
            self.node_local[dst] as usize,
        );
        let seg = |route: &[ChannelId], off: u32| Segment {
            chans: route.iter().map(|c| off + c.0).collect(),
        };
        let mut scratch: Vec<ChannelId> = Vec::new();
        if ci == cj {
            let n = self.spec.clusters[ci].n;
            let d = digits(n.saturating_sub(1));
            self.icn1[ci]
                .route_adaptive_into(li, lj, &d, &mut scratch)
                .expect("valid local ids");
            return vec![seg(&scratch, self.icn1_off[ci])];
        }
        let n_i = self.spec.clusters[ci].n;
        let n_c = self.spec.icn2_height().expect("validated");
        let d_up = digits(n_i.saturating_sub(1));
        self.ecn1[ci]
            .route_exit_adaptive_into(li, &d_up, &mut scratch)
            .expect("valid local id");
        let up = seg(&scratch, self.ecn1_off[ci]);
        let d_cross = digits(n_c.saturating_sub(1));
        self.icn2
            .route_adaptive_into(ci, cj, &d_cross, &mut scratch)
            .expect("valid cluster ids");
        let cross = seg(&scratch, self.icn2_off);
        self.ecn1[cj]
            .route_entry_into(lj, self.policy, &mut scratch)
            .expect("valid local id");
        let down = seg(&scratch, self.ecn1_off[cj]);
        vec![up, cross, down]
    }
}

/// One materialised adaptive route, shared through
/// [`AdaptiveRouteCache`]: all segments' global channel ids concatenated,
/// plus the same precomputed per-segment metadata the per-slot arena
/// carries.
#[derive(Debug, Clone)]
pub struct CachedRoute {
    /// Global channel ids, segments concatenated ([`SegMeta::start`]
    /// indexes into this).
    pub chans: Vec<u32>,
    /// Per-segment metadata (entries past `nsegs` are default-zero).
    pub segs: [SegMeta; 3],
    /// Segment count: 1 intra-cluster, 3 inter-cluster.
    pub nsegs: u8,
}

/// Memoized adaptive routes, keyed by `(src·N + dst, packed ascent
/// digits)`.
///
/// Adaptive routing is fully determined by the source, the destination
/// and the random ascent digits — the descent is destination-determined —
/// so repeated (pair, digits) combinations need not re-walk the graph's
/// per-hop switch maps. The cache draws exactly the digits the uncached
/// path would ([`BuiltSystem::adaptive_draw_digits`]), so cached and
/// uncached runs consume the identical RNG stream and produce
/// bit-identical routes. Entries are never evicted: the key space per
/// run is bounded by (pairs × kᵈⁱᵍⁱᵗˢ) and in practice by the far
/// smaller set of combinations the traffic pattern actually draws.
///
/// The sharded engine additionally uses the arena as its shared
/// read-only route store: a message carries a cache index instead of a
/// per-slot copy, so routes survive cross-shard handoffs.
#[derive(Debug, Default)]
pub struct AdaptiveRouteCache {
    map: std::collections::HashMap<(u64, u64), u32>,
    routes: Vec<CachedRoute>,
}

impl AdaptiveRouteCache {
    /// Number of distinct routes materialised so far.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no route has been materialised yet.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The route behind an index returned by
    /// [`AdaptiveRouteCache::route_idx`].
    pub fn route(&self, idx: u32) -> &CachedRoute {
        &self.routes[idx as usize]
    }

    /// Draws the ascent digits for one adaptive message (consuming the
    /// RNG exactly as [`BuiltSystem::adaptive_route_into`] would) and
    /// returns the arena index of the selected route, materialising it
    /// on first use.
    pub fn route_idx<R: Rng + ?Sized>(
        &mut self,
        built: &BuiltSystem,
        src: usize,
        dst: usize,
        rng: &mut R,
        scratch: &mut AdaptiveScratch,
    ) -> u32 {
        built.adaptive_draw_digits(src, dst, rng, &mut scratch.digits);
        let digits = std::mem::take(&mut scratch.digits);
        // Pack the digits into one base-2^bits key. Every digit is < k,
        // so ceil(log2 k) bits each are injective; k = 1 packs to the
        // single code 0, which is exact (all-zero digits, one route).
        let k = built.spec().m / 2;
        let bits = 32 - (k.max(1) - 1).leading_zeros();
        let key = if digits.len() as u32 * bits <= 64 {
            let mut code = 0u64;
            for &d in &digits {
                code = (code << bits) | d as u64;
            }
            Some((src as u64 * built.total_nodes() as u64 + dst as u64, code))
        } else {
            // Unpackable digit strings (absurdly deep trees): build
            // uncached — still arena-backed so sharding works.
            None
        };
        let idx = match key.and_then(|k| self.map.get(&k).copied()) {
            Some(idx) => idx,
            None => {
                let mut chans = Vec::new();
                let (segs, nsegs) =
                    built.adaptive_route_from_digits(src, dst, &digits, scratch, &mut chans);
                let idx = self.routes.len() as u32;
                self.routes.push(CachedRoute { chans, segs, nsegs });
                if let Some(k) = key {
                    self.map.insert(k, idx);
                }
                idx
            }
        };
        scratch.digits = digits;
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn spec() -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
            topology: Default::default(),
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net1).unwrap()
    }

    #[test]
    fn channel_count_covers_all_networks() {
        let b = BuiltSystem::build(&spec(), 256.0);
        // ICN1 and ECN1 per cluster: 2·n·N directed channels each
        // (clusters: two with n=1,N=4 and two with n=2,N=8); ICN2: 2·n_c·C.
        let per_network: usize = 2 * (2 * 4) + 2 * (2 * 2 * 8);
        let expected = 2 * per_network + 2 * 4;
        assert_eq!(b.num_channels(), expected);
        assert_eq!(b.total_nodes(), 24);
    }

    #[test]
    fn intra_message_is_one_segment() {
        let b = BuiltSystem::build(&spec(), 256.0);
        let segs = b.segments_for(8, 9); // both in cluster 2
        assert_eq!(segs.len(), 1);
        assert!(!segs[0].chans.is_empty());
        assert_eq!(segs[0].chans.len() % 2, 0, "2h channels");
    }

    #[test]
    fn inter_message_is_three_segments() {
        let b = BuiltSystem::build(&spec(), 256.0);
        let segs = b.segments_for(0, 23); // cluster 0 -> cluster 3
        assert_eq!(segs.len(), 3);
        // ECN1(0) ascent: n_0 = 1 channel; ICN2: 2l; ECN1(3) descent: n_3 = 2.
        assert_eq!(segs[0].chans.len(), 1);
        assert_eq!(segs[1].chans.len() % 2, 0);
        assert_eq!(segs[2].chans.len(), 2);
    }

    #[test]
    fn segments_use_disjoint_channel_ranges() {
        let b = BuiltSystem::build(&spec(), 256.0);
        let segs = b.segments_for(0, 23);
        let all: Vec<u32> = segs.iter().flat_map(|s| s.chans.iter().copied()).collect();
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len(), "no channel repeats on a path");
        for &c in &all {
            assert!((c as usize) < b.num_channels());
        }
    }

    #[test]
    fn channel_times_match_network_characteristics() {
        let b = BuiltSystem::build(&spec(), 256.0);
        // Intra path channels use ICN1 times (net1).
        let segs = b.segments_for(8, 9);
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let first = segs[0].chans[0];
        assert!((b.chan_time(first) - net1.t_cn(256.0)).abs() < 1e-12);
        // Inter first segment uses ECN1 times (net2).
        let segs = b.segments_for(0, 23);
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        assert!((b.chan_time(segs[0].chans[0]) - net2.t_cn(256.0)).abs() < 1e-12);
    }

    #[test]
    fn adaptive_segments_share_shape_with_deterministic() {
        use rand::SeedableRng;
        let b = BuiltSystem::build(&spec(), 256.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for (src, dst) in [(0usize, 23usize), (8, 9), (4, 12)] {
            let det = b.segments_for(src, dst);
            let ada = b.segments_for_adaptive(src, dst, &mut rng);
            assert_eq!(det.len(), ada.len());
            for (d, a) in det.iter().zip(&ada) {
                assert_eq!(d.chans.len(), a.chans.len());
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn self_traffic_rejected() {
        let b = BuiltSystem::build(&spec(), 256.0);
        b.segments_for(3, 3);
    }

    #[test]
    fn route_table_matches_segments_for_exhaustively() {
        // The interned table must reproduce the legacy per-message route
        // construction exactly — ids, order, and bitwise sum/bottleneck —
        // for every (src, dst) pair of a heterogeneous system.
        let b = BuiltSystem::build(&spec(), 256.0);
        let rt = b.route_table();
        for src in 0..b.total_nodes() {
            for dst in 0..b.total_nodes() {
                if src == dst {
                    continue;
                }
                let legacy = b.segments_for(src, dst);
                let r = rt.route_ref(src, dst);
                assert_eq!(rt.num_segments(r) as usize, legacy.len(), "{src}->{dst}");
                for (k, seg) in legacy.iter().enumerate() {
                    let m = rt.seg_meta(r, k as u32);
                    assert_eq!(
                        rt.segment_channels(m),
                        seg.chans.as_slice(),
                        "{src}->{dst} segment {k}"
                    );
                    let mut sum = 0.0;
                    let mut bot = 0.0f64;
                    for &c in &seg.chans {
                        let t = b.chan_time(c);
                        sum += t;
                        bot = bot.max(t);
                    }
                    assert_eq!(sum.to_bits(), m.sum_t.to_bits(), "{src}->{dst} sum");
                    assert_eq!(bot.to_bits(), m.bottleneck_t.to_bits(), "{src}->{dst} bot");
                }
            }
        }
    }

    #[test]
    fn adaptive_arena_route_matches_legacy_draws() {
        // Same seed → the arena builder must consume the RNG identically
        // and produce the same channels and bitwise segment metrics as the
        // allocating reference.
        use rand::SeedableRng;
        let b = BuiltSystem::build(&spec(), 256.0);
        let mut rng_legacy = rand::rngs::StdRng::seed_from_u64(42);
        let mut rng_arena = rand::rngs::StdRng::seed_from_u64(42);
        let mut scratch = AdaptiveScratch::default();
        let mut arena = Vec::new();
        for (src, dst) in [(0usize, 23usize), (8, 9), (4, 12), (23, 0), (10, 11)] {
            let legacy = b.segments_for_adaptive(src, dst, &mut rng_legacy);
            let (metas, n) =
                b.adaptive_route_into(src, dst, &mut rng_arena, &mut scratch, &mut arena);
            assert_eq!(n as usize, legacy.len(), "{src}->{dst}");
            for (k, seg) in legacy.iter().enumerate() {
                let m = metas[k];
                let got = &arena[m.start as usize..(m.start + m.len as u64) as usize];
                assert_eq!(got, seg.chans.as_slice(), "{src}->{dst} segment {k}");
                let mut sum = 0.0;
                let mut bot = 0.0f64;
                for &c in &seg.chans {
                    let t = b.chan_time(c);
                    sum += t;
                    bot = bot.max(t);
                }
                assert_eq!(sum.to_bits(), m.sum_t.to_bits());
                assert_eq!(bot.to_bits(), m.bottleneck_t.to_bits());
            }
        }
    }

    #[test]
    fn faulted_build_is_identical_when_inert() {
        let b0 = BuiltSystem::build(&spec(), 256.0);
        let b1 = BuiltSystem::try_build_with(
            &spec(),
            256.0,
            AscentPolicy::default(),
            &Default::default(),
        )
        .unwrap();
        assert!(b1.static_failed().is_empty());
        let (r0, r1) = (b0.route_table(), b1.route_table());
        for src in 0..b0.total_nodes() {
            for dst in 0..b0.total_nodes() {
                if src == dst {
                    continue;
                }
                assert!(!r1.is_unreachable(src, dst));
                let (a, b) = (r0.route_ref(src, dst), r1.route_ref(src, dst));
                for k in 0..r0.num_segments(a) {
                    assert_eq!(
                        r0.segment_channels(r0.seg_meta(a, k)),
                        r1.segment_channels(r1.seg_meta(b, k))
                    );
                }
            }
        }
    }

    #[test]
    fn faulted_build_reroutes_or_marks_unreachable() {
        // Fail one intra-cluster injection link: the source node of that
        // link cannot reach its cluster peers (injection has no alternate),
        // while everything else stays routable or reroutes.
        let s = spec();
        let b0 = BuiltSystem::build(&s, 256.0);
        // Node 8 is in cluster 2 (n=2): its ICN1 injection channel.
        let inj = b0.segments_for(8, 9)[0].chans[0];
        let faults = FaultSchedule {
            links: vec![inj],
            ..Default::default()
        };
        let b = BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &faults).unwrap();
        assert!(b.static_failed()[inj as usize]);
        assert!(b.static_failed()[(inj ^ 1) as usize], "tandem reverse");
        let rt = b.route_table();
        assert!(rt.is_unreachable(8, 9));
        assert!(rt.is_unreachable(8, 15));
        assert!(rt.is_unreachable(9, 8), "ejection = reverse of injection");
        assert!(!rt.is_unreachable(9, 10));
        // Inter-cluster routes of node 8 use the ECN1 network — unaffected.
        assert!(!rt.is_unreachable(8, 0));
    }

    #[test]
    fn faulted_build_reroutes_around_switch_fabric_links() {
        // Fail one switch-to-switch link on an intra route of the n=2
        // cluster: the pair must still be reachable via the alternate
        // ascent, and the rerouted segment must avoid the failed channels.
        let s = spec();
        let b0 = BuiltSystem::build(&s, 256.0);
        let seg = &b0.segments_for(8, 15)[0];
        assert!(seg.chans.len() >= 4, "need a switch-fabric hop");
        let up = seg.chans[1]; // first switch-to-switch channel
        let faults = FaultSchedule {
            links: vec![up],
            ..Default::default()
        };
        let b = BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &faults).unwrap();
        let rt = b.route_table();
        assert!(!rt.is_unreachable(8, 15));
        let r = rt.route_ref(8, 15);
        let chans = rt.segment_channels(rt.seg_meta(r, 0));
        assert!(!chans.contains(&up));
        assert!(!chans.contains(&(up ^ 1)));
        assert!(!chans.is_empty());
    }

    #[test]
    fn link_fraction_sets_are_nested_and_full_fraction_kills_everything() {
        let s = spec();
        let frac = |f: f64| FaultSchedule {
            link_fraction: f,
            ..Default::default()
        };
        let masks: Vec<Vec<bool>> = [0.1, 0.3, 0.7, 1.0]
            .iter()
            .map(|&f| {
                BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &frac(f))
                    .unwrap()
                    .static_failed()
                    .to_vec()
            })
            .collect();
        for w in masks.windows(2) {
            for (a, b) in w[0].iter().zip(&w[1]) {
                assert!(!a || *b, "fault sets must be nested across fractions");
            }
        }
        assert!(masks[3].iter().all(|&x| x), "fraction 1.0 fails every link");
        let full =
            BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &frac(1.0)).unwrap();
        assert!(full.route_table().is_unreachable(0, 1));
        assert!(full.route_table().is_unreachable(0, 23));
    }

    #[test]
    fn fault_validation_rejects_bad_inputs() {
        let s = spec();
        let nchan = BuiltSystem::build(&s, 256.0).num_channels();
        let bad_link = FaultSchedule {
            links: vec![nchan as u32],
            ..Default::default()
        };
        assert!(matches!(
            BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &bad_link),
            Err(BuildError::FaultLinkOutOfRange { .. })
        ));
        assert!(validate_faults(&s, &bad_link)
            .unwrap_err()
            .contains("out of range"));
        let bad_frac = FaultSchedule {
            link_fraction: 1.5,
            ..Default::default()
        };
        assert!(matches!(
            BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &bad_frac),
            Err(BuildError::BadFaultFraction { .. })
        ));
        assert!(validate_faults(&s, &bad_frac).is_err());
        let bad_event = FaultSchedule {
            events: vec![crate::config::FaultEvent {
                time: -1.0,
                link: 0,
                action: crate::config::FaultAction::Fail,
            }],
            ..Default::default()
        };
        assert!(validate_faults(&s, &bad_event)
            .unwrap_err()
            .contains("time"));
        assert!(validate_faults(&s, &FaultSchedule::default()).is_ok());
    }

    #[test]
    fn expected_channels_matches_built_system() {
        let s = spec();
        assert_eq!(
            expected_channels(&s),
            BuiltSystem::build(&s, 256.0).num_channels()
        );
    }

    #[test]
    fn cluster_of_matches_spec_layout() {
        let b = BuiltSystem::build(&spec(), 256.0);
        assert_eq!(b.cluster_of(0), 0);
        assert_eq!(b.cluster_of(7), 1);
        assert_eq!(b.cluster_of(8), 2);
        assert_eq!(b.cluster_of(23), 3);
    }
}
