//! Materialising a [`SystemSpec`] into simulator state: channel tables for
//! every network and path construction for intra- and inter-cluster
//! messages.
//!
//! Global channel numbering concatenates, in order: each cluster's ICN1,
//! each cluster's ECN1, then the ICN2 network. The ICN2 tree's "processing
//! nodes" are the `C` concentrator/dispatcher devices, one per cluster.

use crate::config::FaultSchedule;
use cocnet_topology::{
    AscentPolicy, ChannelId, ChannelKind, FaultSet, Graph, MPortNTree, SystemSpec, TopologyError,
};
use rand::Rng;

/// Typed errors from materialising a [`SystemSpec`] into a [`BuiltSystem`]
/// (see [`BuiltSystem::try_build_with`]). A malformed spec or fault
/// schedule reaching the build now fails loudly with one of these instead
/// of aborting the process.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// Interning a route between spec-valid endpoints failed with a
    /// topology error other than fault disconnection — the spec and the
    /// built graphs disagree structurally.
    Route {
        /// Which route family was being interned.
        context: &'static str,
        /// The underlying topology error.
        err: TopologyError,
    },
    /// A fault schedule references a global channel id outside the system.
    FaultLinkOutOfRange {
        /// The offending channel id.
        link: u32,
        /// Number of global channels in the built system.
        num_channels: usize,
    },
    /// `link_fraction` is not a finite value in `[0, 1]`.
    BadFaultFraction {
        /// The offending fraction.
        fraction: f64,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Route { context, err } => {
                write!(f, "building {context} route failed: {err}")
            }
            Self::FaultLinkOutOfRange { link, num_channels } => write!(
                f,
                "fault link {link} out of range (system has {num_channels} channels)"
            ),
            Self::BadFaultFraction { fraction } => {
                write!(f, "fault link_fraction {fraction} must be in [0, 1]")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// SplitMix64 step — the deterministic generator behind the
/// `link_fraction` permutation (self-contained so fault placement never
/// depends on the traffic RNG).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Total global channels the built system of `spec` will have, from tree
/// arithmetic alone (no graphs built): `Σ_i 2·(2·n_i·N_i) + 2·n_c·C`.
fn expected_channels(spec: &SystemSpec) -> usize {
    let mut total = 0usize;
    for i in 0..spec.num_clusters() {
        let t = spec.cluster_tree(i);
        total += 2 * 2 * t.n() as usize * t.num_nodes();
    }
    let icn2 = spec.icn2_tree();
    total + 2 * icn2.n() as usize * icn2.num_nodes()
}

/// Spec-level validation of a fault schedule: field ranges
/// ([`FaultSchedule::validate`]) plus channel-id range checks against the
/// system `spec` describes — computed from tree arithmetic without
/// building any graphs, so `Scenario::validate()` can call it cheaply.
pub fn validate_faults(spec: &SystemSpec, faults: &FaultSchedule) -> Result<(), String> {
    faults.validate()?;
    let total = expected_channels(spec);
    for &l in &faults.links {
        if l as usize >= total {
            return Err(format!(
                "faults.links: channel id {l} out of range (system has {total} channels)"
            ));
        }
    }
    for (i, e) in faults.events.iter().enumerate() {
        if e.link as usize >= total {
            return Err(format!(
                "faults.events[{i}]: channel id {} out of range (system has {total} channels)",
                e.link
            ));
        }
    }
    Ok(())
}

/// Per-graph projection of the static global fault mask, consumed by the
/// fault-aware route interning.
struct GraphFaults {
    icn1: Vec<FaultSet>,
    ecn1: Vec<FaultSet>,
    icn2: FaultSet,
}

impl GraphFaults {
    fn empty(c: usize) -> Self {
        Self {
            icn1: vec![FaultSet::new(); c],
            ecn1: vec![FaultSet::new(); c],
            icn2: FaultSet::new(),
        }
    }
}

/// One wormhole segment: a maximal run of channels between rate-decoupling
/// buffers (source, concentrator, dispatcher, sink).
///
/// This owned form is the *reference* representation, used by tests and
/// diagnostics; the engines run off the interned [`RouteTable`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Global channel ids, in traversal order.
    pub chans: Vec<u32>,
}

/// Index of one deterministic (src, dst) route in the [`RouteTable`].
///
/// Encodes the pair arithmetically (`src · N + dst`), so the table needs no
/// per-pair storage; [`RouteRef::DYNAMIC`] marks a per-message adaptive
/// route that lives in the simulator's own arena instead of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteRef(u32);

impl RouteRef {
    /// Sentinel for routes that are not interned (adaptive routing); the
    /// engine resolves these against its per-message route arena.
    pub const DYNAMIC: RouteRef = RouteRef(u32::MAX);

    /// Whether this reference points at a dynamic (non-interned) route.
    #[inline]
    pub fn is_dynamic(self) -> bool {
        self == Self::DYNAMIC
    }
}

/// Precomputed view of one interned segment: where its channels live in
/// the route table's flat channel array, plus the two per-segment numbers
/// the wormhole drain model needs on every segment completion.
///
/// `sum_t` and `bottleneck_t` are accumulated in traversal order over the
/// exact same `f64` channel times the engine's channel table holds, so the
/// closed-form finish times computed from them are bit-identical to the
/// legacy per-event rescan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SegMeta {
    /// Offset of the segment's first channel in [`RouteTable::chans`]
    /// (or in the owning dynamic-route arena).
    pub start: u32,
    /// Number of channels in the segment.
    pub len: u32,
    /// Σ of the per-flit channel times, in traversal order.
    pub sum_t: f64,
    /// Max of the per-flit channel times (the segment's drain bottleneck).
    pub bottleneck_t: f64,
}

/// All deterministic (src, dst) wormhole routes of a built system, interned
/// once at build time into a flat CSR-style layout.
///
/// Routes share structure aggressively: an inter-cluster route is always
/// `up(src) → cross(cluster(src), cluster(dst)) → down(dst)`, so the table
/// stores one ascent and one descent segment per node, one crossing segment
/// per cluster pair and one segment per intra-cluster pair — never one
/// route per (src, dst) pair. Resolving a [`RouteRef`] to its segments is
/// pure arithmetic plus a handful of array reads, and yields [`SegMeta`]
/// entries whose `sum_t`/`bottleneck_t` are precomputed, which is what
/// keeps the engines' event loops allocation- and rescan-free.
#[derive(Debug)]
pub struct RouteTable {
    /// Flat channel-id storage of every interned segment.
    chans: Vec<u32>,
    /// Segment `s` occupies `chans[seg_off[s]..seg_off[s + 1]]`.
    seg_off: Vec<u32>,
    /// Per-segment Σ of channel times (traversal order).
    seg_sum: Vec<f64>,
    /// Per-segment max channel time.
    seg_bot: Vec<f64>,
    /// Per flat node: ECN1 ascent segment (source → exit root).
    up_seg: Vec<u32>,
    /// Per flat node: ECN1 descent segment (entry root → destination).
    down_seg: Vec<u32>,
    /// Per (ci, cj) cluster pair, row-major: ICN2 crossing segment
    /// (`u32::MAX` on the unused diagonal).
    cross_seg: Vec<u32>,
    /// Per cluster: first segment id of its `N_i × N_i` intra block.
    intra_base: Vec<u32>,
    /// Per interned segment: whether static faults disconnected it (the
    /// fault-aware reroute found no path). Empty — the fast path — when
    /// every segment routed.
    dead_segs: Vec<bool>,
    /// Flat-node → cluster / local lookups (copies, so the table resolves
    /// routes without touching the rest of [`BuiltSystem`]).
    node_cluster: Vec<u32>,
    node_local: Vec<u32>,
    cluster_nodes: Vec<u32>,
    total_nodes: u32,
    num_clusters: u32,
}

/// Builder half of [`RouteTable`]: accumulates segments into the CSR arrays.
#[derive(Default)]
struct TableBuilder {
    chans: Vec<u32>,
    seg_off: Vec<u32>,
    seg_sum: Vec<f64>,
    seg_bot: Vec<f64>,
}

impl TableBuilder {
    fn new() -> Self {
        TableBuilder {
            seg_off: vec![0],
            ..Default::default()
        }
    }

    /// The id the next interned segment will get, guarding the u32 offset
    /// space: intra blocks are quadratic in cluster size, so a legal node
    /// count can still overflow the CSR offsets — fail loudly, never wrap.
    fn next_id(&self) -> u32 {
        let id = self.seg_off.len() - 1;
        assert!(
            id <= u32::MAX as usize && self.chans.len() <= u32::MAX as usize,
            "route table exceeds u32 offset space (clusters too large to intern)"
        );
        id as u32
    }

    /// Interns one segment: local channel ids shifted by the network's
    /// global offset, with `sum`/`bottleneck` accumulated in traversal
    /// order over the same values the engine's channel table will hold.
    fn push_seg(&mut self, route: &[ChannelId], off: u32, chan_time: &[f64]) -> u32 {
        let id = self.next_id();
        let mut sum = 0.0;
        let mut bot = 0.0f64;
        for c in route {
            let g = off + c.0;
            let t = chan_time[g as usize];
            sum += t;
            bot = bot.max(t);
            self.chans.push(g);
        }
        assert!(
            self.chans.len() <= u32::MAX as usize,
            "route table exceeds u32 offset space (clusters too large to intern)"
        );
        self.seg_off.push(self.chans.len() as u32);
        self.seg_sum.push(sum);
        self.seg_bot.push(bot);
        id
    }

    /// Interns an empty placeholder (the unreachable `li == lj` diagonal of
    /// an intra block, kept so block indexing stays a multiplication).
    fn push_empty(&mut self) -> u32 {
        let id = self.next_id();
        self.seg_off.push(self.chans.len() as u32);
        self.seg_sum.push(0.0);
        self.seg_bot.push(0.0);
        id
    }
}

impl RouteTable {
    #[allow(clippy::too_many_arguments)]
    fn build(
        icn1: &[Graph],
        ecn1: &[Graph],
        icn2: &Graph,
        icn1_off: &[u32],
        ecn1_off: &[u32],
        icn2_off: u32,
        chan_time: &[f64],
        node_cluster: &[u32],
        node_local: &[u32],
        cluster_nodes: &[u32],
        policy: AscentPolicy,
        faults: &GraphFaults,
    ) -> Result<Self, BuildError> {
        let total_nodes = node_cluster.len();
        assert!(
            total_nodes <= u16::MAX as usize,
            "route interning encodes (src, dst) pairs in a u32: ≤ 65535 nodes"
        );
        let c = cluster_nodes.len();
        let mut b = TableBuilder::new();
        let mut scratch: Vec<ChannelId> = Vec::new();
        let mut dead_flags: Vec<bool> = Vec::new();

        // Disconnection under static faults is not a build error: the
        // segment is interned empty, marked dead, and the engines account
        // the affected messages as unreachable. Any other route failure is.
        fn routed(
            r: Result<u32, TopologyError>,
            context: &'static str,
        ) -> Result<bool, BuildError> {
            match r {
                Ok(_) => Ok(true),
                Err(TopologyError::Disconnected { .. }) => Ok(false),
                Err(err) => Err(BuildError::Route { context, err }),
            }
        }

        let mut up_seg = Vec::with_capacity(total_nodes);
        let mut down_seg = Vec::with_capacity(total_nodes);
        for f in 0..total_nodes {
            let ci = node_cluster[f] as usize;
            let li = node_local[f] as usize;
            let fs = &faults.ecn1[ci];
            let ok = routed(
                ecn1[ci].route_to_root_into_avoiding(li, policy, fs, &mut scratch),
                "ECN1 ascent",
            )?;
            up_seg.push(if ok {
                b.push_seg(&scratch, ecn1_off[ci], chan_time)
            } else {
                b.push_empty()
            });
            dead_flags.push(!ok);
            let ok = routed(
                ecn1[ci].route_from_root_into_avoiding(li, policy, fs, &mut scratch),
                "ECN1 descent",
            )?;
            down_seg.push(if ok {
                b.push_seg(&scratch, ecn1_off[ci], chan_time)
            } else {
                b.push_empty()
            });
            dead_flags.push(!ok);
        }

        let mut cross_seg = Vec::with_capacity(c * c);
        for ci in 0..c {
            for cj in 0..c {
                if ci == cj {
                    cross_seg.push(u32::MAX);
                    continue;
                }
                let ok = routed(
                    icn2.route_into_avoiding(ci, cj, policy, &faults.icn2, &mut scratch),
                    "ICN2 crossing",
                )?;
                cross_seg.push(if ok {
                    b.push_seg(&scratch, icn2_off, chan_time)
                } else {
                    b.push_empty()
                });
                dead_flags.push(!ok);
            }
        }

        let mut intra_base = Vec::with_capacity(c);
        for ci in 0..c {
            intra_base.push((b.seg_off.len() - 1) as u32);
            let ni = cluster_nodes[ci] as usize;
            for li in 0..ni {
                for lj in 0..ni {
                    if li == lj {
                        b.push_empty();
                        dead_flags.push(false);
                        continue;
                    }
                    let ok = routed(
                        icn1[ci].route_into_avoiding(
                            li,
                            lj,
                            policy,
                            &faults.icn1[ci],
                            &mut scratch,
                        ),
                        "ICN1 intra",
                    )?;
                    if ok {
                        b.push_seg(&scratch, icn1_off[ci], chan_time);
                    } else {
                        b.push_empty();
                    }
                    dead_flags.push(!ok);
                }
            }
        }

        // Keep the flags only when something actually died: the empty vec
        // is the zero-fault fast path of `is_unreachable`.
        let dead_segs = if dead_flags.contains(&true) {
            dead_flags
        } else {
            Vec::new()
        };

        Ok(RouteTable {
            chans: b.chans,
            seg_off: b.seg_off,
            seg_sum: b.seg_sum,
            seg_bot: b.seg_bot,
            up_seg,
            down_seg,
            cross_seg,
            intra_base,
            dead_segs,
            node_cluster: node_cluster.to_vec(),
            node_local: node_local.to_vec(),
            cluster_nodes: cluster_nodes.to_vec(),
            total_nodes: total_nodes as u32,
            num_clusters: c as u32,
        })
    }

    #[inline]
    fn decode(&self, r: RouteRef) -> (usize, usize) {
        (
            (r.0 / self.total_nodes) as usize,
            (r.0 % self.total_nodes) as usize,
        )
    }

    /// The interned route of a (src, dst) pair (flat node indexing).
    ///
    /// # Panics
    /// Debug-panics on `src == dst` (patterns never produce self-traffic).
    #[inline]
    pub fn route_ref(&self, src: usize, dst: usize) -> RouteRef {
        debug_assert_ne!(src, dst, "self-traffic is excluded by assumption 2");
        debug_assert!(src < self.total_nodes as usize && dst < self.total_nodes as usize);
        RouteRef(src as u32 * self.total_nodes + dst as u32)
    }

    /// How many wormhole segments the route crosses (1 intra, 3 inter).
    #[inline]
    pub fn num_segments(&self, r: RouteRef) -> u32 {
        let (src, dst) = self.decode(r);
        if self.node_cluster[src] == self.node_cluster[dst] {
            1
        } else {
            3
        }
    }

    #[inline]
    fn seg_id(&self, r: RouteRef, k: u32) -> u32 {
        let (src, dst) = self.decode(r);
        let ci = self.node_cluster[src] as usize;
        let cj = self.node_cluster[dst] as usize;
        if ci == cj {
            let ni = self.cluster_nodes[ci];
            self.intra_base[ci] + self.node_local[src] * ni + self.node_local[dst]
        } else {
            match k {
                0 => self.up_seg[src],
                1 => self.cross_seg[ci * self.num_clusters as usize + cj],
                _ => self.down_seg[dst],
            }
        }
    }

    /// Whether static faults disconnected the (src, dst) pair: some
    /// segment of its deterministic route found no fault-free Up*/Down*
    /// path at build time. `false` for every pair of a zero-fault build
    /// (one branch on an empty vec). The answer also covers adaptive
    /// routing — adaptive ascents explore a subset of the same path space
    /// the fault-aware search exhausts.
    #[inline]
    pub fn is_unreachable(&self, src: usize, dst: usize) -> bool {
        if self.dead_segs.is_empty() {
            return false;
        }
        let r = self.route_ref(src, dst);
        let n = self.num_segments(r);
        (0..n).any(|k| {
            let s = self.seg_id(r, k);
            self.dead_segs[s as usize]
        })
    }

    /// Metadata of segment `k` (0-based) of route `r`.
    #[inline]
    pub fn seg_meta(&self, r: RouteRef, k: u32) -> SegMeta {
        let s = self.seg_id(r, k) as usize;
        let start = self.seg_off[s];
        SegMeta {
            start,
            len: self.seg_off[s + 1] - start,
            sum_t: self.seg_sum[s],
            bottleneck_t: self.seg_bot[s],
        }
    }

    /// The flat channel-id storage backing every interned segment; index
    /// with `SegMeta::start .. start + len`.
    #[inline]
    pub fn chans(&self) -> &[u32] {
        &self.chans
    }

    /// The channels of one interned segment, in traversal order.
    #[inline]
    pub fn segment_channels(&self, m: SegMeta) -> &[u32] {
        &self.chans[m.start as usize..(m.start + m.len) as usize]
    }

    /// Number of interned segments (including empty diagonal placeholders).
    pub fn num_interned_segments(&self) -> usize {
        self.seg_sum.len()
    }
}

/// Reusable buffers for building one message's adaptive route without
/// allocating: the worm engine owns one per simulator and the capacity is
/// retained across messages.
#[derive(Debug, Default)]
pub struct AdaptiveScratch {
    digits: Vec<u32>,
    route: Vec<ChannelId>,
}

/// A [`SystemSpec`] materialised for simulation.
#[derive(Debug)]
pub struct BuiltSystem {
    spec: SystemSpec,
    icn1: Vec<Graph>,
    ecn1: Vec<Graph>,
    icn2: Graph,
    icn1_off: Vec<u32>,
    ecn1_off: Vec<u32>,
    icn2_off: u32,
    /// Per-flit transfer time of every global channel.
    chan_time: Vec<f64>,
    /// Flat-node → (cluster, local) lookup.
    node_cluster: Vec<u32>,
    node_local: Vec<u32>,
    /// Up*/Down* ascent policy used for every route.
    policy: AscentPolicy,
    /// Every deterministic route, interned once (see [`RouteTable`]).
    routes: RouteTable,
    /// Static (build-time) fault mask: one bool per global channel, both
    /// directions of a failed link set. Empty for zero-fault builds.
    failed: Vec<bool>,
}

impl BuiltSystem {
    /// Builds all network graphs and the global channel table for messages
    /// whose flits are `flit_bytes` long, using the default (balanced)
    /// ascent policy.
    pub fn build(spec: &SystemSpec, flit_bytes: f64) -> Self {
        Self::build_with_policy(spec, flit_bytes, AscentPolicy::default())
    }

    /// [`BuiltSystem::build`] with an explicit Up*/Down* ascent policy
    /// (see the `ablation_routing` experiment).
    ///
    /// # Panics
    /// A zero-fault build of a spec that passed [`SystemSpec`] validation
    /// cannot fail; any residual error panics with its typed message.
    pub fn build_with_policy(spec: &SystemSpec, flit_bytes: f64, policy: AscentPolicy) -> Self {
        Self::try_build_with(spec, flit_bytes, policy, &FaultSchedule::default())
            .unwrap_or_else(|e| panic!("zero-fault build of a validated spec failed: {e}"))
    }

    /// Fallible form of [`BuiltSystem::build`] with the default policy and
    /// no faults.
    pub fn try_build(spec: &SystemSpec, flit_bytes: f64) -> Result<Self, BuildError> {
        Self::try_build_with(
            spec,
            flit_bytes,
            AscentPolicy::default(),
            &FaultSchedule::default(),
        )
    }

    /// The full build: explicit ascent policy plus a fault schedule whose
    /// *static* part (`links`, `link_fraction`) is applied here — failed
    /// links are masked out of every interned route (fault-aware Up*/Down*
    /// reroute), disconnected pairs are recorded for
    /// [`RouteTable::is_unreachable`], and the resulting channel mask is
    /// exposed through [`BuiltSystem::static_failed`] for the engines.
    /// Timed `events` are range-checked here but applied by the engines.
    ///
    /// With an inert schedule this is byte-for-byte the historical build.
    pub fn try_build_with(
        spec: &SystemSpec,
        flit_bytes: f64,
        policy: AscentPolicy,
        faults: &FaultSchedule,
    ) -> Result<Self, BuildError> {
        let c = spec.num_clusters();
        let mut icn1 = Vec::with_capacity(c);
        let mut ecn1 = Vec::with_capacity(c);
        let mut icn1_off = Vec::with_capacity(c);
        let mut ecn1_off = Vec::with_capacity(c);
        let mut chan_time: Vec<f64> = Vec::new();

        let push_graph = |graph: &Graph, t_cn: f64, t_cs: f64, chan_time: &mut Vec<f64>| {
            let off = chan_time.len() as u32;
            for i in 0..graph.num_channels() {
                let kind = graph.channel(cocnet_topology::ChannelId(i as u32)).kind;
                chan_time.push(match kind {
                    ChannelKind::NodeToSwitch | ChannelKind::SwitchToNode => t_cn,
                    ChannelKind::SwitchToSwitch => t_cs,
                });
            }
            off
        };

        for i in 0..c {
            let tree = spec.cluster_tree(i);
            let g = Graph::build(tree);
            let net = &spec.clusters[i].icn1;
            icn1_off.push(push_graph(
                &g,
                net.t_cn(flit_bytes),
                net.t_cs(flit_bytes),
                &mut chan_time,
            ));
            icn1.push(g);
        }
        for i in 0..c {
            let tree = spec.cluster_tree(i);
            let g = Graph::build(tree);
            let net = &spec.clusters[i].ecn1;
            ecn1_off.push(push_graph(
                &g,
                net.t_cn(flit_bytes),
                net.t_cs(flit_bytes),
                &mut chan_time,
            ));
            ecn1.push(g);
        }
        let icn2_tree: MPortNTree = spec.icn2_tree();
        let icn2 = Graph::build(icn2_tree);
        let icn2_off = push_graph(
            &icn2,
            spec.icn2.t_cn(flit_bytes),
            spec.icn2.t_cs(flit_bytes),
            &mut chan_time,
        );

        let total = spec.total_nodes();
        let mut node_cluster = Vec::with_capacity(total);
        let mut node_local = Vec::with_capacity(total);
        for i in 0..c {
            for l in 0..spec.cluster_nodes(i) {
                node_cluster.push(i as u32);
                node_local.push(l as u32);
            }
        }

        // Each graph holds 2·n·N channels — an even count — so every
        // network offset is even and the global reverse of channel `g` is
        // `g ^ 1`, exactly as within one graph. The fault mask relies on it.
        debug_assert!(
            icn1_off.iter().chain(ecn1_off.iter()).all(|&o| o % 2 == 0) && icn2_off % 2 == 0,
            "network offsets must be even for global reverse = id ^ 1"
        );

        let num_channels = chan_time.len();
        if !(faults.link_fraction.is_finite() && (0.0..=1.0).contains(&faults.link_fraction)) {
            return Err(BuildError::BadFaultFraction {
                fraction: faults.link_fraction,
            });
        }
        for &l in &faults.links {
            if l as usize >= num_channels {
                return Err(BuildError::FaultLinkOutOfRange {
                    link: l,
                    num_channels,
                });
            }
        }
        for e in &faults.events {
            if e.link as usize >= num_channels {
                return Err(BuildError::FaultLinkOutOfRange {
                    link: e.link,
                    num_channels,
                });
            }
        }

        // Static fault mask: explicit links plus the first ⌊fraction·L⌋
        // links of one fixed SplitMix64 Fisher–Yates permutation — nested
        // across fractions, so degradation sweeps decline monotonically.
        let mut failed: Vec<bool> = Vec::new();
        if !faults.links.is_empty() || faults.link_fraction > 0.0 {
            failed = vec![false; num_channels];
            for &l in &faults.links {
                failed[l as usize] = true;
                failed[(l ^ 1) as usize] = true;
            }
            if faults.link_fraction > 0.0 {
                let nlinks = num_channels / 2;
                let mut perm: Vec<u32> = (0..nlinks as u32).collect();
                let mut state = faults.fault_seed;
                for i in (1..nlinks).rev() {
                    let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                    perm.swap(i, j);
                }
                let take = ((faults.link_fraction * nlinks as f64).floor() as usize).min(nlinks);
                for &l in &perm[..take] {
                    failed[2 * l as usize] = true;
                    failed[2 * l as usize + 1] = true;
                }
            }
        }

        // Project the global mask into per-graph fault sets for the
        // fault-aware route interning.
        let mut gf = GraphFaults::empty(c);
        for g in (0..failed.len()).step_by(2) {
            if !failed[g] {
                continue;
            }
            let g32 = g as u32;
            if g32 >= icn2_off {
                gf.icn2.fail_link(ChannelId(g32 - icn2_off));
            } else if let Some(i) = (0..c).rev().find(|&i| g32 >= ecn1_off[i]) {
                gf.ecn1[i].fail_link(ChannelId(g32 - ecn1_off[i]));
            } else {
                let i = (0..c)
                    .rev()
                    .find(|&i| g32 >= icn1_off[i])
                    .expect("channel below every offset");
                gf.icn1[i].fail_link(ChannelId(g32 - icn1_off[i]));
            }
        }

        let cluster_nodes: Vec<u32> = (0..c).map(|i| spec.cluster_nodes(i) as u32).collect();
        let routes = RouteTable::build(
            &icn1,
            &ecn1,
            &icn2,
            &icn1_off,
            &ecn1_off,
            icn2_off,
            &chan_time,
            &node_cluster,
            &node_local,
            &cluster_nodes,
            policy,
            &gf,
        )?;

        Ok(Self {
            spec: spec.clone(),
            icn1,
            ecn1,
            icn2,
            icn1_off,
            ecn1_off,
            icn2_off,
            chan_time,
            node_cluster,
            node_local,
            policy,
            routes,
            failed,
        })
    }

    /// The static (build-time) failed-channel mask: one bool per global
    /// channel, both directions of a failed link set. Empty — no mask at
    /// all — for zero-fault builds; the engines seed their live fault
    /// state from it.
    pub fn static_failed(&self) -> &[bool] {
        &self.failed
    }

    /// The underlying system specification.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The interned deterministic route table (built once per system).
    #[inline]
    pub fn route_table(&self) -> &RouteTable {
        &self.routes
    }

    /// Total number of global channels.
    pub fn num_channels(&self) -> usize {
        self.chan_time.len()
    }

    /// Per-flit transfer time of global channel `c`.
    pub fn chan_time(&self, c: u32) -> f64 {
        self.chan_time[c as usize]
    }

    /// Total number of processing nodes (flat indexing).
    pub fn total_nodes(&self) -> usize {
        self.node_cluster.len()
    }

    /// Cluster owning flat node `f`.
    pub fn cluster_of(&self, f: usize) -> usize {
        self.node_cluster[f] as usize
    }

    /// Cluster owning a global channel (`None` for ICN2 fabric channels).
    /// Every ICN1 and ECN1 channel belongs to exactly one cluster; this is
    /// the sharded engine's channel → shard partition map.
    pub fn channel_cluster(&self, chan: u32) -> Option<usize> {
        match self.network_of(chan) {
            ("ICN2", _) => None,
            (_, i) => Some(i),
        }
    }

    /// Which network a global channel belongs to, for diagnostics:
    /// `("ICN1", i)`, `("ECN1", i)` or `("ICN2", 0)`.
    pub fn network_of(&self, chan: u32) -> (&'static str, usize) {
        if chan >= self.icn2_off {
            return ("ICN2", 0);
        }
        for i in (0..self.ecn1_off.len()).rev() {
            if chan >= self.ecn1_off[i] {
                return ("ECN1", i);
            }
        }
        for i in (0..self.icn1_off.len()).rev() {
            if chan >= self.icn1_off[i] {
                return ("ICN1", i);
            }
        }
        unreachable!("channel id out of range")
    }

    /// Human-readable description of a global channel (network, endpoints).
    pub fn describe_channel(&self, chan: u32) -> String {
        let (net, i) = self.network_of(chan);
        let (graph, off) = match net {
            "ICN1" => (&self.icn1[i], self.icn1_off[i]),
            "ECN1" => (&self.ecn1[i], self.ecn1_off[i]),
            _ => (&self.icn2, self.icn2_off),
        };
        let desc = graph.channel(cocnet_topology::ChannelId(chan - off));
        match net {
            "ICN2" => format!("ICN2 {:?} -> {:?}", desc.from, desc.to),
            _ => format!("{net}({i}) {:?} -> {:?}", desc.from, desc.to),
        }
    }

    /// Builds the wormhole segments for a message from flat node `src` to
    /// flat node `dst`.
    ///
    /// * intra-cluster: one segment through ICN1(i);
    /// * inter-cluster: ECN1(i) ascent → ICN2 crossing → ECN1(j) descent,
    ///   three segments separated by the concentrator and dispatcher
    ///   buffers. The ICN2 segment's injection channel *is* the
    ///   concentrator queue; the ECN1(j) segment's first channel is the
    ///   dispatcher queue.
    ///
    /// # Panics
    /// Panics if `src == dst` (patterns never produce self-traffic).
    pub fn segments_for(&self, src: usize, dst: usize) -> Vec<Segment> {
        assert_ne!(src, dst, "self-traffic is excluded by assumption 2");
        let (ci, li) = (
            self.node_cluster[src] as usize,
            self.node_local[src] as usize,
        );
        let (cj, lj) = (
            self.node_cluster[dst] as usize,
            self.node_local[dst] as usize,
        );
        if ci == cj {
            let route = self.icn1[ci]
                .route_with_policy(li, lj, self.policy)
                .expect("valid local ids");
            let off = self.icn1_off[ci];
            return vec![Segment {
                chans: route.channels.iter().map(|c| off + c.0).collect(),
            }];
        }
        let up = self.ecn1[ci]
            .route_to_root_with_policy(li, self.policy)
            .expect("valid local id");
        let off_up = self.ecn1_off[ci];
        let cross = self
            .icn2
            .route_with_policy(ci, cj, self.policy)
            .expect("valid cluster ids");
        let down = self.ecn1[cj]
            .route_from_root_with_policy(lj, self.policy)
            .expect("valid local id");
        let off_down = self.ecn1_off[cj];
        vec![
            Segment {
                chans: up.channels.iter().map(|c| off_up + c.0).collect(),
            },
            Segment {
                chans: cross.channels.iter().map(|c| self.icn2_off + c.0).collect(),
            },
            Segment {
                chans: down.channels.iter().map(|c| off_down + c.0).collect(),
            },
        ]
    }
}

impl BuiltSystem {
    /// Builds one message's adaptive route directly into the caller's
    /// arena — the allocation-free form of
    /// [`BuiltSystem::segments_for_adaptive`], used by the worm engine's
    /// hot path. `out` is cleared and filled with global channel ids; the
    /// returned metas index into `out` and carry the same precomputed
    /// `sum_t`/`bottleneck_t` the interned table provides for
    /// deterministic routes.
    ///
    /// Draws exactly the same random digits, in the same order, as
    /// [`BuiltSystem::segments_for_adaptive`], so simulations are
    /// bit-identical whichever form builds the route.
    pub fn adaptive_route_into<R: Rng + ?Sized>(
        &self,
        src: usize,
        dst: usize,
        rng: &mut R,
        scratch: &mut AdaptiveScratch,
        out: &mut Vec<u32>,
    ) -> ([SegMeta; 3], u8) {
        self.adaptive_draw_digits(src, dst, rng, &mut scratch.digits);
        let digits = std::mem::take(&mut scratch.digits);
        let r = self.adaptive_route_from_digits(src, dst, &digits, scratch, out);
        scratch.digits = digits;
        r
    }

    /// How many random ascent digits an adaptive route from `src` to
    /// `dst` consumes: `(up, cross)` — `n_i − 1` free ascent choices in
    /// the first network, plus `n_c − 1` in ICN2 for inter-cluster pairs.
    pub fn adaptive_digit_counts(&self, src: usize, dst: usize) -> (u32, u32) {
        let ci = self.node_cluster[src] as usize;
        let cj = self.node_cluster[dst] as usize;
        let n_i = self.spec.clusters[ci].n.saturating_sub(1);
        if ci == cj {
            (n_i, 0)
        } else {
            let n_c = self.spec.icn2_height().expect("validated");
            (n_i, n_c.saturating_sub(1))
        }
    }

    /// Draws an adaptive route's ascent digits into `digits` — exactly
    /// the same count and order [`BuiltSystem::adaptive_route_into`]
    /// consumes, so separating the draw from the route construction
    /// (e.g. to consult a memo cache between the two) never perturbs the
    /// RNG stream.
    pub fn adaptive_draw_digits<R: Rng + ?Sized>(
        &self,
        src: usize,
        dst: usize,
        rng: &mut R,
        digits: &mut Vec<u32>,
    ) {
        let k = self.spec.m / 2;
        let (up, cross) = self.adaptive_digit_counts(src, dst);
        digits.clear();
        for _ in 0..up + cross {
            digits.push(rng.random_range(0..k));
        }
    }

    /// The deterministic tail of [`BuiltSystem::adaptive_route_into`]:
    /// materialises the route selected by pre-drawn ascent `digits`
    /// (`up` digits first, then `cross`, as laid out by
    /// [`BuiltSystem::adaptive_draw_digits`]). Identical digits produce
    /// bit-identical channel lists and segment metadata.
    pub fn adaptive_route_from_digits(
        &self,
        src: usize,
        dst: usize,
        digits: &[u32],
        scratch: &mut AdaptiveScratch,
        out: &mut Vec<u32>,
    ) -> ([SegMeta; 3], u8) {
        assert_ne!(src, dst, "self-traffic is excluded by assumption 2");
        out.clear();
        let (ci, li) = (
            self.node_cluster[src] as usize,
            self.node_local[src] as usize,
        );
        let (cj, lj) = (
            self.node_cluster[dst] as usize,
            self.node_local[dst] as usize,
        );
        let mut metas = [SegMeta::default(); 3];
        let append = |route: &[ChannelId], off: u32, out: &mut Vec<u32>| -> SegMeta {
            let start = out.len() as u32;
            let mut sum = 0.0;
            let mut bot = 0.0f64;
            for c in route {
                let g = off + c.0;
                let t = self.chan_time[g as usize];
                sum += t;
                bot = bot.max(t);
                out.push(g);
            }
            SegMeta {
                start,
                len: out.len() as u32 - start,
                sum_t: sum,
                bottleneck_t: bot,
            }
        };
        if ci == cj {
            self.icn1[ci]
                .route_adaptive_into(li, lj, digits, &mut scratch.route)
                .expect("valid local ids");
            metas[0] = append(&scratch.route, self.icn1_off[ci], out);
            return (metas, 1);
        }
        let n_up = self.spec.clusters[ci].n.saturating_sub(1) as usize;
        self.ecn1[ci]
            .route_to_root_adaptive_into(li, &digits[..n_up], &mut scratch.route)
            .expect("valid local id");
        metas[0] = append(&scratch.route, self.ecn1_off[ci], out);
        self.icn2
            .route_adaptive_into(ci, cj, &digits[n_up..], &mut scratch.route)
            .expect("valid cluster ids");
        metas[1] = append(&scratch.route, self.icn2_off, out);
        self.ecn1[cj]
            .route_from_root_into(lj, self.policy, &mut scratch.route)
            .expect("valid local id");
        metas[2] = append(&scratch.route, self.ecn1_off[cj], out);
        (metas, 3)
    }

    /// The smallest single-channel crossing time on the inter-cluster
    /// fabric (every ECN1 and ICN2 channel) — the concrete-channel form
    /// of [`SystemSpec::intercluster_lookahead`], taken over the built
    /// channel table. This is the sharded engine's conservative sync
    /// lookahead: a message emitted into the inter-cluster fabric at `t`
    /// cannot request a channel on another shard before `t + Δ`.
    pub fn min_intercluster_channel_time(&self) -> f64 {
        // Channel numbering is all ICN1s, then all ECN1s, then ICN2, so
        // everything at or past the first ECN1 offset is boundary fabric.
        let from = self.ecn1_off.first().copied().unwrap_or(self.icn2_off) as usize;
        self.chan_time[from..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Like [`BuiltSystem::segments_for`], but with per-message random
    /// ascent digits — the oblivious-adaptive routing variant (paper ref
    /// \[7\] contrasts adaptive wormhole routing with the deterministic
    /// scheme the model assumes). Descent stays destination-determined.
    pub fn segments_for_adaptive<R: Rng + ?Sized>(
        &self,
        src: usize,
        dst: usize,
        rng: &mut R,
    ) -> Vec<Segment> {
        assert_ne!(src, dst, "self-traffic is excluded by assumption 2");
        let k = self.spec.m / 2;
        let mut digits =
            |len: u32| -> Vec<u32> { (0..len).map(|_| rng.random_range(0..k)).collect() };
        let (ci, li) = (
            self.node_cluster[src] as usize,
            self.node_local[src] as usize,
        );
        let (cj, lj) = (
            self.node_cluster[dst] as usize,
            self.node_local[dst] as usize,
        );
        if ci == cj {
            let n = self.spec.clusters[ci].n;
            let route = self.icn1[ci]
                .route_adaptive(li, lj, &digits(n.saturating_sub(1)))
                .expect("valid local ids");
            let off = self.icn1_off[ci];
            return vec![Segment {
                chans: route.channels.iter().map(|c| off + c.0).collect(),
            }];
        }
        let n_i = self.spec.clusters[ci].n;
        let n_c = self.spec.icn2_height().expect("validated");
        let up = self.ecn1[ci]
            .route_to_root_adaptive(li, &digits(n_i.saturating_sub(1)))
            .expect("valid local id");
        let off_up = self.ecn1_off[ci];
        let cross = self
            .icn2
            .route_adaptive(ci, cj, &digits(n_c.saturating_sub(1)))
            .expect("valid cluster ids");
        let down = self.ecn1[cj]
            .route_from_root_with_policy(lj, self.policy)
            .expect("valid local id");
        let off_down = self.ecn1_off[cj];
        vec![
            Segment {
                chans: up.channels.iter().map(|c| off_up + c.0).collect(),
            },
            Segment {
                chans: cross.channels.iter().map(|c| self.icn2_off + c.0).collect(),
            },
            Segment {
                chans: down.channels.iter().map(|c| off_down + c.0).collect(),
            },
        ]
    }
}

/// One materialised adaptive route, shared through
/// [`AdaptiveRouteCache`]: all segments' global channel ids concatenated,
/// plus the same precomputed per-segment metadata the per-slot arena
/// carries.
#[derive(Debug, Clone)]
pub struct CachedRoute {
    /// Global channel ids, segments concatenated ([`SegMeta::start`]
    /// indexes into this).
    pub chans: Vec<u32>,
    /// Per-segment metadata (entries past `nsegs` are default-zero).
    pub segs: [SegMeta; 3],
    /// Segment count: 1 intra-cluster, 3 inter-cluster.
    pub nsegs: u8,
}

/// Memoized adaptive routes, keyed by `(src·N + dst, packed ascent
/// digits)`.
///
/// Adaptive routing is fully determined by the source, the destination
/// and the random ascent digits — the descent is destination-determined —
/// so repeated (pair, digits) combinations need not re-walk the graph's
/// per-hop switch maps. The cache draws exactly the digits the uncached
/// path would ([`BuiltSystem::adaptive_draw_digits`]), so cached and
/// uncached runs consume the identical RNG stream and produce
/// bit-identical routes. Entries are never evicted: the key space per
/// run is bounded by (pairs × kᵈⁱᵍⁱᵗˢ) and in practice by the far
/// smaller set of combinations the traffic pattern actually draws.
///
/// The sharded engine additionally uses the arena as its shared
/// read-only route store: a message carries a cache index instead of a
/// per-slot copy, so routes survive cross-shard handoffs.
#[derive(Debug, Default)]
pub struct AdaptiveRouteCache {
    map: std::collections::HashMap<(u32, u64), u32>,
    routes: Vec<CachedRoute>,
}

impl AdaptiveRouteCache {
    /// Number of distinct routes materialised so far.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no route has been materialised yet.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The route behind an index returned by
    /// [`AdaptiveRouteCache::route_idx`].
    pub fn route(&self, idx: u32) -> &CachedRoute {
        &self.routes[idx as usize]
    }

    /// Draws the ascent digits for one adaptive message (consuming the
    /// RNG exactly as [`BuiltSystem::adaptive_route_into`] would) and
    /// returns the arena index of the selected route, materialising it
    /// on first use.
    pub fn route_idx<R: Rng + ?Sized>(
        &mut self,
        built: &BuiltSystem,
        src: usize,
        dst: usize,
        rng: &mut R,
        scratch: &mut AdaptiveScratch,
    ) -> u32 {
        built.adaptive_draw_digits(src, dst, rng, &mut scratch.digits);
        let digits = std::mem::take(&mut scratch.digits);
        // Pack the digits into one base-2^bits key. Every digit is < k,
        // so ceil(log2 k) bits each are injective; k = 1 packs to the
        // single code 0, which is exact (all-zero digits, one route).
        let k = built.spec().m / 2;
        let bits = 32 - (k.max(1) - 1).leading_zeros();
        let key = if digits.len() as u32 * bits <= 64 {
            let mut code = 0u64;
            for &d in &digits {
                code = (code << bits) | d as u64;
            }
            Some(((src * built.total_nodes() + dst) as u32, code))
        } else {
            // Unpackable digit strings (absurdly deep trees): build
            // uncached — still arena-backed so sharding works.
            None
        };
        let idx = match key.and_then(|k| self.map.get(&k).copied()) {
            Some(idx) => idx,
            None => {
                let mut chans = Vec::new();
                let (segs, nsegs) =
                    built.adaptive_route_from_digits(src, dst, &digits, scratch, &mut chans);
                let idx = self.routes.len() as u32;
                self.routes.push(CachedRoute { chans, segs, nsegs });
                if let Some(k) = key {
                    self.map.insert(k, idx);
                }
                idx
            }
        };
        scratch.digits = digits;
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn spec() -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net1).unwrap()
    }

    #[test]
    fn channel_count_covers_all_networks() {
        let b = BuiltSystem::build(&spec(), 256.0);
        // ICN1 and ECN1 per cluster: 2·n·N directed channels each
        // (clusters: two with n=1,N=4 and two with n=2,N=8); ICN2: 2·n_c·C.
        let per_network: usize = 2 * (2 * 4) + 2 * (2 * 2 * 8);
        let expected = 2 * per_network + 2 * 4;
        assert_eq!(b.num_channels(), expected);
        assert_eq!(b.total_nodes(), 24);
    }

    #[test]
    fn intra_message_is_one_segment() {
        let b = BuiltSystem::build(&spec(), 256.0);
        let segs = b.segments_for(8, 9); // both in cluster 2
        assert_eq!(segs.len(), 1);
        assert!(!segs[0].chans.is_empty());
        assert_eq!(segs[0].chans.len() % 2, 0, "2h channels");
    }

    #[test]
    fn inter_message_is_three_segments() {
        let b = BuiltSystem::build(&spec(), 256.0);
        let segs = b.segments_for(0, 23); // cluster 0 -> cluster 3
        assert_eq!(segs.len(), 3);
        // ECN1(0) ascent: n_0 = 1 channel; ICN2: 2l; ECN1(3) descent: n_3 = 2.
        assert_eq!(segs[0].chans.len(), 1);
        assert_eq!(segs[1].chans.len() % 2, 0);
        assert_eq!(segs[2].chans.len(), 2);
    }

    #[test]
    fn segments_use_disjoint_channel_ranges() {
        let b = BuiltSystem::build(&spec(), 256.0);
        let segs = b.segments_for(0, 23);
        let all: Vec<u32> = segs.iter().flat_map(|s| s.chans.iter().copied()).collect();
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len(), "no channel repeats on a path");
        for &c in &all {
            assert!((c as usize) < b.num_channels());
        }
    }

    #[test]
    fn channel_times_match_network_characteristics() {
        let b = BuiltSystem::build(&spec(), 256.0);
        // Intra path channels use ICN1 times (net1).
        let segs = b.segments_for(8, 9);
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let first = segs[0].chans[0];
        assert!((b.chan_time(first) - net1.t_cn(256.0)).abs() < 1e-12);
        // Inter first segment uses ECN1 times (net2).
        let segs = b.segments_for(0, 23);
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        assert!((b.chan_time(segs[0].chans[0]) - net2.t_cn(256.0)).abs() < 1e-12);
    }

    #[test]
    fn adaptive_segments_share_shape_with_deterministic() {
        use rand::SeedableRng;
        let b = BuiltSystem::build(&spec(), 256.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for (src, dst) in [(0usize, 23usize), (8, 9), (4, 12)] {
            let det = b.segments_for(src, dst);
            let ada = b.segments_for_adaptive(src, dst, &mut rng);
            assert_eq!(det.len(), ada.len());
            for (d, a) in det.iter().zip(&ada) {
                assert_eq!(d.chans.len(), a.chans.len());
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn self_traffic_rejected() {
        let b = BuiltSystem::build(&spec(), 256.0);
        b.segments_for(3, 3);
    }

    #[test]
    fn route_table_matches_segments_for_exhaustively() {
        // The interned table must reproduce the legacy per-message route
        // construction exactly — ids, order, and bitwise sum/bottleneck —
        // for every (src, dst) pair of a heterogeneous system.
        let b = BuiltSystem::build(&spec(), 256.0);
        let rt = b.route_table();
        for src in 0..b.total_nodes() {
            for dst in 0..b.total_nodes() {
                if src == dst {
                    continue;
                }
                let legacy = b.segments_for(src, dst);
                let r = rt.route_ref(src, dst);
                assert_eq!(rt.num_segments(r) as usize, legacy.len(), "{src}->{dst}");
                for (k, seg) in legacy.iter().enumerate() {
                    let m = rt.seg_meta(r, k as u32);
                    assert_eq!(
                        rt.segment_channels(m),
                        seg.chans.as_slice(),
                        "{src}->{dst} segment {k}"
                    );
                    let mut sum = 0.0;
                    let mut bot = 0.0f64;
                    for &c in &seg.chans {
                        let t = b.chan_time(c);
                        sum += t;
                        bot = bot.max(t);
                    }
                    assert_eq!(sum.to_bits(), m.sum_t.to_bits(), "{src}->{dst} sum");
                    assert_eq!(bot.to_bits(), m.bottleneck_t.to_bits(), "{src}->{dst} bot");
                }
            }
        }
    }

    #[test]
    fn adaptive_arena_route_matches_legacy_draws() {
        // Same seed → the arena builder must consume the RNG identically
        // and produce the same channels and bitwise segment metrics as the
        // allocating reference.
        use rand::SeedableRng;
        let b = BuiltSystem::build(&spec(), 256.0);
        let mut rng_legacy = rand::rngs::StdRng::seed_from_u64(42);
        let mut rng_arena = rand::rngs::StdRng::seed_from_u64(42);
        let mut scratch = AdaptiveScratch::default();
        let mut arena = Vec::new();
        for (src, dst) in [(0usize, 23usize), (8, 9), (4, 12), (23, 0), (10, 11)] {
            let legacy = b.segments_for_adaptive(src, dst, &mut rng_legacy);
            let (metas, n) =
                b.adaptive_route_into(src, dst, &mut rng_arena, &mut scratch, &mut arena);
            assert_eq!(n as usize, legacy.len(), "{src}->{dst}");
            for (k, seg) in legacy.iter().enumerate() {
                let m = metas[k];
                let got = &arena[m.start as usize..(m.start + m.len) as usize];
                assert_eq!(got, seg.chans.as_slice(), "{src}->{dst} segment {k}");
                let mut sum = 0.0;
                let mut bot = 0.0f64;
                for &c in &seg.chans {
                    let t = b.chan_time(c);
                    sum += t;
                    bot = bot.max(t);
                }
                assert_eq!(sum.to_bits(), m.sum_t.to_bits());
                assert_eq!(bot.to_bits(), m.bottleneck_t.to_bits());
            }
        }
    }

    #[test]
    fn faulted_build_is_identical_when_inert() {
        let b0 = BuiltSystem::build(&spec(), 256.0);
        let b1 = BuiltSystem::try_build_with(
            &spec(),
            256.0,
            AscentPolicy::default(),
            &Default::default(),
        )
        .unwrap();
        assert!(b1.static_failed().is_empty());
        let (r0, r1) = (b0.route_table(), b1.route_table());
        for src in 0..b0.total_nodes() {
            for dst in 0..b0.total_nodes() {
                if src == dst {
                    continue;
                }
                assert!(!r1.is_unreachable(src, dst));
                let (a, b) = (r0.route_ref(src, dst), r1.route_ref(src, dst));
                for k in 0..r0.num_segments(a) {
                    assert_eq!(
                        r0.segment_channels(r0.seg_meta(a, k)),
                        r1.segment_channels(r1.seg_meta(b, k))
                    );
                }
            }
        }
    }

    #[test]
    fn faulted_build_reroutes_or_marks_unreachable() {
        // Fail one intra-cluster injection link: the source node of that
        // link cannot reach its cluster peers (injection has no alternate),
        // while everything else stays routable or reroutes.
        let s = spec();
        let b0 = BuiltSystem::build(&s, 256.0);
        // Node 8 is in cluster 2 (n=2): its ICN1 injection channel.
        let inj = b0.segments_for(8, 9)[0].chans[0];
        let faults = FaultSchedule {
            links: vec![inj],
            ..Default::default()
        };
        let b = BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &faults).unwrap();
        assert!(b.static_failed()[inj as usize]);
        assert!(b.static_failed()[(inj ^ 1) as usize], "tandem reverse");
        let rt = b.route_table();
        assert!(rt.is_unreachable(8, 9));
        assert!(rt.is_unreachable(8, 15));
        assert!(rt.is_unreachable(9, 8), "ejection = reverse of injection");
        assert!(!rt.is_unreachable(9, 10));
        // Inter-cluster routes of node 8 use the ECN1 network — unaffected.
        assert!(!rt.is_unreachable(8, 0));
    }

    #[test]
    fn faulted_build_reroutes_around_switch_fabric_links() {
        // Fail one switch-to-switch link on an intra route of the n=2
        // cluster: the pair must still be reachable via the alternate
        // ascent, and the rerouted segment must avoid the failed channels.
        let s = spec();
        let b0 = BuiltSystem::build(&s, 256.0);
        let seg = &b0.segments_for(8, 15)[0];
        assert!(seg.chans.len() >= 4, "need a switch-fabric hop");
        let up = seg.chans[1]; // first switch-to-switch channel
        let faults = FaultSchedule {
            links: vec![up],
            ..Default::default()
        };
        let b = BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &faults).unwrap();
        let rt = b.route_table();
        assert!(!rt.is_unreachable(8, 15));
        let r = rt.route_ref(8, 15);
        let chans = rt.segment_channels(rt.seg_meta(r, 0));
        assert!(!chans.contains(&up));
        assert!(!chans.contains(&(up ^ 1)));
        assert!(!chans.is_empty());
    }

    #[test]
    fn link_fraction_sets_are_nested_and_full_fraction_kills_everything() {
        let s = spec();
        let frac = |f: f64| FaultSchedule {
            link_fraction: f,
            ..Default::default()
        };
        let masks: Vec<Vec<bool>> = [0.1, 0.3, 0.7, 1.0]
            .iter()
            .map(|&f| {
                BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &frac(f))
                    .unwrap()
                    .static_failed()
                    .to_vec()
            })
            .collect();
        for w in masks.windows(2) {
            for (a, b) in w[0].iter().zip(&w[1]) {
                assert!(!a || *b, "fault sets must be nested across fractions");
            }
        }
        assert!(masks[3].iter().all(|&x| x), "fraction 1.0 fails every link");
        let full =
            BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &frac(1.0)).unwrap();
        assert!(full.route_table().is_unreachable(0, 1));
        assert!(full.route_table().is_unreachable(0, 23));
    }

    #[test]
    fn fault_validation_rejects_bad_inputs() {
        let s = spec();
        let nchan = BuiltSystem::build(&s, 256.0).num_channels();
        let bad_link = FaultSchedule {
            links: vec![nchan as u32],
            ..Default::default()
        };
        assert!(matches!(
            BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &bad_link),
            Err(BuildError::FaultLinkOutOfRange { .. })
        ));
        assert!(validate_faults(&s, &bad_link)
            .unwrap_err()
            .contains("out of range"));
        let bad_frac = FaultSchedule {
            link_fraction: 1.5,
            ..Default::default()
        };
        assert!(matches!(
            BuiltSystem::try_build_with(&s, 256.0, AscentPolicy::default(), &bad_frac),
            Err(BuildError::BadFaultFraction { .. })
        ));
        assert!(validate_faults(&s, &bad_frac).is_err());
        let bad_event = FaultSchedule {
            events: vec![crate::config::FaultEvent {
                time: -1.0,
                link: 0,
                action: crate::config::FaultAction::Fail,
            }],
            ..Default::default()
        };
        assert!(validate_faults(&s, &bad_event)
            .unwrap_err()
            .contains("time"));
        assert!(validate_faults(&s, &FaultSchedule::default()).is_ok());
    }

    #[test]
    fn expected_channels_matches_built_system() {
        let s = spec();
        assert_eq!(
            expected_channels(&s),
            BuiltSystem::build(&s, 256.0).num_channels()
        );
    }

    #[test]
    fn cluster_of_matches_spec_layout() {
        let b = BuiltSystem::build(&spec(), 256.0);
        assert_eq!(b.cluster_of(0), 0);
        assert_eq!(b.cluster_of(7), 1);
        assert_eq!(b.cluster_of(8), 2);
        assert_eq!(b.cluster_of(23), 3);
    }
}
