//! Per-message event traces (worm engine).
//!
//! With `SimConfig::trace_messages > 0` the engine records every scheduling
//! decision for the first generated messages — channel requests, grants,
//! segment completions, delivery — so a run can be audited event by event.
//! The golden-trace unit tests pin the engine's exact timing semantics.

use serde::{Deserialize, Serialize};

/// One event in a message's life.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// Message created at a source node for a destination node (flat ids).
    Generated {
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
    },
    /// Header asked for a channel and found it busy (queued).
    Blocked {
        /// Global channel id.
        chan: u32,
    },
    /// Header acquired a channel.
    Acquired {
        /// Global channel id.
        chan: u32,
    },
    /// A segment's tail fully drained into the next buffer (or the sink).
    SegmentDone {
        /// Segment index.
        seg: u16,
        /// The segment's finish time.
        finish: f64,
    },
    /// Message fully delivered; `latency` is finish − generation.
    Delivered {
        /// End-to-end latency.
        latency: f64,
    },
    /// Message hit a failed channel and was dropped for retransmission
    /// (or written off, if its attempt budget was exhausted).
    Dropped {
        /// The failed channel the header ran into.
        chan: u32,
    },
    /// Message re-entered from its source after a retry timeout.
    Retransmitted {
        /// Transmission attempts completed so far (1 on the first retry).
        attempt: u32,
    },
}

/// A timestamped trace event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub time: f64,
    /// Event payload.
    pub kind: TraceEventKind,
}

/// The full trace of one message.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MessageTrace {
    /// Events in chronological order.
    pub events: Vec<TraceEvent>,
}

impl MessageTrace {
    /// The channels acquired, in order.
    pub fn acquired_channels(&self) -> Vec<u32> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Acquired { chan } => Some(chan),
                _ => None,
            })
            .collect()
    }

    /// The delivery latency, if the message completed.
    pub fn latency(&self) -> Option<f64> {
        self.events.iter().find_map(|e| match e.kind {
            TraceEventKind::Delivered { latency } => Some(latency),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_extract_fields() {
        let t = MessageTrace {
            events: vec![
                TraceEvent {
                    time: 0.0,
                    kind: TraceEventKind::Generated { src: 1, dst: 2 },
                },
                TraceEvent {
                    time: 0.0,
                    kind: TraceEventKind::Acquired { chan: 7 },
                },
                TraceEvent {
                    time: 1.0,
                    kind: TraceEventKind::Acquired { chan: 9 },
                },
                TraceEvent {
                    time: 2.0,
                    kind: TraceEventKind::Delivered { latency: 2.0 },
                },
            ],
        };
        assert_eq!(t.acquired_channels(), vec![7, 9]);
        assert_eq!(t.latency(), Some(2.0));
        assert_eq!(MessageTrace::default().latency(), None);
    }
}
