//! Independent replications: running the same configuration under several
//! seeds and summarising across runs.
//!
//! A single simulation's confidence interval understates the truth when
//! samples are autocorrelated (queueing systems correlate heavily near
//! saturation). The standard remedy — and what a careful reproduction of
//! the paper's figures should report — is the mean of independent
//! replications with a CI over the replication means.

use crate::build::BuiltSystem;
use crate::config::SimConfig;
use crate::engine::run_simulation_built;
use crate::results::SimResults;
use cocnet_model::Workload;
use cocnet_stats::{mean_confidence_interval, ConfidenceInterval, OnlineStats, Precision};
use cocnet_topology::SystemSpec;
use cocnet_workloads::Pattern;
use serde::{Deserialize, Serialize};

/// Summary over independent replications of one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicationSummary {
    /// Mean of the per-replication mean latencies.
    pub mean: f64,
    /// 95 % confidence interval over the replication means.
    pub ci95: ConfidenceInterval,
    /// Per-replication mean latencies, in seed order.
    pub replication_means: Vec<f64>,
    /// Number of replications that completed.
    pub completed: usize,
    /// Total replications attempted.
    pub attempted: usize,
}

impl ReplicationSummary {
    /// Whether every replication delivered its measured population.
    pub fn all_completed(&self) -> bool {
        self.completed == self.attempted
    }
}

/// Runs `replications` independent simulations (seeds `cfg.seed`,
/// `cfg.seed + 1`, …) and summarises the means of those that completed.
pub fn replicate(
    spec: &SystemSpec,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
    replications: usize,
) -> ReplicationSummary {
    assert!(replications > 0, "need at least one replication");
    let built = BuiltSystem::build(spec, wl.flit_bytes);
    let results: Vec<SimResults> = (0..replications)
        .map(|r| {
            let run_cfg = SimConfig {
                seed: cfg.seed.wrapping_add(r as u64),
                ..cfg.clone()
            };
            run_simulation_built(&built, wl, pattern, &run_cfg)
        })
        .collect();
    summarize(&results, replications)
}

/// Parallel version of [`replicate`]: the replications run concurrently on
/// the rayon pool, one independent seeded simulation each. Seeds and the
/// order of `replication_means` are identical to [`replicate`]'s, so for
/// the same `cfg` the two produce bit-identical summaries — only the
/// wall-clock differs.
pub fn replicate_parallel(
    spec: &SystemSpec,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
    replications: usize,
) -> ReplicationSummary {
    use rayon::prelude::*;
    assert!(replications > 0, "need at least one replication");
    let built = BuiltSystem::build(spec, wl.flit_bytes);
    let results: Vec<SimResults> = (0..replications)
        .into_par_iter()
        .map(|r| {
            let run_cfg = SimConfig {
                seed: cfg.seed.wrapping_add(r as u64),
                ..cfg.clone()
            };
            run_simulation_built(&built, wl, pattern, &run_cfg)
        })
        .collect();
    summarize(&results, replications)
}

/// Incremental replication merging: absorbs per-replication
/// [`SimResults`] one at a time and serves the running cross-replication
/// estimate — mean, CI at any level, convergence against a
/// [`Precision`] target — without retaining the results themselves.
///
/// Absorbing a result slice in order and calling [`summary`] is
/// bit-identical to [`summarize`] over the same slice (the batch path is
/// implemented on top of this accumulator), which is what lets the
/// adaptive runner grow a point's replication set wave by wave while
/// fixed-replication scenarios keep their historical output.
///
/// [`summary`]: ReplicationAccumulator::summary
#[derive(Debug, Clone, Default)]
pub struct ReplicationAccumulator {
    stats: OnlineStats,
    means: Vec<f64>,
    completed: usize,
    attempted: usize,
    warmup_flagged: usize,
}

impl ReplicationAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one replication's results. Incomplete runs (event-cap
    /// aborts, i.e. saturation) count as attempted but contribute no mean,
    /// exactly as in [`summarize`].
    pub fn absorb(&mut self, r: &SimResults) {
        self.attempted += 1;
        if r.warmup_audit.is_some_and(|a| a.exceeds()) {
            self.warmup_flagged += 1;
        }
        if r.completed {
            self.stats.push(r.latency.mean);
            self.means.push(r.latency.mean);
            self.completed += 1;
        }
    }

    /// Replications absorbed so far.
    pub fn attempted(&self) -> usize {
        self.attempted
    }

    /// Absorbed replications that delivered their measured population.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Whether every absorbed replication completed.
    pub fn all_completed(&self) -> bool {
        self.completed == self.attempted
    }

    /// Absorbed replications whose MSER-5 warm-up audit flagged a
    /// transient outlasting the configured warm-up (always 0 when runs
    /// were not audited).
    pub fn warmup_flagged(&self) -> usize {
        self.warmup_flagged
    }

    /// Running mean of the completed replications' mean latencies.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Confidence interval over the replication means at `level`.
    pub fn ci(&self, level: f64) -> ConfidenceInterval {
        mean_confidence_interval(&self.stats, level)
    }

    /// Whether the cross-replication estimate already satisfies `target`
    /// — the adaptive runner's stopping test.
    pub fn meets(&self, target: &Precision) -> bool {
        target.met_by(&self.ci(target.level))
    }

    /// The summary over everything absorbed so far — bit-identical to
    /// [`summarize`] over the same results in the same order.
    pub fn summary(&self) -> ReplicationSummary {
        ReplicationSummary {
            mean: self.stats.mean(),
            ci95: self.ci(0.95),
            replication_means: self.means.clone(),
            completed: self.completed,
            attempted: self.attempted,
        }
    }
}

/// Merges per-replication results into a [`ReplicationSummary`]. Kept
/// public so harnesses that schedule their own runs (e.g. the `cocnet`
/// scenario runner) can reuse the exact same summary arithmetic.
pub fn summarize(results: &[SimResults], attempted: usize) -> ReplicationSummary {
    let mut acc = ReplicationAccumulator::new();
    for r in results {
        acc.absorb(r);
    }
    let mut summary = acc.summary();
    summary.attempted = attempted;
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn spec() -> SystemSpec {
        let net = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net,
            ecn1: net,
            topology: Default::default(),
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net).unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            warmup: 300,
            measured: 3_000,
            drain: 300,
            seed: 7,
            ..SimConfig::default()
        }
    }

    #[test]
    fn replications_complete_and_differ() {
        let wl = Workload::new(2e-4, 16, 256.0).unwrap();
        let s = replicate(&spec(), &wl, Pattern::Uniform, &cfg(), 4);
        assert!(s.all_completed());
        assert_eq!(s.replication_means.len(), 4);
        // Distinct seeds produce distinct means…
        let first = s.replication_means[0];
        assert!(s.replication_means.iter().any(|&m| m != first));
        // …that all fall inside a sane band around the summary mean.
        for &m in &s.replication_means {
            assert!((m - s.mean).abs() / s.mean < 0.2);
        }
    }

    #[test]
    fn parallel_replications_bit_identical_to_serial() {
        let wl = Workload::new(2e-4, 16, 256.0).unwrap();
        let serial = replicate(&spec(), &wl, Pattern::Uniform, &cfg(), 6);
        let parallel = replicate_parallel(&spec(), &wl, Pattern::Uniform, &cfg(), 6);
        assert_eq!(serial.replication_means, parallel.replication_means);
        assert_eq!(serial.mean, parallel.mean);
        assert_eq!(serial.ci95, parallel.ci95);
        assert_eq!(serial.completed, parallel.completed);
    }

    #[test]
    fn ci_shrinks_with_more_replications() {
        let wl = Workload::new(2e-4, 16, 256.0).unwrap();
        let small = replicate(&spec(), &wl, Pattern::Uniform, &cfg(), 3);
        let large = replicate(&spec(), &wl, Pattern::Uniform, &cfg(), 8);
        assert!(large.ci95.half_width < small.ci95.half_width);
    }

    #[test]
    fn summary_counts_incomplete_runs() {
        let r_ok = SimResults::collect(
            &{
                let mut s = OnlineStats::new();
                s.push(10.0);
                s.push(12.0);
                s
            },
            &OnlineStats::new(),
            &OnlineStats::new(),
            &[],
            2,
            2,
            true,
            1.0,
            None,
            Vec::new(),
            Vec::new(),
            None,
            None,
            crate::results::EngineCounters {
                events_processed: 2,
                peak_live_msgs: 1,
                ..Default::default()
            },
        );
        let mut r_bad = r_ok.clone();
        r_bad.completed = false;
        let s = summarize(&[r_ok, r_bad], 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.attempted, 2);
        assert!(!s.all_completed());
        assert_eq!(s.mean, 11.0);
    }

    #[test]
    fn accumulator_matches_batch_summarize_bitwise() {
        let wl = Workload::new(2e-4, 16, 256.0).unwrap();
        let built = BuiltSystem::build(&spec(), wl.flit_bytes);
        let results: Vec<SimResults> = (0..5)
            .map(|r| {
                let run_cfg = SimConfig {
                    seed: cfg().seed.wrapping_add(r),
                    ..cfg()
                };
                run_simulation_built(&built, &wl, Pattern::Uniform, &run_cfg)
            })
            .collect();
        let batch = summarize(&results, 5);
        let mut acc = ReplicationAccumulator::new();
        for (absorbed, r) in results.iter().enumerate() {
            acc.absorb(r);
            assert_eq!(acc.attempted(), absorbed + 1);
        }
        let incremental = acc.summary();
        assert_eq!(incremental.mean, batch.mean);
        assert_eq!(incremental.ci95, batch.ci95);
        assert_eq!(incremental.replication_means, batch.replication_means);
        assert_eq!(incremental.completed, batch.completed);
        assert_eq!(incremental.attempted, batch.attempted);
        assert!(acc.all_completed());
        assert_eq!(acc.warmup_flagged(), 0);
    }

    #[test]
    fn accumulator_convergence_tightens_with_replications() {
        use cocnet_stats::Precision;
        let wl = Workload::new(2e-4, 16, 256.0).unwrap();
        let built = BuiltSystem::build(&spec(), wl.flit_bytes);
        let mut acc = ReplicationAccumulator::new();
        // A loose 20 % relative target: unmet with one replication
        // (infinite half-width), met once a few independent means agree.
        let target = Precision::relative(0.2, 0.95);
        let mut converged_at = None;
        for r in 0..8u64 {
            let run_cfg = SimConfig {
                seed: cfg().seed.wrapping_add(r),
                ..cfg()
            };
            acc.absorb(&run_simulation_built(
                &built,
                &wl,
                Pattern::Uniform,
                &run_cfg,
            ));
            if r == 0 {
                assert!(!acc.meets(&target), "one replication can never converge");
            }
            if converged_at.is_none() && acc.meets(&target) {
                converged_at = Some(acc.attempted());
            }
        }
        let spent = converged_at.expect("a 20% target converges within 8 replications");
        assert!(spent >= 2);
        // The CI the decision was made on is the one reported.
        assert!(acc.ci(0.95).half_width / acc.mean() <= 0.2);
    }
}
