//! Independent replications: running the same configuration under several
//! seeds and summarising across runs.
//!
//! A single simulation's confidence interval understates the truth when
//! samples are autocorrelated (queueing systems correlate heavily near
//! saturation). The standard remedy — and what a careful reproduction of
//! the paper's figures should report — is the mean of independent
//! replications with a CI over the replication means.

use crate::build::BuiltSystem;
use crate::config::SimConfig;
use crate::engine::run_simulation_built;
use crate::results::SimResults;
use cocnet_model::Workload;
use cocnet_stats::{mean_confidence_interval, ConfidenceInterval, OnlineStats};
use cocnet_topology::SystemSpec;
use cocnet_workloads::Pattern;
use serde::{Deserialize, Serialize};

/// Summary over independent replications of one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicationSummary {
    /// Mean of the per-replication mean latencies.
    pub mean: f64,
    /// 95 % confidence interval over the replication means.
    pub ci95: ConfidenceInterval,
    /// Per-replication mean latencies, in seed order.
    pub replication_means: Vec<f64>,
    /// Number of replications that completed.
    pub completed: usize,
    /// Total replications attempted.
    pub attempted: usize,
}

impl ReplicationSummary {
    /// Whether every replication delivered its measured population.
    pub fn all_completed(&self) -> bool {
        self.completed == self.attempted
    }
}

/// Runs `replications` independent simulations (seeds `cfg.seed`,
/// `cfg.seed + 1`, …) and summarises the means of those that completed.
pub fn replicate(
    spec: &SystemSpec,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
    replications: usize,
) -> ReplicationSummary {
    assert!(replications > 0, "need at least one replication");
    let built = BuiltSystem::build(spec, wl.flit_bytes);
    let results: Vec<SimResults> = (0..replications)
        .map(|r| {
            let run_cfg = SimConfig {
                seed: cfg.seed.wrapping_add(r as u64),
                ..*cfg
            };
            run_simulation_built(&built, wl, pattern, &run_cfg)
        })
        .collect();
    summarize(&results, replications)
}

/// Parallel version of [`replicate`]: the replications run concurrently on
/// the rayon pool, one independent seeded simulation each. Seeds and the
/// order of `replication_means` are identical to [`replicate`]'s, so for
/// the same `cfg` the two produce bit-identical summaries — only the
/// wall-clock differs.
pub fn replicate_parallel(
    spec: &SystemSpec,
    wl: &Workload,
    pattern: Pattern,
    cfg: &SimConfig,
    replications: usize,
) -> ReplicationSummary {
    use rayon::prelude::*;
    assert!(replications > 0, "need at least one replication");
    let built = BuiltSystem::build(spec, wl.flit_bytes);
    let results: Vec<SimResults> = (0..replications)
        .into_par_iter()
        .map(|r| {
            let run_cfg = SimConfig {
                seed: cfg.seed.wrapping_add(r as u64),
                ..*cfg
            };
            run_simulation_built(&built, wl, pattern, &run_cfg)
        })
        .collect();
    summarize(&results, replications)
}

/// Merges per-replication results into a [`ReplicationSummary`]. Kept
/// public so harnesses that schedule their own runs (e.g. the `cocnet`
/// scenario runner) can reuse the exact same summary arithmetic.
pub fn summarize(results: &[SimResults], attempted: usize) -> ReplicationSummary {
    let mut stats = OnlineStats::new();
    let mut means = Vec::with_capacity(results.len());
    let mut completed = 0;
    for r in results {
        if r.completed {
            stats.push(r.latency.mean);
            means.push(r.latency.mean);
            completed += 1;
        }
    }
    ReplicationSummary {
        mean: stats.mean(),
        ci95: mean_confidence_interval(&stats, 0.95),
        replication_means: means,
        completed,
        attempted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn spec() -> SystemSpec {
        let net = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net,
            ecn1: net,
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net).unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            warmup: 300,
            measured: 3_000,
            drain: 300,
            seed: 7,
            ..SimConfig::default()
        }
    }

    #[test]
    fn replications_complete_and_differ() {
        let wl = Workload::new(2e-4, 16, 256.0).unwrap();
        let s = replicate(&spec(), &wl, Pattern::Uniform, &cfg(), 4);
        assert!(s.all_completed());
        assert_eq!(s.replication_means.len(), 4);
        // Distinct seeds produce distinct means…
        let first = s.replication_means[0];
        assert!(s.replication_means.iter().any(|&m| m != first));
        // …that all fall inside a sane band around the summary mean.
        for &m in &s.replication_means {
            assert!((m - s.mean).abs() / s.mean < 0.2);
        }
    }

    #[test]
    fn parallel_replications_bit_identical_to_serial() {
        let wl = Workload::new(2e-4, 16, 256.0).unwrap();
        let serial = replicate(&spec(), &wl, Pattern::Uniform, &cfg(), 6);
        let parallel = replicate_parallel(&spec(), &wl, Pattern::Uniform, &cfg(), 6);
        assert_eq!(serial.replication_means, parallel.replication_means);
        assert_eq!(serial.mean, parallel.mean);
        assert_eq!(serial.ci95, parallel.ci95);
        assert_eq!(serial.completed, parallel.completed);
    }

    #[test]
    fn ci_shrinks_with_more_replications() {
        let wl = Workload::new(2e-4, 16, 256.0).unwrap();
        let small = replicate(&spec(), &wl, Pattern::Uniform, &cfg(), 3);
        let large = replicate(&spec(), &wl, Pattern::Uniform, &cfg(), 8);
        assert!(large.ci95.half_width < small.ci95.half_width);
    }

    #[test]
    fn summary_counts_incomplete_runs() {
        let r_ok = SimResults::collect(
            &{
                let mut s = OnlineStats::new();
                s.push(10.0);
                s.push(12.0);
                s
            },
            &OnlineStats::new(),
            &OnlineStats::new(),
            &[],
            2,
            2,
            true,
            1.0,
            None,
            Vec::new(),
            Vec::new(),
            None,
            crate::results::EngineCounters {
                events_processed: 2,
                peak_live_msgs: 1,
            },
        );
        let mut r_bad = r_ok.clone();
        r_bad.completed = false;
        let s = summarize(&[r_ok, r_bad], 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.attempted, 2);
        assert!(!s.all_completed());
        assert_eq!(s.mean, 11.0);
    }
}
