//! Pluggable future-event lists: the `(time, sequence)`-ordered scheduler
//! both engines run on.
//!
//! Events are processed earliest-first; ties break on insertion sequence,
//! so a run's event order is a pure function of the simulation — the
//! backbone of the bit-identical-per-seed guarantee. The [`Scheduler`]
//! trait captures exactly that contract, and two backends implement it:
//!
//! * [`EventQueue`] — a classic `BinaryHeap` future-event list, O(log n)
//!   push/pop. Simple, cache-friendly at small pending populations, and
//!   the historical reference backend.
//! * [`CalendarQueue`] — a self-resizing calendar queue (R. Brown, CACM
//!   1988): events hash into time-bucketed "days" of a rotating "year",
//!   giving amortized O(1) enqueue/dequeue on the banded timestamp
//!   distributions a transfer-time model produces. Bucket count and width
//!   adapt to the pending population.
//!
//! Both backends pop in the **identical** total order — `(time, seq)`
//! earliest-first — so every seed stays bit-identical regardless of which
//! one a run selects ([`crate::SchedulerKind`]). The equivalence is pinned
//! by the cross-backend property tests in `tests/scheduler_order.rs` and
//! by the seed-pinned golden statistics in `tests/golden_regression.rs`.
//!
//! The heap backend retains its capacity across pushes and pops, so a
//! warmed-up loop never touches the allocator; the calendar reuses its
//! bucket and overflow storage per event and allocates only on resizes
//! and year rebalances (amortized O(1) over the events that trigger
//! them).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// One scheduled event: an engine-specific payload at a point in time.
#[derive(Debug, Clone, Copy)]
pub struct Timed<K> {
    /// Simulation time the event fires at.
    pub time: f64,
    /// Insertion sequence number (tie-breaker; unique per queue).
    pub seq: u64,
    /// Engine-specific payload.
    pub kind: K,
}

impl<K> PartialEq for Timed<K> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<K> Eq for Timed<K> {}
impl<K> PartialOrd for Timed<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K> Ord for Timed<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Whether `a` pops before `b`: earlier time, ties by insertion sequence.
#[inline]
fn earlier<K>(a: &Timed<K>, b: &Timed<K>) -> bool {
    a.time
        .total_cmp(&b.time)
        .then_with(|| a.seq.cmp(&b.seq))
        .is_lt()
}

/// The deterministic future-event-list contract shared by both engines.
///
/// Implementations must pop events in strict `(time, seq)` order, where
/// `seq` is the insertion sequence the scheduler assigns itself — i.e.
/// earliest time first, ties broken by insertion order. Two conforming
/// backends are therefore interchangeable without perturbing a single
/// event of a seeded run. Engines are generic over this trait and
/// monomorphized per backend, so the hot loop pays no dynamic dispatch.
pub trait Scheduler<K> {
    /// An empty scheduler.
    fn new() -> Self;

    /// Schedules `kind` at `time`, after every event already scheduled
    /// for the same instant.
    fn schedule(&mut self, time: f64, kind: K);

    /// Removes and returns the earliest event (insertion order on ties).
    fn pop(&mut self) -> Option<Timed<K>>;

    /// Time of the event the next [`Scheduler::pop`] would return, without
    /// removing it. Takes `&mut self` so backends may advance internal
    /// cursors (the calendar's day rotation) exactly as the pop would —
    /// the pending set and the pop order are unchanged. The windowed
    /// sharded engine leans on this to find its next sync horizon.
    fn peek_time(&mut self) -> Option<f64>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A deterministic binary-heap future-event list with automatic sequence
/// numbering — the O(log n) reference backend.
#[derive(Debug)]
pub struct EventQueue<K> {
    heap: BinaryHeap<Timed<K>>,
    seq: u64,
}

impl<K> Scheduler<K> for EventQueue<K> {
    fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    #[inline]
    fn schedule(&mut self, time: f64, kind: K) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Timed { time, seq, kind });
    }

    #[inline]
    fn pop(&mut self) -> Option<Timed<K>> {
        self.heap.pop()
    }

    #[inline]
    fn peek_time(&mut self) -> Option<f64> {
        self.heap.peek().map(|ev| ev.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Initial (and minimum) bucket count; a power of two so the day→bucket
/// map is a mask.
const MIN_BUCKETS: usize = 256;

/// How many soonest-due events the resize width estimator samples.
const HEAD_SAMPLE: usize = 32;

/// A self-resizing calendar queue (Brown 1988) with an overflow band:
/// the amortized O(1) backend.
///
/// Time is divided into `width`-sized *days*; the `nbuckets` buckets form
/// the current *year* — a window of `nbuckets` consecutive days, one
/// bucket per day (`day mod nbuckets`). Only events due within the
/// current year live in buckets; everything further out sits in an
/// **overflow band** (a min-heap) and migrates into buckets when its year
/// arrives. That split is what keeps the structure O(1) on the workloads
/// a discrete-event engine produces: the dense band of in-flight
/// transfer events just above `now` enjoys direct bucket access, while
/// the sparse far-future arrival events neither pollute the buckets nor
/// stretch the width estimate.
///
/// Each bucket is kept sorted in **ascending** pop order, so its
/// earliest event sits at the front: the pop-side due check is one
/// comparison and removal is a `pop_front` (`day_of` is monotone in
/// time, so the bucket minimum is due iff anything in the bucket is),
/// while same-instant bursts append at the back in O(1) (insertion
/// order is exactly pop order on ties). Popping advances day by day
/// within the year; an exhausted year jumps straight to the earliest
/// overflow event and migrates its year in.
///
/// The structure resizes itself: the bucket count doubles when the
/// in-year band exceeds two events per bucket (and shrinks when it falls
/// far below), and each resize re-estimates the day width from the event
/// density near the head so a day keeps holding O(1) events. Day
/// membership is computed with the *same* `floor(time / width)`
/// expression everywhere, so no floating-point drift can reorder events
/// across bucket boundaries; within a day the sorted order reproduces
/// the heap's `(time, seq)` order exactly.
#[derive(Debug)]
pub struct CalendarQueue<K> {
    /// Buckets sorted ascending by pop order (earliest event first).
    buckets: Vec<VecDeque<Timed<K>>>,
    /// `nbuckets - 1` (bucket count is a power of two).
    mask: usize,
    /// Events currently in buckets (the in-year band).
    band_len: usize,
    /// Total pending events (band + overflow).
    len: usize,
    seq: u64,
    /// Day length in simulation-time units.
    width: f64,
    /// `1.0 / width`, cached so day computation is a multiply.
    inv_width: f64,
    /// Current day of the rotation (day `d` covers
    /// `[d·width, (d+1)·width)`).
    day: i64,
    /// First day beyond the current year window; events at or past it
    /// live in `overflow`.
    year_end: i64,
    /// The overflow band: events due beyond the current year, earliest
    /// first (reversed [`Timed`] order makes `BinaryHeap` a min-heap).
    overflow: BinaryHeap<Timed<K>>,
    /// Largest band population seen this year — the signal the year-jump
    /// rebalance shrinks the bucket array on.
    year_max_band: usize,
}

impl<K> CalendarQueue<K> {
    /// The day `time` belongs to, computed identically at insert and pop.
    ///
    /// Clamped to a quarter of the `i64` range so day arithmetic
    /// (`day + nbuckets`) can never overflow: times far beyond the clamp
    /// (including `f64::INFINITY`) all share the extreme day and are
    /// ordered by the in-bucket `(time, seq)` sort instead — the day is
    /// only a routing hint, never the comparison key.
    #[inline]
    fn day_of(&self, time: f64) -> i64 {
        // `as i64` saturates on overflow/NaN, then the clamp bounds it.
        ((time * self.inv_width).floor() as i64).clamp(i64::MIN / 4, i64::MAX / 4)
    }

    /// Bucket index of a day.
    #[inline]
    fn bucket_of(&self, day: i64) -> usize {
        // Power-of-two modulo that is correct for negative days too.
        (day & self.mask as i64) as usize
    }

    /// Inserts into a bucket, keeping it sorted ascending by pop order.
    /// Later-than-everything events (same-instant bursts, monotone
    /// schedules) land at the back in O(1); a `VecDeque` keeps inserts
    /// near either end cheap.
    #[inline]
    fn insert_sorted(bucket: &mut VecDeque<Timed<K>>, ev: Timed<K>) {
        if bucket.back().is_none_or(|last| earlier(last, &ev)) {
            bucket.push_back(ev);
            return;
        }
        let pos = bucket.partition_point(|e| earlier(e, &ev));
        bucket.insert(pos, ev);
    }

    /// Pulls every overflow event whose day now falls inside the year
    /// window into its bucket. Called after a year jump or a resize, so
    /// the invariant "overflow holds only events at or past `year_end`"
    /// is restored.
    fn migrate_overflow(&mut self) {
        while let Some(ev) = self.overflow.peek() {
            if self.day_of(ev.time) >= self.year_end {
                break;
            }
            let ev = self.overflow.pop().expect("peeked non-empty");
            let idx = self.bucket_of(self.day_of(ev.time));
            Self::insert_sorted(&mut self.buckets[idx], ev);
            self.band_len += 1;
        }
        self.year_max_band = self.year_max_band.max(self.band_len);
    }

    /// Re-buckets the band into `new_n` buckets, re-estimating the day
    /// width from the event density near the head and re-anchoring the
    /// year at the earliest pending event.
    ///
    /// The head-local estimate matters: a DES future-event list is
    /// typically bimodal — a dense band of in-flight transfer events just
    /// above `now` plus sparse arrival events far ahead. Sizing days from
    /// the global span would drown the dense band in one bucket and
    /// degrade every pop to a linear scan, so the width follows Brown's
    /// recommendation instead: a multiple of the average gap among the
    /// soonest-due events (the ones the next pops will actually touch).
    fn resize(&mut self, new_n: usize) {
        // Collect the band; overflow stays put (its events re-partition
        // through `migrate_overflow` below).
        let mut band: Vec<Timed<K>> = Vec::with_capacity(self.band_len);
        for bucket in &mut self.buckets {
            band.extend(bucket.drain(..));
        }
        if band.len() >= 2 {
            // The K soonest band times, via an O(len) selection.
            let mut times: Vec<f64> = band
                .iter()
                .map(|ev| ev.time)
                .filter(|t| t.is_finite())
                .collect();
            let k = times.len().min(HEAD_SAMPLE);
            if k >= 2 {
                times.select_nth_unstable_by(k - 1, f64::total_cmp);
                let head = &times[..k];
                let lo = head.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = head.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                // ~3 events per day at head density; a degenerate head
                // (all simultaneous) keeps the current width.
                let w = (hi - lo) / (k - 1) as f64 * 3.0;
                if w > 0.0 && w.is_finite() {
                    self.width = w;
                    self.inv_width = w.recip();
                }
            }
        }
        if self.buckets.len() != new_n {
            self.buckets = (0..new_n).map(|_| VecDeque::new()).collect();
            self.mask = new_n - 1;
        }
        // Re-anchor the year at the earliest pending event (the band and
        // the overflow head are the only candidates).
        let anchor = band
            .iter()
            .map(|ev| ev.time)
            .chain(self.overflow.peek().map(|ev| ev.time))
            .fold(f64::INFINITY, f64::min);
        if anchor.is_finite() {
            self.day = self.day_of(anchor);
            self.year_end = self.day + new_n as i64;
        }
        // Re-partition the band under the new width/window: in-year
        // events re-bucket, the rest join the overflow band.
        self.band_len = 0;
        for ev in band {
            let day = self.day_of(ev.time);
            if day >= self.year_end {
                self.overflow.push(ev);
            } else {
                let idx = self.bucket_of(day);
                Self::insert_sorted(&mut self.buckets[idx], ev);
                self.band_len += 1;
            }
        }
        self.migrate_overflow();
    }
}

impl<K> Scheduler<K> for CalendarQueue<K> {
    fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            mask: MIN_BUCKETS - 1,
            band_len: 0,
            len: 0,
            seq: 0,
            width: 1.0,
            inv_width: 1.0,
            day: 0,
            year_end: MIN_BUCKETS as i64,
            overflow: BinaryHeap::new(),
            year_max_band: 0,
        }
    }

    #[inline]
    fn schedule(&mut self, time: f64, kind: K) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let day = self.day_of(time);
        if day >= self.year_end {
            // Beyond the current year: the overflow band holds it until
            // its year arrives.
            self.overflow.push(Timed { time, seq, kind });
            return;
        }
        // An insert into a day the cursor has already passed (possible
        // whenever `time` is below the earliest *pending* event — e.g.
        // right after a year jump anchored the rotation there) rewinds
        // the cursor so the event cannot be missed.
        if day < self.day {
            self.day = day;
        }
        let idx = self.bucket_of(day);
        Self::insert_sorted(&mut self.buckets[idx], Timed { time, seq, kind });
        self.band_len += 1;
        self.year_max_band = self.year_max_band.max(self.band_len);
        if self.band_len > self.buckets.len() * 2 {
            let doubled = self.buckets.len() * 2;
            self.resize(doubled);
        }
    }

    fn pop(&mut self) -> Option<Timed<K>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Rotate through the remaining days of the current year.
            while self.day < self.year_end {
                let idx = self.bucket_of(self.day);
                // The bucket minimum sits at the front; `day_of` is
                // monotone in time, so it is due iff anything in the
                // bucket is.
                if let Some(ev) = self.buckets[idx].front() {
                    if self.day_of(ev.time) <= self.day {
                        let ev = self.buckets[idx].pop_front().expect("checked non-empty");
                        self.band_len -= 1;
                        self.len -= 1;
                        return Some(ev);
                    }
                }
                self.day += 1;
            }
            // Year exhausted: every bucket is empty (the window held one
            // bucket per day and each day was visited). Jump straight to
            // the year of the earliest overflow event.
            debug_assert_eq!(self.band_len, 0, "exhausted year left band events behind");
            let next = self
                .overflow
                .peek()
                .expect("len > 0 with an empty band implies overflow events");
            self.day = self.day_of(next.time);
            self.year_end = self.day + self.buckets.len() as i64;
            // Rebalance on the year boundary, where the band is empty
            // and re-bucketing is cheapest: shrink when the whole past
            // year stayed far below capacity (a pop-side shrink would
            // fire on every year drain and thrash), grow when migration
            // overfills the new year.
            if self.year_max_band * 4 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
                let halved = self.buckets.len() / 2;
                self.resize(halved);
            } else {
                self.migrate_overflow();
            }
            while self.band_len > self.buckets.len() * 2 {
                let doubled = self.buckets.len() * 2;
                self.resize(doubled);
            }
            self.year_max_band = self.band_len;
        }
    }

    fn peek_time(&mut self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        // The same rotation walk as `pop`, stopping with the cursor ON the
        // due day instead of removing the event: the following pop re-runs
        // the (now trivial) walk and finds the same front event.
        loop {
            while self.day < self.year_end {
                let idx = self.bucket_of(self.day);
                if let Some(ev) = self.buckets[idx].front() {
                    if self.day_of(ev.time) <= self.day {
                        return Some(ev.time);
                    }
                }
                self.day += 1;
            }
            debug_assert_eq!(self.band_len, 0, "exhausted year left band events behind");
            let next = self
                .overflow
                .peek()
                .expect("len > 0 with an empty band implies overflow events");
            self.day = self.day_of(next.time);
            self.year_end = self.day + self.buckets.len() as i64;
            if self.year_max_band * 4 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
                let halved = self.buckets.len() / 2;
                self.resize(halved);
            } else {
                self.migrate_overflow();
            }
            while self.band_len > self.buckets.len() * 2 {
                let doubled = self.buckets.len() * 2;
                self.resize(doubled);
            }
            self.year_max_band = self.band_len;
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<K, S: Scheduler<K>>(q: &mut S) -> Vec<Timed<K>> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    fn check_time_then_sequence_order<S: Scheduler<u32>>() {
        let mut q = S::new();
        q.schedule(2.0, 0);
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(0.5, 3);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|e| e.kind).collect();
        assert_eq!(order, [3, 1, 2, 0]);
    }

    #[test]
    fn pops_in_time_then_sequence_order() {
        check_time_then_sequence_order::<EventQueue<u32>>();
        check_time_then_sequence_order::<CalendarQueue<u32>>();
    }

    fn check_sequence_numbers<S: Scheduler<u32>>() {
        let mut q = S::new();
        for i in 0..10 {
            q.schedule(1.0, i);
        }
        let mut last = None;
        while let Some(e) = q.pop() {
            if let Some(prev) = last {
                assert!(e.seq > prev);
            }
            last = Some(e.seq);
        }
    }

    #[test]
    fn sequence_numbers_are_unique_and_monotone() {
        check_sequence_numbers::<EventQueue<u32>>();
        check_sequence_numbers::<CalendarQueue<u32>>();
    }

    #[test]
    fn calendar_grows_through_resizes_and_stays_ordered() {
        // 1000 pending events force several doublings (16 → 1024-ish);
        // order must survive every re-bucketing.
        let mut q = CalendarQueue::<usize>::new();
        for i in 0..1000usize {
            // A deterministic scatter of times with duplicates.
            let t = ((i * 7919) % 500) as f64 * 0.25;
            q.schedule(t, i);
        }
        assert!(q.buckets.len() > MIN_BUCKETS, "growth did not trigger");
        assert_eq!(q.len(), 1000);
        let order = drain(&mut q);
        assert_eq!(order.len(), 1000);
        for w in order.windows(2) {
            assert!(
                earlier(&w[0], &w[1]),
                "order violated: {:?} {:?}",
                w[0],
                w[1]
            );
        }
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_shrinks_at_year_jumps_and_keeps_order() {
        let mut q = CalendarQueue::<usize>::new();
        for i in 0..600usize {
            q.schedule(i as f64 * 0.1, i);
        }
        let grown = q.buckets.len();
        assert!(grown > MIN_BUCKETS, "growth did not trigger");
        // Drain the dense band, then walk a sparse far-future schedule:
        // every event forces a year jump, and the jump-time rebalance
        // must shrink the bucket array back toward the tiny population
        // (a pop-side shrink would thrash on every year drain instead).
        let mut last_time = f64::NEG_INFINITY;
        for _ in 0..600 {
            let ev = q.pop().unwrap();
            assert!(ev.time >= last_time);
            last_time = ev.time;
        }
        for i in 0..8usize {
            q.schedule(last_time + 1e6 * (i + 1) as f64, 9000 + i);
        }
        let rest = drain(&mut q);
        assert_eq!(rest.len(), 8);
        for w in rest.windows(2) {
            assert!(earlier(&w[0], &w[1]));
        }
        assert_eq!(rest.last().unwrap().kind, 9007);
        assert!(
            q.buckets.len() < grown,
            "year-jump rebalance did not shrink ({} vs {grown})",
            q.buckets.len()
        );
    }

    #[test]
    fn calendar_resize_with_all_events_at_one_instant_keeps_width() {
        // A zero time-span gives the width estimator nothing to work
        // with; the resize must keep the old width (not collapse to 0 or
        // NaN) and preserve pure insertion order on the ties.
        let mut q = CalendarQueue::<usize>::new();
        for i in 0..200usize {
            q.schedule(42.0, i);
        }
        assert!(q.width > 0.0 && q.width.is_finite());
        let order = drain(&mut q);
        let kinds: Vec<usize> = order.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn calendar_sparse_far_future_takes_the_direct_path() {
        // One event a billion time units out: a year rotation can never
        // reach it; the direct search must find it (and re-anchor so the
        // next pop is cheap).
        let mut q = CalendarQueue::<&str>::new();
        q.schedule(0.25, "now");
        q.schedule(1e9, "later");
        q.schedule(1e9, "later2");
        assert_eq!(q.pop().unwrap().kind, "now");
        assert_eq!(q.pop().unwrap().kind, "later");
        assert_eq!(q.pop().unwrap().kind, "later2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_handles_extreme_and_infinite_times() {
        // Times far beyond the day clamp (including infinity) must stay
        // orderable and never hang or overflow the day arithmetic — the
        // heap handles them, so the interchangeability contract says the
        // calendar must too.
        let mut q = CalendarQueue::<&str>::new();
        q.schedule(f64::INFINITY, "inf");
        q.schedule(1.0, "now");
        q.schedule(1e300, "huge");
        q.schedule(f64::INFINITY, "inf2");
        assert_eq!(q.pop().unwrap().kind, "now");
        assert_eq!(q.pop().unwrap().kind, "huge");
        assert_eq!(q.pop().unwrap().kind, "inf");
        assert_eq!(q.pop().unwrap().kind, "inf2");
        assert!(q.pop().is_none());
        // And scheduling resumes normally afterwards.
        q.schedule(2.0, "later");
        assert_eq!(q.pop().unwrap().kind, "later");
    }

    #[test]
    fn calendar_same_instant_bursts_append_in_constant_time() {
        // Every tie lands at the back of its bucket (no memmove of the
        // existing tie group): a large burst must drain in pure insertion
        // order without quadratic cost.
        let mut q = CalendarQueue::<usize>::new();
        for i in 0..20_000usize {
            q.schedule(7.5, i);
        }
        for i in 0..20_000usize {
            assert_eq!(q.pop().unwrap().kind, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn empty_pop_is_none_for_both() {
        assert!(EventQueue::<u8>::new().pop().is_none());
        assert!(CalendarQueue::<u8>::new().pop().is_none());
    }

    fn check_peek_matches_pop<S: Scheduler<usize>>() {
        let mut q = S::new();
        assert_eq!(q.peek_time(), None);
        for i in 0..500usize {
            let t = ((i * 7919) % 251) as f64 * 0.5;
            q.schedule(t, i);
        }
        // Every peek must equal the following pop's time, and an insert
        // below the peeked head must rewind the peek to it.
        let mut inserted = false;
        for n in 0..501usize {
            let peeked = q.peek_time().unwrap();
            if n == 100 && !inserted {
                // Head after 100 pops is well above 0; halving it makes
                // the insert the strict new minimum.
                assert!(peeked > 0.0);
                q.schedule(peeked * 0.5, 9_000);
                assert_eq!(q.peek_time().unwrap(), peeked * 0.5);
                inserted = true;
                let ev = q.pop().unwrap();
                assert_eq!(ev.kind, 9_000);
                assert_eq!(ev.time, peeked * 0.5);
                continue;
            }
            let ev = q.pop().unwrap();
            assert_eq!(ev.time, peeked);
        }
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_matches_pop_for_both() {
        check_peek_matches_pop::<EventQueue<usize>>();
        check_peek_matches_pop::<CalendarQueue<usize>>();
    }
}
