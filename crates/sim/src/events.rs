//! Shared discrete-event plumbing: the `(time, sequence)`-ordered event
//! queue both engines run on.
//!
//! Events are processed earliest-first; ties break on insertion sequence,
//! so a run's event order is a pure function of the simulation — the
//! backbone of the bit-identical-per-seed guarantee. The queue's backing
//! `BinaryHeap` retains its capacity across pushes, so a warmed-up event
//! loop never touches the allocator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: an engine-specific payload at a point in time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Timed<K> {
    /// Simulation time the event fires at.
    pub time: f64,
    /// Insertion sequence number (tie-breaker; unique per queue).
    pub seq: u64,
    /// Engine-specific payload.
    pub kind: K,
}

impl<K> PartialEq for Timed<K> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<K> Eq for Timed<K> {}
impl<K> PartialOrd for Timed<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K> Ord for Timed<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list with automatic sequence numbering.
#[derive(Debug)]
pub(crate) struct EventQueue<K> {
    heap: BinaryHeap<Timed<K>>,
    seq: u64,
}

impl<K> EventQueue<K> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `kind` at `time`, after every event already scheduled for
    /// the same instant.
    #[inline]
    pub fn schedule(&mut self, time: f64, kind: K) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Timed { time, seq, kind });
    }

    /// Removes and returns the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<Timed<K>> {
        self.heap.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_sequence_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "b");
        q.schedule(1.0, "a1");
        q.schedule(1.0, "a2");
        q.schedule(0.5, "first");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.kind)).collect();
        assert_eq!(order, ["first", "a1", "a2", "b"]);
    }

    #[test]
    fn sequence_numbers_are_unique_and_monotone() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(1.0, i);
        }
        let mut last = None;
        while let Some(e) = q.pop() {
            if let Some(prev) = last {
                assert!(e.seq > prev);
            }
            last = Some(e.seq);
        }
    }
}
