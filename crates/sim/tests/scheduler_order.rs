//! Property tests pinning the calendar queue's pop order identical to
//! the binary heap's on randomized event streams.
//!
//! The [`Scheduler`] contract — strict `(time, seq)` earliest-first order
//! — is what makes the backends interchangeable without perturbing a
//! single event of a seeded run. Each property drives both backends with
//! the same interleaved schedule/pop workload a discrete-event loop
//! produces (inserts never travel into the past) and asserts every popped
//! event matches bitwise: time bits, sequence number, payload.
//!
//! Four timestamp shapes are exercised, mirroring what the engines emit:
//! clustered bands (segment finish times share bottleneck structure),
//! uniform gaps, same-instant ties (simultaneous releases), and bursts
//! whose offsets *decrease* toward the current time (a release schedule
//! walks a segment backwards, emitting near-`now` events last).

use cocnet_sim::{CalendarQueue, EventQueue, Scheduler, Timed};
use proptest::prelude::*;

/// One step of a workload: schedule this many events (with the given
/// offset picks), then pop this many.
#[derive(Debug, Clone)]
struct Step {
    offsets: Vec<f64>,
    pops: usize,
}

/// Runs the same workload through both backends, popping with the
/// non-decreasing `now` of a real event loop, and asserts bitwise-equal
/// pop streams. Finishes by draining both queues dry.
fn assert_identical_order(steps: &[Step], offset_of: impl Fn(f64) -> f64) {
    let mut heap = EventQueue::<u32>::new();
    let mut cal = CalendarQueue::<u32>::new();
    let mut now = 0.0f64;
    let mut payload = 0u32;
    let pop_both = |heap: &mut EventQueue<u32>, cal: &mut CalendarQueue<u32>| {
        let h = heap.pop();
        let c = cal.pop();
        match (&h, &c) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.time.to_bits(), b.time.to_bits(), "time diverged");
                assert_eq!(a.seq, b.seq, "sequence diverged");
                assert_eq!(a.kind, b.kind, "payload diverged");
            }
            _ => panic!("one backend empty while the other is not"),
        }
        h
    };
    for step in steps {
        for &raw in &step.offsets {
            // Events never travel into the past: schedule at `now + off`.
            let t = now + offset_of(raw);
            heap.schedule(t, payload);
            cal.schedule(t, payload);
            payload += 1;
        }
        assert_eq!(heap.len(), cal.len());
        for _ in 0..step.pops {
            if let Some(ev) = pop_both(&mut heap, &mut cal) {
                now = ev.time;
            }
        }
    }
    while let Some(ev) = pop_both(&mut heap, &mut cal) {
        now = ev.time;
    }
    let _ = now;
    assert!(heap.is_empty() && cal.is_empty());
}

fn arb_steps(max_batch: usize) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (prop::collection::vec(0.0f64..1.0, 1..max_batch), 0usize..6)
            .prop_map(|(offsets, pops)| Step { offsets, pops }),
        1..30,
    )
}

proptest! {
    #[test]
    fn uniform_gaps_pop_identically(steps in arb_steps(8)) {
        // Offsets spread uniformly over ~10 time units.
        assert_identical_order(&steps, |raw| raw * 10.0);
    }

    #[test]
    fn clustered_bands_pop_identically(steps in arb_steps(8)) {
        // Three widely separated bands with small jitter — the banded
        // distribution a transfer-time model produces (and the shape
        // calendar queues are built for).
        assert_identical_order(&steps, |raw| {
            let band = (raw * 3.0).floor().min(2.0);
            band * 250.0 + (raw * 3.0 - band) * 0.05
        });
    }

    #[test]
    fn same_instant_ties_pop_in_insertion_order(steps in arb_steps(10)) {
        // Quantized offsets (including exactly `now`) make simultaneous
        // events common; the tie-break must be pure insertion order.
        assert_identical_order(&steps, |raw| (raw * 4.0).floor() * 0.5);
    }

    #[test]
    fn decreasing_offsets_near_now_pop_identically(steps in arb_steps(8)) {
        // Within a batch the raw draws are independent, but mapping
        // through 1/x-ish decay concentrates mass just above `now`,
        // and the per-batch reversal below emits the nearest event last
        // — the release-schedule pattern that walks a segment backwards.
        let reversed: Vec<Step> = steps
            .iter()
            .map(|s| {
                let mut sorted = s.offsets.clone();
                sorted.sort_by(|a, b| b.total_cmp(a));
                Step { offsets: sorted, pops: s.pops }
            })
            .collect();
        assert_identical_order(&reversed, |raw| 0.01 + raw * raw * 2.0);
    }
}

/// Deterministic cross-check at a scale that forces several calendar
/// resizes in both directions, with interleaved pops.
#[test]
fn large_interleaved_stream_matches_heap() {
    let mut heap = EventQueue::<usize>::new();
    let mut cal = CalendarQueue::<usize>::new();
    let mut now = 0.0f64;
    let mut x = 88172645463325252u64; // xorshift64 state
    let mut rand = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    for round in 0..2000usize {
        let burst = 1 + (round % 7);
        for k in 0..burst {
            let t = now + rand() * 5.0;
            heap.schedule(t, round * 16 + k);
            cal.schedule(t, round * 16 + k);
        }
        for _ in 0..(round % 5) {
            match (heap.pop(), cal.pop()) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.time.to_bits(), b.time.to_bits());
                    assert_eq!((a.seq, a.kind), (b.seq, b.kind));
                    now = a.time;
                }
                (None, None) => {}
                _ => panic!("backends diverged in occupancy"),
            }
        }
    }
    loop {
        match (heap.pop(), cal.pop()) {
            (Some(a), Some(b)) => {
                assert_eq!(a.time.to_bits(), b.time.to_bits());
                assert_eq!((a.seq, a.kind), (b.seq, b.kind));
            }
            (None, None) => break,
            _ => panic!("backends diverged while draining"),
        }
    }
}

/// `Timed` is public API now; its ordering contract (earliest-first
/// through a max-heap reversal, sequence tie-break) is what both
/// backends implement.
#[test]
fn timed_ordering_contract() {
    let a = Timed {
        time: 1.0,
        seq: 0,
        kind: (),
    };
    let b = Timed {
        time: 1.0,
        seq: 1,
        kind: (),
    };
    let c = Timed {
        time: 2.0,
        seq: 2,
        kind: (),
    };
    // Reversed order: "greater" pops first from a max-heap.
    assert!(a > b && b > c && a > c);
    assert_eq!(a, a);
    assert_ne!(a, b);
}
