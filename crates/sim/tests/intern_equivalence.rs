//! Exhaustive equivalence of the class-keyed [`RouteTable`] with the
//! eager all-pairs oracle: for small heterogeneous organizations, both
//! ascent policies and with/without static faults, **every** (src, dst)
//! pair must agree on reachability, segment count, per-segment channel
//! ids in traversal order, and f64-**bitwise** `sum_t`/`bottleneck_t`.
//!
//! This is the contract the classed table's lazy materialization and
//! arithmetic injection recovery are held to — the goldens then pin the
//! same property end-to-end through the engines.

use cocnet_sim::{BuiltSystem, FaultSchedule, InternMode};
use cocnet_topology::{AscentPolicy, ClusterSpec, NetworkCharacteristics, SystemSpec};

/// 24-node heterogeneous org: m = 4, cluster heights (1, 2, 2, 1) — the
/// smallest shape with unequal clusters and a 2-level ICN1 in the mix.
fn hetero24() -> SystemSpec {
    let net1 = NetworkCharacteristics::new(800.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(400.0, 0.05, 0.01).unwrap();
    let clusters = [1u32, 2, 2, 1]
        .into_iter()
        .map(|n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
            topology: Default::default(),
        })
        .collect();
    SystemSpec::new(4, clusters, net1).unwrap()
}

/// 112-node org: m = 8, eight clusters of mixed heights — wider switches,
/// more members per leaf, so injection recovery is exercised for j > 1.
fn wide112() -> SystemSpec {
    let net1 = NetworkCharacteristics::new(1000.0, 0.02, 0.01).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.04, 0.03).unwrap();
    let clusters = [1u32, 2, 1, 1, 2, 1, 1, 1]
        .into_iter()
        .map(|n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
            topology: Default::default(),
        })
        .collect();
    SystemSpec::new(8, clusters, net1).unwrap()
}

/// Builds `spec` both ways and compares every ordered pair exhaustively.
fn assert_modes_agree(spec: &SystemSpec, policy: AscentPolicy, faults: &FaultSchedule) {
    let eager = BuiltSystem::try_build_full(spec, 256.0, policy, faults, InternMode::Eager)
        .expect("eager build");
    let classed = BuiltSystem::try_build_full(spec, 256.0, policy, faults, InternMode::Classed)
        .expect("classed build");
    assert_eq!(eager.route_table().mode(), InternMode::Eager);
    assert_eq!(classed.route_table().mode(), InternMode::Classed);
    let n = eager.total_nodes();
    assert_eq!(n, classed.total_nodes());
    let (et, ct) = (eager.route_table(), classed.route_table());
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let ctx = format!("{policy:?} {src}->{dst}");
            assert_eq!(
                et.is_unreachable(src, dst),
                ct.is_unreachable(src, dst),
                "{ctx}: reachability"
            );
            let (er, cr) = (et.route_ref(src, dst), ct.route_ref(src, dst));
            assert_eq!(et.num_segments(er), ct.num_segments(cr), "{ctx}: segments");
            for k in 0..et.num_segments(er) {
                let (em, cm) = (et.seg_meta(er, k), ct.seg_meta(cr, k));
                assert_eq!(em.len, cm.len, "{ctx} seg {k}: len");
                assert_eq!(
                    em.sum_t.to_bits(),
                    cm.sum_t.to_bits(),
                    "{ctx} seg {k}: sum_t {} vs {}",
                    em.sum_t,
                    cm.sum_t
                );
                assert_eq!(
                    em.bottleneck_t.to_bits(),
                    cm.bottleneck_t.to_bits(),
                    "{ctx} seg {k}: bottleneck_t {} vs {}",
                    em.bottleneck_t,
                    cm.bottleneck_t
                );
                assert_eq!(
                    et.segment_channels(em),
                    ct.segment_channels(cm),
                    "{ctx} seg {k}: channels"
                );
            }
        }
    }
}

fn all_policies() -> [AscentPolicy; 2] {
    [AscentPolicy::TrailingDigits, AscentPolicy::MirrorDescent]
}

#[test]
fn classed_matches_eager_without_faults() {
    for spec in [hetero24(), wide112()] {
        for policy in all_policies() {
            assert_modes_agree(&spec, policy, &FaultSchedule::default());
        }
    }
}

#[test]
fn classed_matches_eager_under_static_link_faults() {
    // Channel 0 is node 0's injection channel (graphs allocate node↔leaf
    // links first, in node order), so this exercises the classed table's
    // per-pair injection demotion as well as trunk masking; the other two
    // ids land inside the shared trunk.
    let faults = FaultSchedule {
        links: vec![0, 7, 11],
        ..FaultSchedule::default()
    };
    for spec in [hetero24(), wide112()] {
        for policy in all_policies() {
            assert_modes_agree(&spec, policy, &faults);
        }
    }
}

#[test]
fn classed_matches_eager_under_fractional_faults() {
    // A deterministic pseudorandom 30% of all physical links fail from
    // time 0 — enough to disconnect some pairs, so both tables must also
    // agree on which routes collapse to empty (unreachable) segments.
    let faults = FaultSchedule {
        link_fraction: 0.3,
        ..FaultSchedule::default()
    };
    for spec in [hetero24(), wide112()] {
        for policy in all_policies() {
            assert_modes_agree(&spec, policy, &faults);
        }
    }
}
