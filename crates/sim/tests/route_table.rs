//! Property tests for the interned [`RouteTable`]: for arbitrary
//! heterogeneous systems and both ascent policies, the table must
//! reproduce the legacy `segments_for` construction **exactly** — channel
//! ids, traversal order, and bitwise `sum_t`/`bottleneck_t` — for every
//! (src, dst) pair.

use cocnet_sim::BuiltSystem;
use cocnet_topology::{AscentPolicy, ClusterSpec, NetworkCharacteristics, SystemSpec};
use proptest::prelude::*;

/// Random heterogeneous-but-valid system: m ∈ {4, 8}, tree-sized cluster
/// count, per-cluster heights drawn independently, Table 2-ish networks
/// with random bandwidths. Sizes are capped (≤ a few hundred nodes) so
/// the exhaustive all-pairs comparison stays fast.
fn arb_system() -> impl Strategy<Value = SystemSpec> {
    (0u32..2).prop_flat_map(|mi| {
        let m = [4u32, 8][mi as usize];
        // m = 4 permits two ICN2 levels and taller clusters; m = 8 sticks
        // to one level and low clusters to bound the node count.
        let (n_c, max_height) = if m == 4 {
            (1u32..=2, 3u32)
        } else {
            (1u32..=1, 2u32)
        };
        (
            Just(m),
            n_c,
            100.0f64..1000.0,
            100.0f64..1000.0,
            prop::collection::vec(1u32..=max_height, 2..9),
        )
            .prop_map(|(m, n_c, bw1, bw2, heights)| {
                let count = 2 * (m as usize / 2).pow(n_c);
                let net1 = NetworkCharacteristics::new(bw1, 0.01, 0.02).unwrap();
                let net2 = NetworkCharacteristics::new(bw2, 0.05, 0.01).unwrap();
                let clusters: Vec<ClusterSpec> = (0..count)
                    .map(|i| ClusterSpec {
                        n: heights[i % heights.len()],
                        icn1: net1,
                        ecn1: net2,
                        topology: Default::default(),
                    })
                    .collect();
                SystemSpec::new(m, clusters, net1).unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn interned_segments_match_legacy_for_every_pair(
        spec in arb_system(),
        flit_bytes in 64.0f64..1024.0,
        policy_idx in 0usize..2,
    ) {
        let policy = [AscentPolicy::TrailingDigits, AscentPolicy::MirrorDescent][policy_idx];
        let built = BuiltSystem::build_with_policy(&spec, flit_bytes, policy);
        let rt = built.route_table();
        for src in 0..built.total_nodes() {
            for dst in 0..built.total_nodes() {
                if src == dst {
                    continue;
                }
                let legacy = built.segments_for(src, dst);
                let r = rt.route_ref(src, dst);
                prop_assert_eq!(rt.num_segments(r) as usize, legacy.len());
                for (k, seg) in legacy.iter().enumerate() {
                    let m = rt.seg_meta(r, k as u32);
                    // Channel ids, in traversal order.
                    prop_assert_eq!(rt.segment_channels(m), seg.chans.as_slice());
                    // Bitwise agreement of the precomputed metrics with a
                    // fresh accumulation in the same order.
                    let mut sum = 0.0;
                    let mut bot = 0.0f64;
                    for &c in &seg.chans {
                        let t = built.chan_time(c);
                        sum += t;
                        bot = bot.max(t);
                    }
                    prop_assert_eq!(sum.to_bits(), m.sum_t.to_bits());
                    prop_assert_eq!(bot.to_bits(), m.bottleneck_t.to_bits());
                }
            }
        }
    }

    #[test]
    fn route_refs_are_unique_per_pair(spec in arb_system()) {
        let built = BuiltSystem::build(&spec, 256.0);
        let rt = built.route_table();
        let n = built.total_nodes();
        let mut seen = std::collections::HashSet::new();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                prop_assert!(seen.insert(rt.route_ref(src, dst)));
            }
        }
        prop_assert_eq!(seen.len(), n * (n - 1));
    }
}
