//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the narrow slice of the `rand` 0.9 API its sources use: the [`Rng`]
//! extension methods `random` / `random_range`, [`SeedableRng::seed_from_u64`],
//! and a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64).
//!
//! Determinism is part of the simulator's contract — the same seed must
//! yield bit-identical runs on every platform — so the generator is fixed
//! here rather than deferring to an external crate's choice.

/// Low-level entropy source: everything above is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an `Rng` via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, n)` by rejection sampling.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    // Rejection zone: multiples of n fit wholly below `zone`.
    let zone = u64::MAX - (u64::MAX % n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone || zone == u64::MAX {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type (`f64` in `[0, 1)`, full-width
    /// integers, a fair `bool`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Uniform draw from a range, unbiased for integers.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! The deterministic standard generator.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, and fixed forever so seeded
    /// simulations stay bit-identical across platforms and releases.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
        let mut counts = [0usize; 7];
        for _ in 0..14_000 {
            counts[rng.random_range(0..7usize)] += 1;
        }
        for &c in &counts {
            assert!((1700..2300).contains(&c), "biased bucket: {c}");
        }
        for _ in 0..1000 {
            let v = rng.random_range(3..=5u32);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
