//! Offline stand-in for `proptest`.
//!
//! Supports the strategy combinators this workspace's property tests use —
//! numeric ranges, tuples, `prop_map`, `prop::collection::vec` — and the
//! [`proptest!`] macro. Each `#[test]` runs `PROPTEST_CASES` (default 64)
//! deterministic cases: the RNG is seeded from the test's name, so a
//! failure reproduces exactly on re-run. No shrinking — the failing inputs
//! are printed instead via panic context from `prop_assert!`.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Deterministic case generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from the test name (FNV-1a) so every test has its own
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Number of cases per property (env `PROPTEST_CASES`, default 64).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Per-property configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: usize,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: cases() }
    }
}

/// What one generated case did: the [`proptest!`] body closure returns
/// this so `prop_assume!` can reject without panicking.
pub enum CaseOutcome {
    /// Ran to completion.
    Pass,
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}
int_strategies!(usize, u64, u32, u16, u8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().random_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// `prop::…` namespace, as re-exported by the prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng as _;

        /// Strategy for `Vec<T>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max_exclusive: usize,
        }

        /// `vec(element, 1..12)` — lengths uniform in the given range.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy {
                element,
                min: len.start,
                max_exclusive: len.end,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.rng().random_range(self.min..self.max_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{prop, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts inside a property body (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Rejects the current case (skips it) when the condition is false. Only
/// meaningful directly inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return $crate::CaseOutcome::Reject;
        }
    };
}

/// Declares property tests: each becomes a `#[test]` running
/// config-many deterministic cases (default [`cases`], overridable with a
/// leading `#![proptest_config(…)]`). No shrinking — failing inputs are
/// printed verbatim instead.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let mut __inputs: Vec<String> = Vec::new();
                    $(
                        let __generated = $crate::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push(format!("  {} = {:?}", stringify!($arg), &__generated));
                        let $arg = __generated;
                    )*
                    let __case_fn = move || -> $crate::CaseOutcome {
                        $body
                        $crate::CaseOutcome::Pass
                    };
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__case_fn)) {
                        Ok(_) => {}
                        Err(__payload) => {
                            eprintln!(
                                "proptest case {}/{} failed in {}; inputs:",
                                __case + 1,
                                __config.cases,
                                stringify!($name),
                            );
                            for __line in &__inputs {
                                eprintln!("{__line}");
                            }
                            ::std::panic::resume_unwind(__payload);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let s = 0.0f64..1.0;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 0.5f64..2.5,
            n in 3u32..=5,
            xs in prop::collection::vec(0u64..10, 2..6),
        ) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((3..=5).contains(&n));
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn prop_map_and_tuples_compose(
            pair in (1u32..4, 10u64..20).prop_map(|(a, b)| a as u64 + b),
        ) {
            prop_assert!((11..23).contains(&pair));
        }
    }
}
