//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment is offline, so `syn`/`quote` are unavailable; the
//! derive input is parsed directly from `proc_macro::TokenStream`. Scope is
//! exactly what this workspace derives on: non-generic structs (named,
//! tuple, unit) and enums (unit, tuple, struct variants), serialized in
//! serde's default layout — objects keyed by field name, externally tagged
//! enums, bare strings for unit variants, transparent newtypes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Skips one attribute (`#` already consumed callers pass the iterator at
/// `#`): consumes the `#` and the following bracket group.
fn skip_attr(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    it.next(); // '#'
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
        other => panic!("malformed attribute near {other:?}"),
    }
}

fn skip_attrs_and_vis(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(it),
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                // pub(crate) / pub(super) …
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Consumes tokens up to (and including) the next comma that sits outside
/// any `<…>` nesting. Returns false when the stream ended instead.
fn skip_type_until_comma(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut angle: i32 = 0;
    for tok in it.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected ':' after field {id}, found {other:?}"),
                }
                if !skip_type_until_comma(&mut it) {
                    break;
                }
            }
            Some(other) => panic!("unexpected token in fields: {other}"),
        }
    }
    names
}

fn parse_tuple_arity(body: TokenStream) -> usize {
    let mut arity = 0;
    let mut it = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        arity += 1;
        if !skip_type_until_comma(&mut it) {
            break;
        }
    }
    arity
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("unexpected token in enum body: {other}"),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream());
                it.next();
                Fields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                it.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        match it.next() {
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                skip_type_until_comma(&mut it);
            }
            Some(other) => panic!("unexpected token after variant {name}: {other}"),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    let is_enum = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match it.next() {
                Some(TokenTree::Group(_)) => {}
                other => panic!("malformed attribute near {other:?}"),
            },
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "pub" => {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                "struct" => break false,
                "enum" => break true,
                _ => {}
            },
            Some(_) => {}
            None => panic!("derive input has no struct or enum"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic type {name}");
        }
    }
    let kind = if is_enum {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(parse_tuple_arity(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => panic!("expected struct body, found {other:?}"),
        }
    };
    Input { name, kind }
}

// ---- Serialize -------------------------------------------------------------

fn ser_named(path: &str, fields: &[String], access: impl Fn(&str) -> String) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect();
    let _ = path;
    format!("::serde::Value::Obj(vec![{}])", pairs.join(""))
}

/// `#[derive(Serialize)]`: emits a `serde::Serialize` impl converting the
/// type into the shim's `Value` model (serde's default JSON layout).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => ser_named(name, fields, |f| format!("&self.{f}")),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(""))
        }
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(","),
                                items.join("")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(",");
                            let inner = ser_named(vname, fields, |f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vname}\"), {inner})]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(""))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize) generated invalid code")
}

// ---- Deserialize -----------------------------------------------------------

fn de_named(ty: &str, ctor: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de_field({source}, \"{ty}\", \"{f}\")?,"))
        .collect();
    format!("{ctor} {{ {} }}", inits.join(""))
}

/// `#[derive(Deserialize)]`: emits a `serde::Deserialize` impl rebuilding
/// the type from the shim's `Value` model, with path-labelled errors.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let build = de_named(name, name, fields, "v");
            format!(
                "match v {{\n\
                     ::serde::Value::Obj(_) => ::std::result::Result::Ok({build}),\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"object\", other)),\n\
                 }}"
            )
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de_element(items, \"{name}\", {i})?,"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Arr(items) => ::std::result::Result::Ok({name}({})),\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"array\", other)),\n\
                 }}",
                items.join("")
            )
        }
        Kind::Struct(Fields::Unit) => format!("{{ let _ = v; ::std::result::Result::Ok({name}) }}"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    let full = format!("{name}::{vname}");
                    match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({full}(::serde::Deserialize::from_value(inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::de_element(items, \"{full}\", {i})?,"))
                                .collect();
                            format!(
                                "\"{vname}\" => match inner {{\n\
                                     ::serde::Value::Arr(items) => ::std::result::Result::Ok({full}({})),\n\
                                     other => ::std::result::Result::Err(::serde::DeError::expected(\"array\", other)),\n\
                                 }},",
                                items.join("")
                            )
                        }
                        Fields::Named(fields) => {
                            let build = de_named(&full, &full, fields, "inner");
                            format!(
                                "\"{vname}\" => match inner {{\n\
                                     ::serde::Value::Obj(_) => ::std::result::Result::Ok({build}),\n\
                                     other => ::std::result::Result::Err(::serde::DeError::expected(\"object\", other)),\n\
                                 }},"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::Value::Obj(tagged) if tagged.len() == 1 => {{\n\
                         let (tag, inner) = &tagged[0];\n\
                         match tag.as_str() {{\n\
                             {data}\n\
                             other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"{name} variant\", other)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("derive(Deserialize) generated invalid code")
}
