//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment is offline, so `syn`/`quote` are unavailable; the
//! derive input is parsed directly from `proc_macro::TokenStream`. Scope is
//! exactly what this workspace derives on: non-generic structs (named,
//! tuple, unit) and enums (unit, tuple, struct variants), serialized in
//! serde's default layout — objects keyed by field name, externally tagged
//! enums, bare strings for unit variants, transparent newtypes.
//!
//! The subset of `#[serde(...)]` attributes the scenario layer relies on is
//! honoured on deserialization (serialization always emits every field):
//!
//! * container `#[serde(deny_unknown_fields)]` — named structs and named
//!   enum variants reject JSON keys that match no field, so typos in
//!   committed scenario files fail loudly instead of silently taking a
//!   default;
//! * container `#[serde(default)]` — missing fields are taken from the
//!   struct's `Default::default()` instance;
//! * field `#[serde(default)]` — a missing field becomes the *field
//!   type's* `Default::default()`;
//! * field `#[serde(default = "path")]` — a missing field becomes `path()`.
//!
//! Any other `#[serde(...)]` content is rejected at compile time rather
//! than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing named field is filled during deserialization.
#[derive(Clone, PartialEq)]
enum FieldDefault {
    /// Field is required; its absence is an error.
    Required,
    /// `#[serde(default)]`: use the field type's `Default::default()`.
    TypeDefault,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

/// Container-level `#[serde(...)]` switches.
#[derive(Default, Clone, Copy)]
struct ContainerAttrs {
    deny_unknown_fields: bool,
    /// Container `#[serde(default)]`: missing fields come from the
    /// struct's own `Default::default()` value.
    default: bool,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    attrs: ContainerAttrs,
    kind: Kind,
}

/// Field-level `#[serde(...)]` switches gathered while skipping attributes.
#[derive(Default)]
struct FieldAttrs {
    default: Option<FieldDefault>,
}

/// Where a `#[serde(...)]` attribute sits — each switch is only legal at
/// one position, and a misplaced switch is a compile error rather than a
/// silent no-op.
enum AttrTarget<'a> {
    /// On the struct/enum itself.
    Container(&'a mut ContainerAttrs),
    /// On a named field (or an enum variant, where no switch is legal).
    Field(&'a mut FieldAttrs),
}

/// Parses the *content* of one `#[serde(...)]` attribute (the token stream
/// inside the parentheses) into the recognised switches. Unrecognised or
/// misplaced switches are a compile error — silently ignoring them would
/// defeat the point of hygiene attributes.
fn parse_serde_args(stream: TokenStream, target: &mut AttrTarget) {
    let mut it = stream.into_iter().peekable();
    while let Some(tok) = it.next() {
        match tok {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "deny_unknown_fields" => match target {
                    AttrTarget::Container(container) => container.deny_unknown_fields = true,
                    AttrTarget::Field(_) => {
                        panic!("serde(deny_unknown_fields) is a container attribute, not a field attribute")
                    }
                },
                "default" => {
                    // Bare `default`, or `default = "path"`.
                    let mut path = None;
                    if let Some(TokenTree::Punct(p)) = it.peek() {
                        if p.as_char() == '=' {
                            it.next();
                            match it.next() {
                                Some(TokenTree::Literal(lit)) => {
                                    let s = lit.to_string();
                                    path = Some(
                                        s.strip_prefix('"')
                                            .and_then(|s| s.strip_suffix('"'))
                                            .unwrap_or_else(|| {
                                                panic!("serde(default = …) expects a string literal, got {s}")
                                            })
                                            .to_string(),
                                    );
                                }
                                other => panic!("serde(default = …) expects a string literal, got {other:?}"),
                            }
                        }
                    }
                    match target {
                        AttrTarget::Container(container) => {
                            if path.is_some() {
                                panic!("container-level serde(default = \"path\") is not supported by the shim (use the Default impl)");
                            }
                            container.default = true;
                        }
                        AttrTarget::Field(field) => {
                            field.default = Some(match path {
                                Some(path) => FieldDefault::Path(path),
                                None => FieldDefault::TypeDefault,
                            });
                        }
                    }
                }
                other => panic!("unsupported serde attribute {other:?} (shim supports default, default = \"path\", deny_unknown_fields)"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("malformed serde attribute near {other}"),
        }
    }
}

/// Parses one already-extracted `[...]` attribute group: `serde(...)`
/// content goes into the target, everything else is ignored. The single
/// extraction point shared by field/variant position ([`skip_attr`]) and
/// container position (`parse_input`).
fn parse_attr_group(group: &proc_macro::Group, target: &mut AttrTarget) {
    let mut inner = group.stream().into_iter();
    if let Some(TokenTree::Ident(id)) = inner.next() {
        if id.to_string() == "serde" {
            match inner.next() {
                Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
                    parse_serde_args(args.stream(), target);
                }
                other => panic!("malformed serde attribute near {other:?}"),
            }
        }
    }
}

/// Skips one attribute (callers pass the iterator at `#`): consumes the `#`
/// and the following bracket group, routing `#[serde(...)]` content into
/// the given target.
fn skip_attr(
    it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    target: &mut AttrTarget,
) {
    it.next(); // '#'
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
            parse_attr_group(&g, target);
        }
        other => panic!("malformed attribute near {other:?}"),
    }
}

fn skip_attrs_and_vis(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> FieldAttrs {
    let mut field = FieldAttrs::default();
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                skip_attr(it, &mut AttrTarget::Field(&mut field))
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                // pub(crate) / pub(super) …
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return field,
        }
    }
}

/// Consumes tokens up to (and including) the next comma that sits outside
/// any `<…>` nesting. Returns false when the stream ended instead.
fn skip_type_until_comma(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut angle: i32 = 0;
    for tok in it.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        let attrs = skip_attrs_and_vis(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                fields.push(Field {
                    name: id.to_string(),
                    default: attrs.default.unwrap_or(FieldDefault::Required),
                });
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected ':' after field {id}, found {other:?}"),
                }
                if !skip_type_until_comma(&mut it) {
                    break;
                }
            }
            Some(other) => panic!("unexpected token in fields: {other}"),
        }
    }
    fields
}

/// [`skip_attrs_and_vis`] for positions where no serde switch can take
/// effect (tuple-struct fields, enum variants): a `#[serde(default)]`
/// there would be a silent no-op, so it panics instead.
fn skip_attrs_no_serde(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>, pos: &str) {
    let attrs = skip_attrs_and_vis(it);
    if attrs.default.is_some() {
        panic!("serde(default) on {pos} is not supported by the shim (named struct fields only)");
    }
}

fn parse_tuple_arity(body: TokenStream) -> usize {
    let mut arity = 0;
    let mut it = body.into_iter().peekable();
    loop {
        skip_attrs_no_serde(&mut it, "a tuple-struct field");
        if it.peek().is_none() {
            break;
        }
        arity += 1;
        if !skip_type_until_comma(&mut it) {
            break;
        }
    }
    arity
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attrs_no_serde(&mut it, "an enum variant");
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("unexpected token in enum body: {other}"),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream());
                it.next();
                Fields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                it.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        match it.next() {
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                skip_type_until_comma(&mut it);
            }
            Some(other) => panic!("unexpected token after variant {name}: {other}"),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    let mut attrs = ContainerAttrs::default();
    let is_enum = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    parse_attr_group(&g, &mut AttrTarget::Container(&mut attrs));
                }
                other => panic!("malformed attribute near {other:?}"),
            },
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "pub" => {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                "struct" => break false,
                "enum" => break true,
                _ => {}
            },
            Some(_) => {}
            None => panic!("derive input has no struct or enum"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic type {name}");
        }
    }
    let kind = if is_enum {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(parse_tuple_arity(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => panic!("expected struct body, found {other:?}"),
        }
    };
    Input { name, attrs, kind }
}

// ---- Serialize -------------------------------------------------------------

fn ser_named(path: &str, fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            let name = &f.name;
            format!(
                "(::std::string::String::from(\"{name}\"), ::serde::Serialize::to_value({})),",
                access(name)
            )
        })
        .collect();
    let _ = path;
    format!("::serde::Value::Obj(vec![{}])", pairs.join(""))
}

/// `#[derive(Serialize)]`: emits a `serde::Serialize` impl converting the
/// type into the shim's `Value` model (serde's default JSON layout).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => ser_named(name, fields, |f| format!("&self.{f}")),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(""))
        }
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(","),
                                items.join("")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(",");
                            let inner = ser_named(vname, fields, |f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vname}\"), {inner})]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(""))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize) generated invalid code")
}

// ---- Deserialize -----------------------------------------------------------

/// Builds the `Ctor { field: …, }` expression for a named struct or enum
/// variant, honouring per-field defaults and the container attributes.
/// When `attrs.default` is set the caller must have a `__serde_default`
/// binding of the container type in scope.
fn de_named(ty: &str, ctor: &str, fields: &[Field], source: &str, attrs: ContainerAttrs) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let name = &f.name;
            let missing = match (&f.default, attrs.default) {
                (FieldDefault::Path(path), _) => Some(format!("{path}()")),
                (FieldDefault::TypeDefault, _) => {
                    Some("::std::default::Default::default()".to_string())
                }
                (FieldDefault::Required, true) => Some(format!("__serde_default.{name}")),
                (FieldDefault::Required, false) => None,
            };
            match missing {
                Some(fallback) => format!(
                    "{name}: match {source}.get(\"{name}\") {{\n\
                         ::std::option::Option::Some(__inner) => ::serde::de_field_val(__inner, \"{ty}\", \"{name}\")?,\n\
                         ::std::option::Option::None => {fallback},\n\
                     }},"
                ),
                None => format!("{name}: ::serde::de_field({source}, \"{ty}\", \"{name}\")?,"),
            }
        })
        .collect();
    format!("{ctor} {{ {} }}", inits.join(""))
}

/// The `check_unknown_fields` guard for a named struct/variant, or an empty
/// string when the container doesn't ask for it.
fn de_deny_guard(ty: &str, fields: &[Field], source: &str, attrs: ContainerAttrs) -> String {
    if !attrs.deny_unknown_fields {
        return String::new();
    }
    let known: Vec<String> = fields.iter().map(|f| format!("\"{}\",", f.name)).collect();
    format!(
        "::serde::check_unknown_fields({source}, \"{ty}\", &[{}])?;",
        known.join("")
    )
}

/// `#[derive(Deserialize)]`: emits a `serde::Deserialize` impl rebuilding
/// the type from the shim's `Value` model, with path-labelled errors.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let build = de_named(name, name, fields, "v", input.attrs);
            let guard = de_deny_guard(name, fields, "v", input.attrs);
            let default_binding = if input.attrs.default {
                format!("let __serde_default: {name} = ::std::default::Default::default();")
            } else {
                String::new()
            };
            format!(
                "match v {{\n\
                     ::serde::Value::Obj(_) => {{ {guard} {default_binding} ::std::result::Result::Ok({build}) }},\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"object\", other)),\n\
                 }}"
            )
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de_element(items, \"{name}\", {i})?,"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Arr(items) => ::std::result::Result::Ok({name}({})),\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"array\", other)),\n\
                 }}",
                items.join("")
            )
        }
        Kind::Struct(Fields::Unit) => format!("{{ let _ = v; ::std::result::Result::Ok({name}) }}"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    let full = format!("{name}::{vname}");
                    match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({full}(::serde::Deserialize::from_value(inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::de_element(items, \"{full}\", {i})?,"))
                                .collect();
                            format!(
                                "\"{vname}\" => match inner {{\n\
                                     ::serde::Value::Arr(items) => ::std::result::Result::Ok({full}({})),\n\
                                     other => ::std::result::Result::Err(::serde::DeError::expected(\"array\", other)),\n\
                                 }},",
                                items.join("")
                            )
                        }
                        Fields::Named(fields) => {
                            // Enum variants honour field defaults and the
                            // container's deny_unknown_fields, but not the
                            // container default (no per-variant Default).
                            let variant_attrs = ContainerAttrs {
                                default: false,
                                ..input.attrs
                            };
                            let build = de_named(&full, &full, fields, "inner", variant_attrs);
                            let guard = de_deny_guard(&full, fields, "inner", variant_attrs);
                            format!(
                                "\"{vname}\" => match inner {{\n\
                                     ::serde::Value::Obj(_) => {{ {guard} ::std::result::Result::Ok({build}) }},\n\
                                     other => ::std::result::Result::Err(::serde::DeError::expected(\"object\", other)),\n\
                                 }},"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::Value::Obj(tagged) if tagged.len() == 1 => {{\n\
                         let (tag, inner) = &tagged[0];\n\
                         match tag.as_str() {{\n\
                             {data}\n\
                             other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"{name} variant\", other)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("derive(Deserialize) generated invalid code")
}
