//! Offline stand-in for `serde_json`: serializes the serde shim's
//! [`Value`] model to JSON text and parses it back.
//!
//! Supports exactly the JSON this workspace produces and stores: objects,
//! arrays, strings with standard escapes, numbers (including scientific
//! notation), booleans, and null. Numbers print like serde_json's: integers
//! bare, floats via the shortest round-trippable representation Rust's
//! `{:?}` for `f64` provides.

use serde::{DeError, Deserialize, Serialize, Value};

/// Parse or structure error, compatible with `serde_json::Error` usage.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

// ---- serialization ---------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    // `{:?}` is Rust's shortest round-trip float formatting; keep
    // integer-valued floats distinguishable (1.0, not 1), like serde_json.
    format!("{x:?}")
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&number_to_string(*x)),
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => write_seq(
            items.iter(),
            |item, out, lvl| write_value(item, out, indent, lvl),
            '[',
            ']',
            out,
            indent,
            level,
        ),
        Value::Obj(fields) => write_seq(
            fields.iter(),
            |(k, item), out, lvl| {
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, lvl);
            },
            '{',
            '}',
            out,
            indent,
            level,
        ),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(T, &mut String, usize),
    open: char,
    close: char,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) {
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_item(item, out, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut saw_float_syntax = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    saw_float_syntax = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() {
            return Err(self.err("expected a value"));
        }
        if !saw_float_syntax {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::I64(1), Value::F64(2.5)])),
            ("b".into(), Value::Str("x \"y\"\n".into())),
            ("c".into(), Value::Null),
            ("d".into(), Value::Bool(true)),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
        assert!(pretty.contains("\n  \"a\": [\n"));
    }

    #[test]
    fn floats_keep_precision_and_ints_stay_ints() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        let x = 0.1f64 + 0.2;
        let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(x, back);
        let sci: f64 = from_str("2.5e-4").unwrap();
        assert_eq!(sci, 2.5e-4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,,]").is_err());
        assert!(from_str::<Value>("nulll").is_err());
    }
}
