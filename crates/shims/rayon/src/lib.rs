//! Offline stand-in for `rayon`.
//!
//! Implements the slice of the rayon API this workspace uses — `par_iter`
//! on slices, `into_par_iter` on vectors and integer ranges, `map`,
//! `collect`, `for_each`, `sum` — over `std::thread::scope` with a shared
//! atomic work index (dynamic scheduling, so one slow sweep point near
//! saturation does not serialize the whole batch behind a static chunking
//! choice).
//!
//! Two guarantees the experiment harness leans on:
//!
//! * **Order preservation**: `collect` returns results in input order
//!   regardless of completion order, so parallel sweeps are bit-identical
//!   to their serial counterparts.
//! * **Panic propagation**: a panicking task panics the caller, matching
//!   rayon's behaviour under `cargo test`.
//!
//! Thread count comes from `RAYON_NUM_THREADS` when set (rayon's own
//! environment knob), else `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// `use rayon::prelude::*` — everything callers need.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads the pool will use.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The executor: applies `f` to every index in `0..n`, distributing
/// indices dynamically over scoped threads, returning results in order.
fn run_indexed<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = &AtomicUsize::new(0);
    let f = &f;
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|slot| slot.expect("every index produced a result"))
        .collect()
}

/// A parallel pipeline: a random-access source plus mapped stages. The
/// whole composed chain runs per index on the worker threads, so chained
/// `map`s parallelize as one unit.
pub trait ParallelIterator: Sized + Sync {
    /// The element type produced for each index.
    type Item: Send;

    /// Number of items in the source.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the item at `i`. Called at most once per index, possibly
    /// from several threads concurrently (hence `&self`).
    fn item_at(&self, i: usize) -> Self::Item;

    /// Parallel map.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Parallel side-effecting loop.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let this = &self;
        let f = &f;
        run_indexed(this.len(), move |i| f(this.item_at(i)));
    }

    /// Runs the pipeline and collects into any `FromIterator` container,
    /// preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        let this = &self;
        run_indexed(this.len(), move |i| this.item_at(i))
            .into_iter()
            .collect()
    }

    /// Parallel sum.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.collect::<Vec<_>>().into_iter().sum()
    }

    /// Hint accepted for rayon compatibility; the dynamic scheduler
    /// ignores it.
    fn with_min_len(self, _len: usize) -> Self {
        self
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn item_at(&self, i: usize) -> &'a T {
        &self.items[i]
    }
}

/// Owning parallel iterator (vectors, ranges). Items are parked in
/// per-slot mutexes so `item_at(&self)` can move each one out exactly once.
pub struct IntoParIter<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn item_at(&self, i: usize) -> T {
        self.slots[i]
            .lock()
            .expect("slot lock poisoned")
            .take()
            .expect("each index visited once")
    }
}

/// A mapped pipeline stage.
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I: ParallelIterator, R: Send, F: Fn(I::Item) -> R + Sync> ParallelIterator for Map<I, F> {
    type Item = R;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn item_at(&self, i: usize) -> R {
        (self.f)(self.inner.item_at(i))
    }
}

/// `.par_iter()` on slices and anything that derefs to one.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Sync + 'a;

    /// Returns a borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Consumes `self` into an owning parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter {
            slots: self.into_iter().map(|x| Mutex::new(Some(x))).collect(),
        }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> IntoParIter<$t> {
                IntoParIter {
                    slots: self.map(|x| Mutex::new(Some(x))).collect(),
                }
            }
        }
    )*};
}
range_into_par_iter!(usize, u64, u32);

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<u64> = (0..500).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<String> = (0..10usize)
            .into_par_iter()
            .map(|i| i * 3)
            .map(|i| format!("v{i}"))
            .collect();
        assert_eq!(out[3], "v9");
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn owning_iter_moves_items() {
        let strings: Vec<String> = vec!["a".to_string(), "b".to_string()]
            .into_par_iter()
            .map(|s| s + "!")
            .collect();
        assert_eq!(strings, vec!["a!", "b!"]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        if super::current_num_threads() < 2 {
            return; // single-core runner: nothing to assert
        }
        let ids: std::collections::HashSet<std::thread::ThreadId> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                std::thread::current().id()
            })
            .collect();
        assert!(ids.len() > 1, "work never left one thread");
    }

    #[test]
    fn sum_and_for_each() {
        let total: usize = (0..100usize).into_par_iter().sum();
        assert_eq!(total, 4950);
        let hits = std::sync::atomic::AtomicUsize::new(0);
        (0..25usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 25);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics() {
        let _: Vec<()> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                if i == 3 {
                    panic!("boom");
                }
            })
            .collect();
    }
}
