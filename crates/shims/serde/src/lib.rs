//! Offline stand-in for `serde`.
//!
//! The real serde models serialization as a visitor over a generic data
//! model; this shim collapses that to a concrete JSON-shaped [`Value`]
//! tree, which is all the workspace needs (its only format is JSON via
//! the sibling `serde_json` shim). The public surface kept compatible:
//!
//! * `use serde::{Serialize, Deserialize};` imports both the traits and
//!   the derive macros (same-name trick as real serde's `derive` feature);
//! * derived structs serialize as objects keyed by field name, enums as
//!   externally tagged values (unit variants as bare strings) — matching
//!   the wire format the topology round-trip tests pin down.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the concrete data model every `Serialize` /
/// `Deserialize` implementation converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `None` and non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization failure: a human-readable path + expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: extracts and deserializes one named struct field.
pub fn de_field<T: Deserialize>(v: &Value, strukt: &str, field: &str) -> Result<T, DeError> {
    match v.get(field) {
        Some(inner) => T::from_value(inner).map_err(|e| DeError(format!("{strukt}.{field}: {e}"))),
        None => Err(DeError(format!("{strukt}: missing field {field:?}"))),
    }
}

/// Derive-macro helper: deserializes an already-extracted field value,
/// labelling errors with the `struct.field` path (the `#[serde(default)]`
/// counterpart of [`de_field`], which takes the containing object).
pub fn de_field_val<T: Deserialize>(
    inner: &Value,
    strukt: &str,
    field: &str,
) -> Result<T, DeError> {
    T::from_value(inner).map_err(|e| DeError(format!("{strukt}.{field}: {e}")))
}

/// Derive-macro helper behind `#[serde(deny_unknown_fields)]`: rejects any
/// object key that matches no declared field, so typos in hand-written
/// JSON fail loudly instead of silently taking a default.
pub fn check_unknown_fields(v: &Value, strukt: &str, known: &[&str]) -> Result<(), DeError> {
    if let Value::Obj(fields) = v {
        for (key, _) in fields {
            if !known.contains(&key.as_str()) {
                return Err(DeError(format!(
                    "{strukt}: unknown field {key:?} (expected one of {known:?})"
                )));
            }
        }
    }
    Ok(())
}

/// Derive-macro helper: extracts and deserializes one tuple element.
pub fn de_element<T: Deserialize>(items: &[Value], strukt: &str, idx: usize) -> Result<T, DeError> {
    match items.get(idx) {
        Some(inner) => T::from_value(inner).map_err(|e| DeError(format!("{strukt}[{idx}]: {e}"))),
        None => Err(DeError(format!("{strukt}: missing element {idx}"))),
    }
}

// ---- primitive impls -------------------------------------------------------

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range")))?,
                    Value::F64(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => n as i64,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!("integer {wide} out of range")))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 { Value::I64(wide as i64) } else { Value::U64(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: u64 = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) => u64::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range")))?,
                    Value::F64(n) if n.fract() == 0.0 && (0.0..1.9e19).contains(&n) => n as u64,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!("integer {wide} out of range")))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() { Value::F64(x) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::F64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    // Round-trip of the non-finite → null encoding above.
                    Value::Null => Ok(<$t>::NAN),
                    ref other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => Ok(($(de_element::<$t>(items, "tuple", $n)?,)+)),
                    other => Err(DeError::expected("array", other)),
                }
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::INFINITY.to_value()).unwrap().is_nan());
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            <(f64, u32)>::from_value(&(2.5f64, 9u32).to_value()).unwrap(),
            (2.5, 9)
        );
    }

    #[test]
    fn errors_name_the_problem() {
        let err = u32::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected integer"));
        let err = de_field::<u32>(&Value::Obj(vec![]), "Spec", "m").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }
}
