//! Streaming (single-pass) moment accumulation.
//!
//! Implements Welford's online algorithm for numerically stable mean and
//! variance, plus min/max tracking. This is the workhorse accumulator used
//! by the simulator's latency sinks, where hundreds of thousands of samples
//! arrive one at a time and storing them all would be wasteful.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// ```
/// use cocnet_stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n − 1` denominator); `0.0` with < 2 samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); `0.0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`σ/√n`); `0.0` when empty.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest sample seen; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen; `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Two-sided confidence interval for the mean at `level` (see
    /// [`crate::mean_confidence_interval`] for the level handling).
    pub fn confidence_interval(&self, level: f64) -> crate::ConfidenceInterval {
        crate::mean_confidence_interval(self, level)
    }

    /// Whether the mean estimate already satisfies `target` — the
    /// convergence test of a sequential-stopping loop over i.i.d. samples
    /// (for autocorrelated streams use [`crate::BatchMeans::meets`]).
    pub fn meets(&self, target: &crate::Precision) -> bool {
        target.met_by(&self.confidence_interval(target.level))
    }

    /// Merges another accumulator into this one (parallel reduction).
    ///
    /// Uses the Chan et al. pairwise update so that
    /// `a.merge(&b)` equals pushing all of `b`'s samples into `a`.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn empty_is_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0 + 3.0).collect();
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let (mean, var) = naive_mean_var(&xs);
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).cos()).collect();
        let (a, b) = xs.split_at(123);
        let mut sa = OnlineStats::new();
        let mut sb = OnlineStats::new();
        for &x in a {
            sa.push(x);
        }
        for &x in b {
            sb.push(x);
        }
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        sa.merge(&sb);
        assert_eq!(sa.count(), whole.count());
        assert!((sa.mean() - whole.mean()).abs() < 1e-12);
        assert!((sa.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(sa.min(), whole.min());
        assert_eq!(sa.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(2.0);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn constant_stream_has_zero_variance() {
        let mut s = OnlineStats::new();
        for _ in 0..10_000 {
            s.push(7.25);
        }
        assert!((s.mean() - 7.25).abs() < 1e-12);
        assert!(s.variance().abs() < 1e-12);
    }
}
