//! Error metrics used when comparing model predictions against simulation.

/// Signed relative error of `predicted` with respect to `reference`:
/// `(predicted − reference) / reference`.
///
/// Returns `f64::NAN` when `reference == 0` (no meaningful relative error).
pub fn relative_error(predicted: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        f64::NAN
    } else {
        (predicted - reference) / reference
    }
}

/// Mean absolute percentage error over paired series, skipping pairs whose
/// reference value is zero. Returns `None` when no valid pairs exist or the
/// slices have different lengths.
pub fn mean_absolute_percentage_error(predicted: &[f64], reference: &[f64]) -> Option<f64> {
    if predicted.len() != reference.len() {
        return None;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&p, &r) in predicted.iter().zip(reference) {
        if r != 0.0 {
            sum += ((p - r) / r).abs();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_signs() {
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(90.0, 100.0) + 0.1).abs() < 1e-12);
        assert!(relative_error(1.0, 0.0).is_nan());
    }

    #[test]
    fn mape_basic() {
        let p = [110.0, 90.0];
        let r = [100.0, 100.0];
        let mape = mean_absolute_percentage_error(&p, &r).unwrap();
        assert!((mape - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mape_skips_zero_reference() {
        let p = [110.0, 5.0];
        let r = [100.0, 0.0];
        let mape = mean_absolute_percentage_error(&p, &r).unwrap();
        assert!((mape - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mape_mismatched_or_empty_is_none() {
        assert_eq!(mean_absolute_percentage_error(&[1.0], &[]), None);
        assert_eq!(mean_absolute_percentage_error(&[], &[]), None);
        assert_eq!(mean_absolute_percentage_error(&[1.0], &[0.0]), None);
    }
}
