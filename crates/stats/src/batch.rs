//! Batch-means analysis for autocorrelated sample streams.
//!
//! Latencies of consecutive messages through a queueing network are
//! positively correlated, so the naive CI from [`crate::OnlineStats`]
//! (which assumes i.i.d. samples) is too narrow near saturation. The
//! classic fix is the method of batch means: split the stream into `b`
//! contiguous batches, treat the batch averages as (approximately)
//! independent, and build the CI from them. This module also estimates the
//! lag-1 autocorrelation of the batch means, the standard diagnostic for
//! "are the batches long enough".

use crate::ci::{mean_confidence_interval, ConfidenceInterval};
use crate::online::OnlineStats;
use serde::{Deserialize, Serialize};

/// Streaming batch-means accumulator with a fixed batch size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current: OnlineStats,
    batch_means: Vec<f64>,
    overall: OnlineStats,
}

impl BatchMeans {
    /// Creates an accumulator with the given batch size (≥ 1).
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size >= 1, "batch size must be positive");
        Self {
            batch_size,
            current: OnlineStats::new(),
            batch_means: Vec::new(),
            overall: OnlineStats::new(),
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.overall.push(x);
        self.current.push(x);
        if self.current.count() == self.batch_size {
            self.batch_means.push(self.current.mean());
            self.current = OnlineStats::new();
        }
    }

    /// Number of completed batches.
    pub fn num_batches(&self) -> usize {
        self.batch_means.len()
    }

    /// The completed batch means.
    pub fn batch_means(&self) -> &[f64] {
        &self.batch_means
    }

    /// Overall sample mean (all samples, including an unfinished batch).
    pub fn mean(&self) -> f64 {
        self.overall.mean()
    }

    /// 95 % confidence interval built from the batch means. Requires at
    /// least two completed batches (else the half-width is infinite).
    pub fn ci95(&self) -> ConfidenceInterval {
        self.ci(0.95)
    }

    /// Confidence interval at `level` built from the batch means (the
    /// interval's *mean* is the batch-means mean, which differs from
    /// [`BatchMeans::mean`] while a batch is unfinished).
    pub fn ci(&self, level: f64) -> ConfidenceInterval {
        let mut stats = OnlineStats::new();
        for &m in &self.batch_means {
            stats.push(m);
        }
        mean_confidence_interval(&stats, level)
    }

    /// Whether the batch-means estimate already satisfies `target` — the
    /// convergence test of a sequential-stopping loop over one long
    /// autocorrelated run.
    pub fn meets(&self, target: &crate::Precision) -> bool {
        target.met_by(&self.ci(target.level))
    }

    /// Lag-1 autocorrelation of the batch means; `None` with < 3 batches.
    /// Values near 0 indicate the batches are long enough to be treated as
    /// independent; strongly positive values mean the CI is optimistic.
    pub fn lag1_autocorrelation(&self) -> Option<f64> {
        let n = self.batch_means.len();
        if n < 3 {
            return None;
        }
        let mean = self.batch_means.iter().sum::<f64>() / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n {
            let d = self.batch_means[i] - mean;
            den += d * d;
            if i + 1 < n {
                num += d * (self.batch_means[i + 1] - mean);
            }
        }
        if den == 0.0 {
            Some(0.0)
        } else {
            Some(num / den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_fill_and_roll() {
        let mut b = BatchMeans::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0] {
            b.push(x);
        }
        assert_eq!(b.num_batches(), 2);
        assert_eq!(b.batch_means(), &[2.0, 5.0]);
        assert!((b.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ci_requires_two_batches() {
        let mut b = BatchMeans::new(5);
        for x in 0..4 {
            b.push(x as f64);
        }
        assert!(b.ci95().half_width.is_infinite());
        for x in 0..10 {
            b.push(x as f64);
        }
        assert!(b.ci95().half_width.is_finite());
    }

    #[test]
    fn iid_stream_has_low_autocorrelation() {
        // A deterministic pseudo-random-ish stream with no drift.
        let mut b = BatchMeans::new(50);
        let mut x = 0.5f64;
        for _ in 0..10_000 {
            x = (x * 997.0 + 0.123).fract();
            b.push(x);
        }
        let rho = b.lag1_autocorrelation().unwrap();
        assert!(rho.abs() < 0.25, "rho = {rho}");
    }

    #[test]
    fn trending_stream_has_positive_autocorrelation() {
        // A ramp: consecutive batch means strictly increase.
        let mut b = BatchMeans::new(10);
        for i in 0..1_000 {
            b.push(i as f64);
        }
        let rho = b.lag1_autocorrelation().unwrap();
        assert!(rho > 0.8, "rho = {rho}");
    }

    #[test]
    fn constant_stream_autocorrelation_is_zero() {
        let mut b = BatchMeans::new(5);
        for _ in 0..100 {
            b.push(3.0);
        }
        assert_eq!(b.lag1_autocorrelation(), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        BatchMeans::new(0);
    }
}
