//! Confidence intervals for sample means.
//!
//! The simulator reports mean message latency from ~100 000 samples; at that
//! size the normal approximation is excellent, but the small-`n` unit tests
//! also exercise the Student-t correction, so we carry a compact t-table.

use crate::online::OnlineStats;
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Half-width of the interval; the interval is `mean ± half_width`.
    pub half_width: f64,
    /// Confidence level used, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// Relative half-width (`half_width / |mean|`); `∞` for a zero mean.
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Two-sided Student-t critical values for 95 % confidence, indexed by
/// degrees of freedom 1..=30. Beyond 30 d.o.f. we fall back to the normal
/// quantile 1.96.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Two-sided Student-t critical values for 99 % confidence, d.o.f. 1..=30.
const T_99: [f64; 30] = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
    2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
    2.771, 2.763, 2.756, 2.750,
];

fn critical_value(level: f64, dof: u64) -> f64 {
    let table: &[f64; 30] = if level >= 0.99 { &T_99 } else { &T_95 };
    let normal = if level >= 0.99 { 2.576 } else { 1.96 };
    if dof == 0 {
        f64::INFINITY
    } else if dof <= 30 {
        table[(dof - 1) as usize]
    } else {
        normal
    }
}

/// Computes a two-sided confidence interval for the mean of the samples in
/// `stats`. `level` is clamped to {0.95, 0.99}: anything `>= 0.99` uses the
/// 99 % table, everything else the 95 % one.
///
/// Returns an interval with infinite half-width when fewer than two samples
/// are available.
pub fn mean_confidence_interval(stats: &OnlineStats, level: f64) -> ConfidenceInterval {
    let n = stats.count();
    if n < 2 {
        return ConfidenceInterval {
            mean: stats.mean(),
            half_width: f64::INFINITY,
            level,
        };
    }
    let t = critical_value(level, n - 1);
    ConfidenceInterval {
        mean: stats.mean(),
        half_width: t * stats.std_error(),
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(xs: &[f64]) -> OnlineStats {
        let mut s = OnlineStats::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    #[test]
    fn small_sample_uses_t_table() {
        // n=4 -> dof=3 -> t=3.182
        let s = stats_of(&[1.0, 2.0, 3.0, 4.0]);
        let ci = mean_confidence_interval(&s, 0.95);
        let expected = 3.182 * s.std_error();
        assert!((ci.half_width - expected).abs() < 1e-12);
        assert!(ci.contains(2.5));
    }

    #[test]
    fn large_sample_uses_normal_quantile() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = stats_of(&xs);
        let ci = mean_confidence_interval(&s, 0.95);
        let expected = 1.96 * s.std_error();
        assert!((ci.half_width - expected).abs() < 1e-9);
    }

    #[test]
    fn higher_level_is_wider() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sqrt()).collect();
        let s = stats_of(&xs);
        let ci95 = mean_confidence_interval(&s, 0.95);
        let ci99 = mean_confidence_interval(&s, 0.99);
        assert!(ci99.half_width > ci95.half_width);
    }

    #[test]
    fn single_sample_is_infinite() {
        let s = stats_of(&[5.0]);
        let ci = mean_confidence_interval(&s, 0.95);
        assert!(ci.half_width.is_infinite());
        assert_eq!(ci.mean, 5.0);
    }

    #[test]
    fn interval_bounds_and_contains() {
        let ci = ConfidenceInterval {
            mean: 10.0,
            half_width: 2.0,
            level: 0.95,
        };
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert!(ci.contains(8.0));
        assert!(ci.contains(12.0));
        assert!(!ci.contains(12.001));
        assert!((ci.relative_half_width() - 0.2).abs() < 1e-12);
    }
}
