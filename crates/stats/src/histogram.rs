//! Fixed-width histogram over a closed range, with overflow/underflow bins.
//!
//! Used by the simulator to inspect the full latency *distribution* (the
//! analytical model only predicts the mean; the histogram is what lets the
//! validation harness explain discrepancies near saturation, where the
//! latency tail grows).

use serde::{Deserialize, Serialize};

/// A histogram with `bins` equal-width buckets spanning `[lo, hi)`, plus
/// dedicated underflow (`x < lo`) and overflow (`x >= hi`) counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` buckets.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(hi > lo, "hi must exceed lo");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Floating-point rounding can land exactly on `bins`; clamp.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Total number of recorded samples, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of samples below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of samples at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(low_edge, high_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Approximate quantile `q ∈ [0, 1]` by linear scan of in-range bins
    /// (under/overflow samples count toward the rank but resolve to the
    /// range bounds). Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        if rank <= self.underflow {
            return Some(self.lo);
        }
        let mut seen = self.underflow;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                // Midpoint of the bin is a reasonable point estimate.
                let (a, b) = self.bin_edges(i);
                return Some(0.5 * (a + b));
            }
        }
        Some(self.hi)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo bounds differ");
        assert_eq!(self.hi, other.hi, "histogram hi bounds differ");
        assert_eq!(self.counts.len(), other.counts.len(), "bin counts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn underflow_and_overflow() {
        let mut h = Histogram::new(1.0, 2.0, 4);
        h.record(0.0);
        h.record(2.0); // hi edge is exclusive -> overflow
        h.record(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_edges_cover_range() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_edges(0), (0.0, 25.0));
        assert_eq!(h.bin_edges(3), (75.0, 100.0));
    }

    #[test]
    fn quantile_median_of_uniform_fill() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() <= 1.0, "median {med} too far from 50");
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.0);
        b.record(11.0);
        a.merge(&b);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "bin counts differ")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn value_on_hi_boundary_never_panics() {
        let mut h = Histogram::new(0.0, 0.3, 3);
        // 0.3 - f64 epsilon dance: make sure index clamping works.
        h.record(0.29999999999999993);
        assert_eq!(h.total(), 1);
    }
}
