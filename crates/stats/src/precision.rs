//! Precision targets for sequential (adaptive) estimation.
//!
//! Sequential-stopping practice treats statistical precision as a *target*
//! rather than a hope: keep adding independent replications (or batches)
//! until the confidence interval around the estimate is tight enough, then
//! stop. A [`Precision`] names that stopping rule — a maximum CI
//! half-width, relative to the mean or absolute, at a confidence level —
//! and [`Precision::met_by`] is the convergence test every accumulator in
//! this crate can be checked against ([`crate::OnlineStats::meets`],
//! [`crate::BatchMeans::meets`]).

use crate::ci::ConfidenceInterval;
use serde::{Deserialize, Serialize};

/// A CI half-width target: the estimate is precise enough once a
/// confidence interval at [`Precision::level`] is no wider than the
/// relative and/or absolute bound.
///
/// At least one of `rel`/`abs` must be set; when both are, **both** must
/// hold (the conservative conjunction). An infinite half-width (fewer
/// than two samples) never meets any target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Precision {
    /// Maximum relative half-width (`half_width / |mean|`), e.g. `0.05`
    /// for "the mean is known to ±5 %".
    pub rel: Option<f64>,
    /// Maximum absolute half-width, in the estimate's own units.
    pub abs: Option<f64>,
    /// Confidence level of the interval the bounds apply to, e.g. `0.95`.
    pub level: f64,
}

impl Precision {
    /// A relative half-width target at the given confidence level.
    pub fn relative(rel: f64, level: f64) -> Self {
        Self {
            rel: Some(rel),
            abs: None,
            level,
        }
    }

    /// An absolute half-width target at the given confidence level.
    pub fn absolute(abs: f64, level: f64) -> Self {
        Self {
            rel: None,
            abs: Some(abs),
            level,
        }
    }

    /// Checks the target is well-formed: at least one bound, every bound
    /// finite and positive, and a level the CI machinery actually carries
    /// critical values for. [`crate::mean_confidence_interval`] only has
    /// 95 % and 99 % Student-t tables — any other level would silently
    /// produce a differently-labelled interval than the one tested, so it
    /// is rejected here instead.
    pub fn validate(&self) -> Result<(), String> {
        if self.rel.is_none() && self.abs.is_none() {
            return Err("precision needs a relative or absolute half-width bound".into());
        }
        for (name, bound) in [("relative", self.rel), ("absolute", self.abs)] {
            if let Some(b) = bound {
                if !(b.is_finite() && b > 0.0) {
                    return Err(format!(
                        "precision: {name} bound must be finite and > 0 (got {b})"
                    ));
                }
            }
        }
        if self.level != 0.95 && self.level != 0.99 {
            return Err(format!(
                "precision: confidence level must be 0.95 or 0.99 — the only levels the \
                 t-tables carry (got {})",
                self.level
            ));
        }
        Ok(())
    }

    /// Whether `ci` is tight enough: its half-width is finite and within
    /// every configured bound. The interval's own confidence level is the
    /// caller's responsibility (build it at [`Precision::level`]).
    pub fn met_by(&self, ci: &ConfidenceInterval) -> bool {
        if !ci.half_width.is_finite() {
            return false;
        }
        if let Some(rel) = self.rel {
            if ci.relative_half_width() > rel {
                return false;
            }
        }
        if let Some(abs) = self.abs {
            if ci.half_width > abs {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(mean: f64, half_width: f64) -> ConfidenceInterval {
        ConfidenceInterval {
            mean,
            half_width,
            level: 0.95,
        }
    }

    #[test]
    fn relative_target_tests_relative_width() {
        let p = Precision::relative(0.05, 0.95);
        assert!(p.met_by(&ci(100.0, 4.9)));
        assert!(!p.met_by(&ci(100.0, 5.1)));
        // Zero mean → infinite relative width → never met.
        assert!(!p.met_by(&ci(0.0, 0.001)));
    }

    #[test]
    fn absolute_target_tests_absolute_width() {
        let p = Precision::absolute(2.0, 0.95);
        assert!(p.met_by(&ci(1e6, 1.9)));
        assert!(!p.met_by(&ci(1e6, 2.1)));
    }

    #[test]
    fn both_bounds_must_hold() {
        let p = Precision {
            rel: Some(0.05),
            abs: Some(1.0),
            level: 0.95,
        };
        assert!(p.met_by(&ci(100.0, 0.9))); // 0.9 % relative, 0.9 absolute
        assert!(!p.met_by(&ci(100.0, 2.0))); // relative ok, absolute not
        assert!(!p.met_by(&ci(10.0, 0.9))); // absolute ok, relative not
    }

    #[test]
    fn infinite_half_width_never_converges() {
        let p = Precision::relative(0.5, 0.95);
        assert!(!p.met_by(&ci(10.0, f64::INFINITY)));
    }

    #[test]
    fn validate_rejects_malformed_targets() {
        assert!(Precision {
            rel: None,
            abs: None,
            level: 0.95
        }
        .validate()
        .is_err());
        assert!(Precision::relative(0.0, 0.95).validate().is_err());
        assert!(Precision::relative(f64::NAN, 0.95).validate().is_err());
        assert!(Precision::absolute(-1.0, 0.95).validate().is_err());
        assert!(Precision::relative(0.05, 1.0).validate().is_err());
        assert!(Precision::relative(0.05, 0.0).validate().is_err());
        // Only the levels with t-tables are legal: anything else would
        // converge against a differently-labelled interval.
        assert!(Precision::relative(0.05, 0.9).validate().is_err());
        assert!(Precision::relative(0.05, 0.975).validate().is_err());
        assert!(Precision::relative(0.05, 0.95).validate().is_ok());
        assert!(Precision::absolute(3.0, 0.99).validate().is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let p = Precision::relative(0.05, 0.95);
        let v = serde::Serialize::to_value(&p);
        let back: Precision = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(p, back);
    }
}
