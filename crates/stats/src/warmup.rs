//! Warm-up (initial-transient) detection via the MSER rule.
//!
//! The paper fixes the warm-up at 10 000 messages; MSER (Marginal Standard
//! Error Rule, White 1997) finds the truncation point that *minimises* the
//! standard error of the remaining samples — a principled way to check
//! that a fixed warm-up was long enough. The common MSER-5 variant first
//! averages the stream into batches of 5 to smooth noise.

use serde::{Deserialize, Serialize};

/// Result of an MSER scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MserResult {
    /// Optimal truncation index into the (batched) series: samples before
    /// this index are transient.
    pub truncation: usize,
    /// The minimised MSER statistic (squared standard error of the
    /// retained suffix).
    pub statistic: f64,
}

/// Computes the MSER truncation point of `samples`.
///
/// Scans every candidate truncation `d` over the first half of the series
/// (the usual guard against degenerate all-but-tail truncations) and
/// returns the `d` minimising `S²(d)/(n−d)²`… expressed per White's
/// formulation as `var(suffix)/(n−d)`. Returns `None` for series shorter
/// than 8 samples.
pub fn mser(samples: &[f64]) -> Option<MserResult> {
    let n = samples.len();
    if n < 8 {
        return None;
    }
    // Suffix sums for O(n) scanning.
    let mut suffix_sum = vec![0.0; n + 1];
    let mut suffix_sq = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix_sum[i] = suffix_sum[i + 1] + samples[i];
        suffix_sq[i] = suffix_sq[i + 1] + samples[i] * samples[i];
    }
    let mut best = MserResult {
        truncation: 0,
        statistic: f64::INFINITY,
    };
    for d in 0..n / 2 {
        let m = (n - d) as f64;
        let mean = suffix_sum[d] / m;
        let var = (suffix_sq[d] / m - mean * mean).max(0.0);
        let stat = var / m;
        if stat < best.statistic {
            best = MserResult {
                truncation: d,
                statistic: stat,
            };
        }
    }
    Some(best)
}

/// MSER-5: batches the stream into means of 5 before scanning, returning
/// the truncation in *original sample* units (a multiple of 5).
pub fn mser5(samples: &[f64]) -> Option<MserResult> {
    let batches: Vec<f64> = samples
        .chunks_exact(5)
        .map(|c| c.iter().sum::<f64>() / 5.0)
        .collect();
    mser(&batches).map(|r| MserResult {
        truncation: r.truncation * 5,
        statistic: r.statistic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn too_short_returns_none() {
        assert!(mser(&[1.0; 7]).is_none());
        // MSER-5 needs at least 8 batches of 5.
        assert!(mser5(&[1.0; 39]).is_none());
        assert!(mser5(&[1.0; 40]).is_some());
    }

    #[test]
    fn stationary_series_needs_no_truncation() {
        // Alternating around a constant mean: truncating cannot help much.
        let xs: Vec<f64> = (0..200)
            .map(|i| 5.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let r = mser(&xs).unwrap();
        assert!(r.truncation <= 4, "truncation {}", r.truncation);
    }

    #[test]
    fn detects_initial_transient() {
        // A decaying start-up ramp followed by a stationary phase — the
        // textbook shape of a queue warming up.
        let mut xs = Vec::new();
        for i in 0..50 {
            xs.push(100.0 * (-(i as f64) / 10.0).exp() + 10.0);
        }
        for i in 0..200 {
            xs.push(10.0 + if i % 2 == 0 { 0.2 } else { -0.2 });
        }
        let r = mser(&xs).unwrap();
        assert!(
            (20..=60).contains(&r.truncation),
            "truncation {} should fall at the end of the transient",
            r.truncation
        );
    }

    #[test]
    fn mser5_truncation_is_multiple_of_five() {
        let mut xs = vec![50.0; 25];
        xs.extend(std::iter::repeat_n(10.0, 200));
        let r = mser5(&xs).unwrap();
        assert_eq!(r.truncation % 5, 0);
        assert!(r.truncation >= 25, "truncation {}", r.truncation);
    }

    #[test]
    fn statistic_is_nonnegative_and_finite() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin()).collect();
        let r = mser(&xs).unwrap();
        assert!(r.statistic.is_finite());
        assert!(r.statistic >= 0.0);
    }
}
