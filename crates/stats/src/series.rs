//! Sweep series: ordered `(x, y)` data with a label, the exchange format
//! between the experiment harness and the table/JSON renderers.
//!
//! Every figure in the paper is a set of labelled series (e.g. "Analysis
//! (Lm=256)", "Simulation") plotted against the traffic generation rate, so
//! this type is what the figure binaries produce.

use serde::{Deserialize, Serialize};

/// One data point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Independent variable (traffic generation rate λ_g in the paper).
    pub x: f64,
    /// Dependent variable (mean message latency).
    pub y: f64,
}

/// A labelled, x-ordered series of points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `"Analysis (Lm=256)"`.
    pub label: String,
    /// The data points, in the order produced by the sweep.
    pub points: Vec<Point>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(Point { x, y });
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The x values.
    pub fn xs(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.x).collect()
    }

    /// The y values.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.y).collect()
    }

    /// Whether `y` is non-decreasing in `x` order (sanity check for latency
    /// vs. load curves, which must grow with offered load).
    pub fn is_monotone_non_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].y >= w[0].y - 1e-9)
    }

    /// Linear interpolation of `y` at `x0`; `None` outside the x range or
    /// when fewer than two points exist. Assumes points sorted by x.
    pub fn interpolate(&self, x0: f64) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let first = self.points.first()?;
        let last = self.points.last()?;
        if x0 < first.x || x0 > last.x {
            return None;
        }
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if (a.x..=b.x).contains(&x0) {
                if b.x == a.x {
                    return Some(a.y);
                }
                let t = (x0 - a.x) / (b.x - a.x);
                return Some(a.y + t * (b.y - a.y));
            }
        }
        None
    }

    /// The x at which `y` first crosses `threshold` (linear interpolation
    /// between the bracketing points); `None` if it never does.
    pub fn first_crossing(&self, threshold: f64) -> Option<f64> {
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a.y < threshold && b.y >= threshold {
                let t = (threshold - a.y) / (b.y - a.y);
                return Some(a.x + t * (b.x - a.x));
            }
        }
        self.points
            .first()
            .filter(|p| p.y >= threshold)
            .map(|p| p.x)
    }
}

/// One data point of a CI-bearing sweep: the estimate plus the interval
/// it is known to, and how much work (replications) it cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiPoint {
    /// Independent variable (traffic generation rate λ_g in the paper).
    pub x: f64,
    /// Point estimate (mean over replication means).
    pub y: f64,
    /// Lower bound of the confidence interval.
    pub lo: f64,
    /// Upper bound of the confidence interval.
    pub hi: f64,
    /// Independent replications actually spent on this point.
    pub replications: usize,
    /// Whether the point met its precision target (as opposed to tripping
    /// the replication cap).
    pub converged: bool,
}

/// A labelled series of CI-bearing points — what a precision-driven sweep
/// produces instead of a bare [`Series`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CiSeries {
    /// Legend label, e.g. `"Simulation (Lm=256)"`.
    pub label: String,
    /// Confidence level of every point's `[lo, hi]`, e.g. `0.95`.
    pub level: f64,
    /// The data points, in the order produced by the sweep.
    pub points: Vec<CiPoint>,
}

impl CiSeries {
    /// Creates an empty CI-bearing series.
    pub fn new(label: impl Into<String>, level: f64) -> Self {
        Self {
            label: label.into(),
            level,
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, point: CiPoint) {
        self.points.push(point);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point estimates as a plain [`Series`] (same label) — for
    /// renderers that only understand `(x, y)` data, e.g. scatter plots.
    pub fn mean_series(&self) -> Series {
        let mut out = Series::new(self.label.clone());
        for p in &self.points {
            out.push(p.x, p.y);
        }
        out
    }

    /// Whether every point met its precision target.
    pub fn all_converged(&self) -> bool {
        self.points.iter().all(|p| p.converged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(points: &[(f64, f64)]) -> Series {
        let mut out = Series::new("test");
        for &(x, y) in points {
            out.push(x, y);
        }
        out
    }

    #[test]
    fn push_and_accessors() {
        let se = s(&[(0.0, 1.0), (1.0, 3.0)]);
        assert_eq!(se.len(), 2);
        assert_eq!(se.xs(), vec![0.0, 1.0]);
        assert_eq!(se.ys(), vec![1.0, 3.0]);
        assert!(!se.is_empty());
    }

    #[test]
    fn monotonicity_check() {
        assert!(s(&[(0.0, 1.0), (1.0, 1.0), (2.0, 5.0)]).is_monotone_non_decreasing());
        assert!(!s(&[(0.0, 2.0), (1.0, 1.0)]).is_monotone_non_decreasing());
    }

    #[test]
    fn interpolation_inside_and_outside() {
        let se = s(&[(0.0, 0.0), (2.0, 4.0)]);
        assert_eq!(se.interpolate(1.0), Some(2.0));
        assert_eq!(se.interpolate(0.0), Some(0.0));
        assert_eq!(se.interpolate(2.0), Some(4.0));
        assert_eq!(se.interpolate(-0.1), None);
        assert_eq!(se.interpolate(2.1), None);
    }

    #[test]
    fn first_crossing_interpolates() {
        let se = s(&[(0.0, 0.0), (1.0, 10.0)]);
        let x = se.first_crossing(5.0).unwrap();
        assert!((x - 0.5).abs() < 1e-12);
        assert_eq!(se.first_crossing(100.0), None);
    }

    #[test]
    fn first_crossing_when_already_above() {
        let se = s(&[(0.5, 7.0), (1.0, 9.0)]);
        assert_eq!(se.first_crossing(5.0), Some(0.5));
    }

    #[test]
    fn serde_round_trip() {
        let se = s(&[(0.0, 1.0)]);
        let json = serde_json::to_string(&se).unwrap();
        let back: Series = serde_json::from_str(&json).unwrap();
        assert_eq!(se, back);
    }

    #[test]
    fn ci_series_mean_projection_and_convergence() {
        let mut cs = CiSeries::new("Simulation", 0.95);
        cs.push(CiPoint {
            x: 1e-4,
            y: 40.0,
            lo: 39.0,
            hi: 41.0,
            replications: 4,
            converged: true,
        });
        cs.push(CiPoint {
            x: 2e-4,
            y: 44.0,
            lo: 40.0,
            hi: 48.0,
            replications: 16,
            converged: false,
        });
        assert_eq!(cs.len(), 2);
        assert!(!cs.is_empty());
        assert!(!cs.all_converged());
        let means = cs.mean_series();
        assert_eq!(means.label, "Simulation");
        assert_eq!(means.ys(), vec![40.0, 44.0]);
        let json = serde_json::to_string(&cs).unwrap();
        let back: CiSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(cs, back);
    }
}
