//! One-shot summary of a sample set: count, mean, CI, spread, percentiles.

use crate::ci::{mean_confidence_interval, ConfidenceInterval};
use crate::online::OnlineStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A finished measurement summary, produced by the simulator's sinks at the
/// end of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// 95 % confidence interval around the mean.
    pub ci95: ConfidenceInterval,
}

impl Summary {
    /// Builds a summary from a streaming accumulator.
    pub fn from_stats(stats: &OnlineStats) -> Self {
        Self {
            count: stats.count(),
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            min: stats.min(),
            max: stats.max(),
            ci95: mean_confidence_interval(stats, 0.95),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} ±{:.4} (95% CI) sd={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.ci95.half_width, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_stats_copies_fields() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        let sum = Summary::from_stats(&s);
        assert_eq!(sum.count, 3);
        assert!((sum.mean - 2.0).abs() < 1e-12);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 3.0);
        assert!(sum.ci95.contains(2.0));
    }

    #[test]
    fn display_is_human_readable() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(2.0);
        let text = Summary::from_stats(&s).to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=1.5"));
    }
}
