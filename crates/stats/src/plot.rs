//! Terminal scatter plots for sweep series.
//!
//! The figure binaries print the paper's plots directly into the terminal:
//! an axes box, one glyph per series, shared x/y scaling. This is
//! deliberately simple — no anti-aliasing, no unicode braille — so output
//! is stable across terminals and suitable for EXPERIMENTS.md.

use crate::series::Series;
use std::fmt::Write as _;

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['o', 'x', '+', '*', '#', '@', '%', '&'];

/// Renders a fixed-size ASCII scatter plot of the series.
///
/// `width`/`height` are the plot area in characters (axes excluded); both
/// are clamped to at least 8. Returns a multi-line string ending with a
/// legend.
pub fn scatter(series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(8);
    let height = height.max(8);
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| (p.x, p.y)))
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if points.is_empty() {
        return "(no data)\n".to_string();
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    // Zero-origin y (latency plots), padded ranges.
    y_lo = y_lo.min(0.0);
    if (x_hi - x_lo).abs() < f64::EPSILON {
        x_hi = x_lo + 1.0;
    }
    if (y_hi - y_lo).abs() < f64::EPSILON {
        y_hi = y_lo + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for p in &s.points {
            if !(p.x.is_finite() && p.y.is_finite()) {
                continue;
            }
            let cx = ((p.x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let cy = ((p.y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    let y_label_width = 10;
    for (r, row) in grid.iter().enumerate() {
        // y tick labels at top, middle, bottom.
        let y_here = y_hi - (y_hi - y_lo) * r as f64 / (height - 1) as f64;
        if r == 0 || r == height / 2 || r == height - 1 {
            let _ = write!(out, "{:>width$.2} |", y_here, width = y_label_width);
        } else {
            let _ = write!(out, "{:>width$} |", "", width = y_label_width);
        }
        out.extend(row.iter());
        out.push('\n');
    }
    let _ = write!(out, "{:>width$} +", "", width = y_label_width);
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let _ = writeln!(
        out,
        "{:>width$}  {:<lw$.3e}{:>rw$.3e}",
        "",
        x_lo,
        x_hi,
        width = y_label_width,
        lw = width / 2,
        rw = width - width / 2
    );
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(label: &str, pts: &[(f64, f64)]) -> Series {
        let mut out = Series::new(label);
        for &(x, y) in pts {
            out.push(x, y);
        }
        out
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(scatter(&[], 20, 10), "(no data)\n");
        assert_eq!(scatter(&[Series::new("e")], 20, 10), "(no data)\n");
    }

    #[test]
    fn plots_contain_glyphs_and_legend() {
        let a = s("rising", &[(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]);
        let b = s("flat", &[(0.0, 5.0), (2.0, 5.0)]);
        let text = scatter(&[a, b], 30, 12);
        assert!(text.contains('o'));
        assert!(text.contains('x'));
        assert!(text.contains("o rising"));
        assert!(text.contains("x flat"));
        // Axes are drawn.
        assert!(text.contains('+'));
        assert!(text.contains('|'));
    }

    #[test]
    fn monotone_series_descends_down_the_grid() {
        let a = s("up", &[(0.0, 0.0), (1.0, 100.0)]);
        let text = scatter(&[a], 20, 10);
        let rows: Vec<&str> = text.lines().collect();
        // The max point sits on the top plot row, the min near the bottom.
        assert!(rows[0].contains('o'));
    }

    #[test]
    fn clamps_tiny_dimensions() {
        let a = s("p", &[(0.0, 1.0)]);
        let text = scatter(&[a], 1, 1);
        assert!(text.lines().count() >= 8);
    }

    #[test]
    fn single_point_is_plotted() {
        let a = s("p", &[(5.0, 5.0)]);
        let text = scatter(&[a], 16, 8);
        assert!(text.matches('o').count() >= 1);
    }
}
