//! Statistics utilities shared by the cocnet analytical model, simulator and
//! experiment harness.
//!
//! The crate is deliberately dependency-light: everything here is plain
//! numerics — streaming moments ([`online::OnlineStats`]), fixed-width
//! histograms ([`histogram::Histogram`]), confidence intervals
//! ([`ci::mean_confidence_interval`]), sweep series containers
//! ([`series::Series`]) and ASCII table rendering ([`table::Table`]).
//!
//! All accumulators are deterministic: feeding the same samples in the same
//! order always produces bit-identical results, which the simulator's
//! reproducibility tests rely on.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod ci;
pub mod error;
pub mod histogram;
pub mod online;
pub mod percentile;
pub mod plot;
pub mod precision;
pub mod series;
pub mod summary;
pub mod table;
pub mod warmup;

pub use batch::BatchMeans;
pub use ci::{mean_confidence_interval, ConfidenceInterval};
pub use error::{mean_absolute_percentage_error, relative_error};
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use percentile::Percentiles;
pub use plot::scatter;
pub use precision::Precision;
pub use series::{CiPoint, CiSeries, Point, Series};
pub use summary::Summary;
pub use table::Table;
pub use warmup::{mser, mser5, MserResult};
