//! Minimal ASCII table renderer for the experiment binaries.
//!
//! The figure/table regeneration binaries print paper-style rows to stdout;
//! this renderer keeps the columns aligned without pulling in a formatting
//! dependency.

use std::fmt::Write as _;

/// An in-memory table with a header row and uniform column count.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["x", "latency"]);
        t.push_row(["0.0001", "120.5"]);
        t.push_row(["0.0002", "1340.25"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("x     "));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All data lines share the same column start for 'latency' values.
        let col = lines[2].find("120.5").unwrap();
        assert_eq!(lines[3].find("1340.25").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.push_row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
