//! Exact percentile computation over retained samples.
//!
//! For modest sample counts (unit tests, small validation runs) it is often
//! simplest to retain the raw samples and compute exact order statistics;
//! this complements the streaming [`crate::Histogram`] used for big runs.

use serde::{Deserialize, Serialize};

/// Retains samples and serves exact percentiles on demand.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collector with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            samples: Vec::with_capacity(cap),
            sorted: true,
        }
    }

    /// Records one sample. Non-finite samples are rejected with `false`.
    pub fn record(&mut self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        self.samples.push(x);
        self.sorted = false;
        true
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Exact quantile via the nearest-rank method. `q` must be in `[0, 1]`.
    /// Returns `None` when empty or `q` out of range.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        self.ensure_sorted();
        if q == 0.0 {
            return self.samples.first().copied();
        }
        let rank = (q * self.samples.len() as f64).ceil() as usize;
        self.samples
            .get(rank.saturating_sub(1).min(self.samples.len() - 1))
            .copied()
    }

    /// Median (50th percentile, nearest rank).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_finite() {
        let mut p = Percentiles::new();
        assert!(!p.record(f64::NAN));
        assert!(!p.record(f64::INFINITY));
        assert!(p.record(1.0));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn nearest_rank_quantiles() {
        let mut p = Percentiles::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            p.record(x);
        }
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.median(), Some(3.0));
        assert_eq!(p.quantile(1.0), Some(5.0));
        assert_eq!(p.quantile(0.2), Some(1.0));
        assert_eq!(p.quantile(0.21), Some(2.0));
    }

    #[test]
    fn empty_and_out_of_range() {
        let mut p = Percentiles::new();
        assert_eq!(p.median(), None);
        p.record(1.0);
        assert_eq!(p.quantile(-0.1), None);
        assert_eq!(p.quantile(1.1), None);
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut p = Percentiles::new();
        p.record(10.0);
        assert_eq!(p.median(), Some(10.0));
        p.record(0.0);
        assert_eq!(p.quantile(0.0), Some(0.0));
        p.record(20.0);
        assert_eq!(p.median(), Some(10.0));
    }
}
