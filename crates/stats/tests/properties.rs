//! Property tests for the statistics primitives.

use cocnet_stats::{mser, BatchMeans, Histogram, OnlineStats, Percentiles, Series};
use proptest::prelude::*;

proptest! {
    #[test]
    fn online_stats_match_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..400)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), xs.len() as u64);
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.max() >= s.mean() - 1e-9);
    }

    #[test]
    fn online_stats_merge_is_order_insensitive(
        a in prop::collection::vec(-1e3f64..1e3, 1..100),
        b in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let fill = |xs: &[f64]| {
            let mut s = OnlineStats::new();
            for &x in xs {
                s.push(x);
            }
            s
        };
        let mut ab = fill(&a);
        ab.merge(&fill(&b));
        let mut ba = fill(&b);
        ba.merge(&fill(&a));
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
    }

    #[test]
    fn histogram_conserves_samples(
        xs in prop::collection::vec(-10.0f64..110.0, 1..300),
        bins in 1usize..50,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        for &x in &xs {
            h.record(x);
        }
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(
            binned + h.underflow() + h.overflow(),
            xs.len() as u64
        );
        let expected_under = xs.iter().filter(|&&x| x < 0.0).count() as u64;
        let expected_over = xs.iter().filter(|&&x| x >= 100.0).count() as u64;
        prop_assert_eq!(h.underflow(), expected_under);
        prop_assert_eq!(h.overflow(), expected_over);
    }

    #[test]
    fn percentiles_are_monotone_in_q(
        xs in prop::collection::vec(-1e3f64..1e3, 1..200),
    ) {
        let mut p = Percentiles::new();
        for &x in &xs {
            p.record(x);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let v = p.quantile(q).unwrap();
            prop_assert!(v >= last, "q={q}: {v} < {last}");
            last = v;
        }
        // Extremes match exact order statistics.
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(p.quantile(0.0).unwrap(), sorted[0]);
        prop_assert_eq!(p.quantile(1.0).unwrap(), *sorted.last().unwrap());
    }

    #[test]
    fn batch_means_overall_mean_matches(
        xs in prop::collection::vec(0.0f64..100.0, 10..300),
        batch in 1u64..20,
    ) {
        let mut b = BatchMeans::new(batch);
        for &x in &xs {
            b.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((b.mean() - mean).abs() < 1e-9);
        prop_assert_eq!(b.num_batches(), xs.len() / batch as usize);
    }

    #[test]
    fn mser_truncation_is_in_first_half(
        xs in prop::collection::vec(0.0f64..100.0, 8..300),
    ) {
        if let Some(r) = mser(&xs) {
            prop_assert!(r.truncation < xs.len() / 2 + 1);
            prop_assert!(r.statistic.is_finite());
        }
    }

    #[test]
    fn series_interpolation_brackets(
        ys in prop::collection::vec(0.0f64..100.0, 2..50),
    ) {
        let mut s = Series::new("p");
        for (i, &y) in ys.iter().enumerate() {
            s.push(i as f64, y);
        }
        // Interpolating at a grid point returns the exact value.
        for (i, &y) in ys.iter().enumerate() {
            let v = s.interpolate(i as f64).unwrap();
            prop_assert!((v - y).abs() < 1e-9);
        }
        // Midpoints stay within the segment's bounds.
        for i in 0..ys.len() - 1 {
            let v = s.interpolate(i as f64 + 0.5).unwrap();
            let (lo, hi) = (ys[i].min(ys[i + 1]), ys[i].max(ys[i + 1]));
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}

// ---- constructed-sequence tests (deterministic, no proptest) ---------------
//
// The adaptive runner's stopping rule leans on `mser`/`mser5` (warm-up
// audits) and `BatchMeans::lag1_autocorrelation` (batch-length
// diagnostics); these tests pin their behaviour on sequences with known
// structure: AR(1)-style positively/negatively correlated streams and a
// transient-then-stationary stream with a known truncation point.

/// Deterministic noise in [-0.5, 0.5): a multiplicative-congruential
/// chain, good enough to act as the AR(1) innovation sequence.
fn noise(i: u64) -> f64 {
    let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    z ^= z >> 33;
    z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z ^= z >> 33;
    (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// x_{t+1} = phi * x_t + noise: the textbook autocorrelated process.
fn ar1(phi: f64, n: usize) -> Vec<f64> {
    let mut xs = Vec::with_capacity(n);
    let mut x = 0.0f64;
    for i in 0..n {
        x = phi * x + noise(i as u64);
        xs.push(x);
    }
    xs
}

#[test]
fn lag1_autocorrelation_sign_tracks_the_ar1_coefficient() {
    // Batch size 1 keeps the batch means equal to the raw samples, so the
    // statistic estimates the process's own lag-1 autocorrelation: the
    // sign (and rough magnitude) must follow phi.
    for (phi, lo, hi) in [
        (0.9, 0.6, 1.0),    // strongly positive
        (0.0, -0.2, 0.2),   // i.i.d.: near zero
        (-0.8, -1.0, -0.4), // alternating: negative
    ] {
        let mut b = BatchMeans::new(1);
        for x in ar1(phi, 4_000) {
            b.push(x);
        }
        let rho = b.lag1_autocorrelation().unwrap();
        assert!(
            (lo..=hi).contains(&rho),
            "phi {phi}: rho {rho} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn batching_washes_out_ar1_autocorrelation() {
    // The batch-length diagnostic in practice: the same phi = 0.9 stream
    // that is heavily correlated at batch size 1 must decorrelate once
    // batches far exceed the correlation length (~1/(1-phi) = 10).
    let xs = ar1(0.9, 40_000);
    let rho_of = |size: u64| {
        let mut b = BatchMeans::new(size);
        for &x in &xs {
            b.push(x);
        }
        b.lag1_autocorrelation().unwrap()
    };
    let raw = rho_of(1);
    let batched = rho_of(400);
    assert!(raw > 0.6, "raw rho {raw}");
    assert!(batched.abs() < 0.3, "batched rho {batched}");
    assert!(batched < raw);
}

#[test]
fn mser_recovers_a_known_truncation_point_on_ar1_noise() {
    // A decaying transient of ~150 samples riding on stationary AR(1)
    // noise: the scan must land near the end of the transient — neither 0
    // (missing it) nor deep into the stationary phase (over-truncating).
    let mut xs = ar1(0.5, 2_000);
    for (i, x) in xs.iter_mut().enumerate() {
        *x += 30.0 * (-(i as f64) / 40.0).exp();
    }
    let r = mser(&xs).unwrap();
    assert!(
        (60..=350).contains(&r.truncation),
        "truncation {}",
        r.truncation
    );
    // MSER-5 agrees in original-sample units (multiples of 5).
    let r5 = cocnet_stats::mser5(&xs).unwrap();
    assert_eq!(r5.truncation % 5, 0);
    assert!(
        (60..=400).contains(&r5.truncation),
        "mser5 truncation {}",
        r5.truncation
    );
}

#[test]
fn mser_on_stationary_ar1_keeps_nearly_everything() {
    let xs = ar1(0.5, 2_000);
    let r = mser(&xs).unwrap();
    assert!(r.truncation <= 100, "truncation {}", r.truncation);
}
