//! Shared driver for the figure/table regeneration binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — scaled-down simulation (2k/20k/2k messages instead of the
//!   paper's 10k/100k/10k) for a fast smoke run;
//! * `--points N` — number of x-axis points (default 10);
//! * `--replications N` — independent simulation replications per point
//!   (default 1);
//! * `--json` — also print the series as JSON (recorded in EXPERIMENTS.md);
//! * `--no-sim` — analysis only;
//! * `--serial` — run the sweep on one core (the runner's serial reference
//!   path; bit-identical results, used for speedup measurements).
//!
//! All simulation sweeps execute through [`cocnet::runner::Scenario`], so
//! every (workload × rate × replication) run is fanned out over the rayon
//! pool with deterministic seeding.

use cocnet::experiments::{figure_config, figure_scenario, Figure};
use cocnet::model::ModelOptions;
use cocnet::report::{render_figure, to_json};
use cocnet::sim::SimConfig;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Scaled-down simulation population.
    pub quick: bool,
    /// Number of sweep points.
    pub points: usize,
    /// Independent replications per sweep point.
    pub replications: usize,
    /// Emit JSON after the table.
    pub json: bool,
    /// Skip the simulation series.
    pub no_sim: bool,
    /// Force the serial reference path (for speedup measurements).
    pub serial: bool,
}

impl Cli {
    /// Parses `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut cli = Cli {
            quick: false,
            points: 10,
            replications: 1,
            json: false,
            no_sim: false,
            serial: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => cli.quick = true,
                "--json" => cli.json = true,
                "--no-sim" => cli.no_sim = true,
                "--serial" => cli.serial = true,
                "--points" => {
                    cli.points = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--points needs a number");
                }
                "--replications" => {
                    cli.replications = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--replications needs a number");
                }
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        cli
    }

    /// The simulation configuration implied by the flags.
    pub fn sim_config(&self) -> SimConfig {
        if self.quick {
            SimConfig {
                warmup: 2_000,
                measured: 20_000,
                drain: 2_000,
                seed: 2006,
                ..SimConfig::default()
            }
        } else {
            // The paper's §4 methodology: 10k warm-up, 100k measured, 10k drain.
            SimConfig {
                seed: 2006,
                ..SimConfig::default()
            }
        }
    }
}

/// Runs one latency-vs-load figure end to end and prints it.
pub fn figure_main(fig: Figure) {
    let cli = Cli::parse();
    let cfg = figure_config(fig);
    let opts = ModelOptions::default();

    let scenario = figure_scenario(&cfg, &cli.sim_config(), cli.points)
        .with_opts(opts)
        .with_replications(cli.replications);
    let mut series = scenario.run_model();
    if !cli.no_sim {
        let start = std::time::Instant::now();
        let sim_series = if cli.serial {
            scenario.run_sim_serial()
        } else {
            scenario.run_sim()
        };
        let jobs = scenario.workloads.len() * scenario.rates.len() * scenario.replications;
        eprintln!(
            "[sweep: {jobs} simulations in {:.2?} ({})]",
            start.elapsed(),
            if cli.serial {
                "serial".to_string()
            } else {
                format!("{} threads", rayon::current_num_threads())
            },
        );
        series.extend(sim_series);
    }
    println!("{}", render_figure(&cfg.title, &series));
    println!("{}", cocnet::stats::scatter(&series, 64, 20));
    if cli.json {
        println!("{}", to_json(&series));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_config_scales() {
        let quick = Cli {
            quick: true,
            points: 10,
            replications: 1,
            json: false,
            no_sim: false,
            serial: false,
        };
        let full = Cli {
            quick: false,
            ..quick.clone()
        };
        assert_eq!(quick.sim_config().measured, 20_000);
        assert_eq!(full.sim_config().measured, 100_000);
        assert_eq!(full.sim_config().warmup, 10_000);
    }
}
