//! Thin binary wrappers over the scenario registry.
//!
//! Every figure/table/ablation binary in `src/bin/` is a one-liner over
//! [`cocnet::registry::bin_main`]: the experiment definitions live in the
//! registry (`cocnet::registry`), where they are equally reachable as
//! `cocnet run <name>`, and the declarative ones additionally as committed
//! JSON files under `scenarios/`. Flags accepted by every binary are
//! documented on [`cocnet::registry::RunOpts`]:
//!
//! * `--quick` — scaled-down simulation populations for a fast smoke run;
//! * `--points N` / `--replications N` — sweep-grid overrides;
//! * `--json` — append the series as JSON; `--out json|csv` — machine
//!   output only;
//! * `--no-sim` — analysis only; `--serial` — the runner's serial
//!   reference path (bit-identical results, used for speedup
//!   measurements);
//! * `--rate λ`, `--reps N`, `--out-file PATH` — entry-specific knobs
//!   (diagnostics and `bench_snapshot`).
//!
//! This crate also hosts the criterion benches (`benches/`).

pub use cocnet::registry::{bin_main, RunOpts};
