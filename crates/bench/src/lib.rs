//! Shared driver for the figure/table regeneration binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — scaled-down simulation (2k/20k/2k messages instead of the
//!   paper's 10k/100k/10k) for a fast smoke run;
//! * `--points N` — number of x-axis points (default 10);
//! * `--json` — also print the series as JSON (recorded in EXPERIMENTS.md);
//! * `--no-sim` — analysis only.

use cocnet::experiments::{figure_config, run_figure_model, run_figure_sim, Figure};
use cocnet::model::ModelOptions;
use cocnet::report::{render_figure, to_json};
use cocnet::sim::SimConfig;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Scaled-down simulation population.
    pub quick: bool,
    /// Number of sweep points.
    pub points: usize,
    /// Emit JSON after the table.
    pub json: bool,
    /// Skip the simulation series.
    pub no_sim: bool,
}

impl Cli {
    /// Parses `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut cli = Cli {
            quick: false,
            points: 10,
            json: false,
            no_sim: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => cli.quick = true,
                "--json" => cli.json = true,
                "--no-sim" => cli.no_sim = true,
                "--points" => {
                    cli.points = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--points needs a number");
                }
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        cli
    }

    /// The simulation configuration implied by the flags.
    pub fn sim_config(&self) -> SimConfig {
        if self.quick {
            SimConfig {
                warmup: 2_000,
                measured: 20_000,
                drain: 2_000,
                seed: 2006,
                ..SimConfig::default()
            }
        } else {
            // The paper's §4 methodology: 10k warm-up, 100k measured, 10k drain.
            SimConfig {
                seed: 2006,
                ..SimConfig::default()
            }
        }
    }
}

/// Runs one latency-vs-load figure end to end and prints it.
pub fn figure_main(fig: Figure) {
    let cli = Cli::parse();
    let cfg = figure_config(fig);
    let opts = ModelOptions::default();

    let mut series = run_figure_model(&cfg, &opts, cli.points);
    if !cli.no_sim {
        let sim_cfg = cli.sim_config();
        series.extend(run_figure_sim(&cfg, &sim_cfg, cli.points));
    }
    println!("{}", render_figure(&cfg.title, &series));
    println!("{}", cocnet::stats::scatter(&series, 64, 20));
    if cli.json {
        println!("{}", to_json(&series));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_config_scales() {
        let quick = Cli {
            quick: true,
            points: 10,
            json: false,
            no_sim: false,
        };
        let full = Cli {
            quick: false,
            ..quick.clone()
        };
        assert_eq!(quick.sim_config().measured, 20_000);
        assert_eq!(full.sim_config().measured, 100_000);
        assert_eq!(full.sim_config().warmup, 10_000);
    }
}
