//! Ablation: the service-variance approximation of Eq. (17)/(36).
//!
//! The paper singles out the variance approximation ("a factor of the model
//! inaccuracy") when explaining the discrepancy near saturation. This
//! ablation compares the Draper–Ghosh-style approximation against a
//! deterministic-service (σ² = 0) model across the load range.

use cocnet::model::{evaluate, ModelOptions, VarianceApprox, Workload};
use cocnet::presets;
use cocnet::stats::Table;

fn main() {
    let dg = ModelOptions::default();
    let zero = ModelOptions {
        variance: VarianceApprox::Zero,
        ..ModelOptions::default()
    };
    for (name, spec, wl, max) in [
        (
            "N=1120, M=32, Lm=256",
            presets::org_1120(),
            presets::wl_m32_l256(),
            presets::rates::FIG3_MAX,
        ),
        (
            "N=544, M=64, Lm=256",
            presets::org_544(),
            presets::wl_m64_l256(),
            presets::rates::FIG6_MAX,
        ),
    ] {
        println!("## {name}");
        let mut table = Table::new(["rate", "DraperGhosh", "sigma2=0", "gap%"]);
        for i in 1..=8 {
            let rate = max * i as f64 / 8.0;
            let w = Workload {
                lambda_g: rate,
                ..wl
            };
            let a = evaluate(&spec, &w, &dg).map(|o| o.latency);
            let b = evaluate(&spec, &w, &zero).map(|o| o.latency);
            let fmt = |r: &Result<f64, _>| {
                r.as_ref()
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|_| "saturated".into())
            };
            let gap = match (&a, &b) {
                (Ok(x), Ok(y)) => format!("{:+.2}", (x - y) / y * 100.0),
                _ => "-".into(),
            };
            table.push_row([format!("{rate:.2e}"), fmt(&a), fmt(&b), gap]);
        }
        println!("{}", table.render());
    }
    println!(
        "note: the variance term only affects the M/G/1 waits (source queues and\n\
         concentrators); it grows with load, which is exactly where the paper\n\
         reports its model diverging from simulation."
    );
}
