//! Ablation: the service-variance approximation of Eq. (17)/(36).
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::ablations` and is equally reachable as
//! `cocnet run ablation_variance`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("ablation_variance");
}
