//! Model-vs-simulation validation across the paper's configurations
//! (the §4 accuracy claim: 4–8 % error at light load).
//!
//! Prints, per traffic rate: the model's predicted mean latency, the
//! simulated mean, the relative error, and the same split into intra- and
//! inter-cluster populations. The intra-cluster split is the cleanest
//! accuracy test (single network, no concentrator ambiguity); see
//! EXPERIMENTS.md for the discussion of the inter-cluster offset.
//!
//! The simulation points run concurrently through the unified
//! `Scenario` runner.

use cocnet::runner::Scenario;
use cocnet_model::{evaluate, ModelOptions, Workload};
use cocnet_sim::SimConfig;
use cocnet_workloads::presets;

fn main() {
    let opts = ModelOptions::default();
    let cfg = SimConfig {
        warmup: 2_000,
        measured: 20_000,
        drain: 2_000,
        seed: 42,
        ..SimConfig::default()
    };
    for (name, spec, wl, rates) in [
        (
            "N=1120 M=32 Lm=256",
            presets::org_1120(),
            presets::wl_m32_l256(),
            vec![5e-5, 1e-4, 2e-4, 3e-4],
        ),
        (
            "N=544 M=32 Lm=256",
            presets::org_544(),
            presets::wl_m32_l256(),
            vec![1e-4, 2e-4, 4e-4, 6e-4],
        ),
    ] {
        println!("--- {name}");
        println!(
            "{:>10} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
            "rate",
            "model",
            "sim",
            "err%",
            "model-in",
            "sim-in",
            "err%",
            "model-ex",
            "sim-ex",
            "err%"
        );
        let scenario = Scenario::new(name, spec.clone())
            .with_workload("Lm=256", wl)
            .with_rates(rates)
            .with_sim(cfg);
        let points = scenario.run_sim_detailed().remove(0);
        for point in points {
            let rate = point.rate;
            let sim = point.first();
            let w = Workload {
                lambda_g: rate,
                ..wl
            };
            match evaluate(&spec, &w, &opts) {
                Ok(out) => {
                    // Population-weighted model means for the intra/inter splits.
                    let n = spec.total_nodes() as f64;
                    let mut w_in = 0.0;
                    let mut w_ex = 0.0;
                    let mut m_in = 0.0;
                    let mut m_ex = 0.0;
                    for c in &out.per_cluster {
                        let share = spec.cluster_nodes(c.cluster) as f64 / n;
                        let u = c.outgoing_probability;
                        w_in += share * (1.0 - u);
                        w_ex += share * u;
                        m_in += share * (1.0 - u) * c.intra.total();
                        m_ex += share * u * c.inter.total();
                    }
                    m_in /= w_in;
                    m_ex /= w_ex;
                    let err = |m: f64, s: f64| (m - s) / s * 100.0;
                    println!(
                        "{rate:>10.2e} {:>9.2} {:>9.2} {:>7.2} | {:>9.2} {:>9.2} {:>7.2} | {:>9.2} {:>9.2} {:>7.2}",
                        out.latency,
                        sim.latency.mean,
                        err(out.latency, sim.latency.mean),
                        m_in,
                        sim.intra.mean,
                        err(m_in, sim.intra.mean),
                        m_ex,
                        sim.inter.mean,
                        err(m_ex, sim.inter.mean),
                    );
                }
                Err(e) => println!("{rate:>10.2e} model saturated: {e}"),
            }
        }
    }
}
