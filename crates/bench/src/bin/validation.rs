//! Model-vs-simulation validation across the paper's configurations.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::validation` and is equally reachable as
//! `cocnet run validation`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("validation");
}
