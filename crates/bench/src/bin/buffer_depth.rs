//! Extension: flit-buffer-depth sweep in the flit-level engine.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::extensions` and is equally reachable as
//! `cocnet run buffer_depth`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("buffer_depth");
}
