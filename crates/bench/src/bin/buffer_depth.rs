//! Extension experiment: relaxing assumption 6 (single-flit buffers).
//!
//! The paper's model assumes one flit of buffering per channel. Real
//! switches (Myrinet/InfiniBand/QsNet, the technologies §2 names) buffer
//! more. This experiment sweeps the flit-buffer depth in the flit-level
//! engine and reports latency across loads — quantifying how much of the
//! wormhole blocking the model describes is an artefact of minimal
//! buffering.
//!
//! All (rate × depth) simulations run concurrently via the runner's
//! [`par_map`].

use cocnet::model::Workload;
use cocnet::runner::par_map;
use cocnet::sim::{run_simulation_flit_built, BuiltSystem, Coupling, SimConfig};
use cocnet::stats::Table;
use cocnet::topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};
use cocnet_workloads::Pattern;

fn main() {
    let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
    let c = |n| ClusterSpec {
        n,
        icn1: net1,
        ecn1: net2,
    };
    let spec = SystemSpec::new(4, vec![c(2), c(2), c(3), c(3)], net1).unwrap();
    let built = BuiltSystem::build(&spec, 256.0);
    let rates = [1e-3, 2e-3, 3e-3, 4e-3];
    let depths = [1u32, 2, 4, 32];
    let jobs: Vec<(f64, u32)> = rates
        .iter()
        .flat_map(|&rate| depths.iter().map(move |&d| (rate, d)))
        .collect();
    let results = par_map(&jobs, |&(rate, depth)| {
        let wl = Workload::new(rate, 32, 256.0).unwrap();
        let cfg = SimConfig {
            warmup: 1_000,
            measured: 10_000,
            drain: 1_000,
            seed: 23,
            coupling: Coupling::StoreAndForward,
            flit_buffer_depth: depth,
            ..SimConfig::default()
        };
        let r = run_simulation_flit_built(&built, &wl, Pattern::Uniform, &cfg);
        if r.completed {
            format!("{:.2}", r.latency.mean)
        } else {
            "incomplete".into()
        }
    });

    println!("## N=48, M=32, Lm=256 — flit-buffer-depth sweep (flit engine)");
    let mut table = Table::new(["rate", "depth=1", "depth=2", "depth=4", "depth=32"]);
    for (i, &rate) in rates.iter().enumerate() {
        let mut row = vec![format!("{rate:.2e}")];
        row.extend_from_slice(&results[i * depths.len()..(i + 1) * depths.len()]);
        table.push_row(row);
    }
    println!("{}", table.render());
    println!(
        "finding: buffer depth is irrelevant in this regime. With messages\n\
         (M=32 flits) much longer than any path (<= 14 hops), a worm spans its\n\
         entire route whether or not intermediate channels can buffer extra\n\
         flits: a blocked header holds the same set of channels, and deeper\n\
         buffers can only compress flits that would otherwise wait at the\n\
         source. The paper's single-flit-buffer assumption 6 is therefore\n\
         *not* a material simplification for its workloads -- buffer depth\n\
         would start to matter only for messages shorter than the path."
    );
}
