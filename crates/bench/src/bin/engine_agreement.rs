//! Worm engine vs flit-level reference engine (deliberately serial).
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::validation` and is equally reachable as
//! `cocnet run engine_agreement`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("engine_agreement");
}
