//! Cross-validation experiment: worm engine vs flit-level reference engine
//! over a load sweep (store-and-forward boundaries on both so the
//! comparison isolates the worm engine's within-segment approximation).
//!
//! Deliberately **not** parallelised over the runner: the final column is a
//! wall-clock cost comparison between the two engines, and concurrent
//! sibling simulations would contaminate each run's timing with scheduler
//! contention. Each engine pair runs alone, back to back.

use cocnet::model::Workload;
use cocnet::sim::{run_simulation, run_simulation_flit, Coupling, SimConfig};
use cocnet::stats::Table;
use cocnet::topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};
use cocnet_workloads::Pattern;

fn main() {
    let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
    let c = |n| ClusterSpec {
        n,
        icn1: net1,
        ecn1: net2,
    };
    let spec = SystemSpec::new(4, vec![c(2), c(2), c(3), c(3)], net1).unwrap();
    let cfg = SimConfig {
        warmup: 1_000,
        measured: 10_000,
        drain: 1_000,
        seed: 77,
        coupling: Coupling::StoreAndForward,
        ..SimConfig::default()
    };
    println!("## worm engine vs flit-level reference (N=48, M=32, Lm=256)");
    let mut table = Table::new(["rate", "worm", "flit", "gap%", "worm events/flit events"]);
    for rate in [5e-5, 2e-4, 5e-4, 1e-3, 1.5e-3] {
        let wl = Workload::new(rate, 32, 256.0).unwrap();
        let t0 = std::time::Instant::now();
        let worm = run_simulation(&spec, &wl, Pattern::Uniform, &cfg);
        let t_worm = t0.elapsed();
        let t1 = std::time::Instant::now();
        let flit = run_simulation_flit(&spec, &wl, Pattern::Uniform, &cfg);
        let t_flit = t1.elapsed();
        let gap = (worm.latency.mean - flit.latency.mean) / flit.latency.mean * 100.0;
        table.push_row([
            format!("{rate:.2e}"),
            format!("{:.2}", worm.latency.mean),
            format!("{:.2}", flit.latency.mean),
            format!("{gap:+.2}"),
            format!("{:.0?} vs {:.0?}", t_worm, t_flit),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the worm engine's message-level drain approximation tracks the\n\
         flit-exact reference while processing ~M x fewer events."
    );
}
