//! Regenerates the paper's Fig. 7: mean message latency in the two Table 1
//! organizations with the base ICN2 bandwidth vs a 20 % boost (analysis
//! only, `M = 128` flits of 256 bytes, as in §4).

use cocnet::experiments::run_fig7;
use cocnet::model::ModelOptions;
use cocnet::report::{render_figure, to_json};

fn main() {
    let cli = cocnet_bench::Cli::parse();
    let series = run_fig7(&ModelOptions::default(), cli.points);
    println!(
        "{}",
        render_figure("Fig. 7 — ICN2 bandwidth +20% (M=128, Lm=256)", &series)
    );
    if cli.json {
        println!("{}", to_json(&series));
    }
}
