//! Extension experiment (the paper's §5 future work): non-uniform traffic.
//!
//! Sweeps the cluster-locality parameter ψ at a fixed generation rate and
//! compares the generalised analytical model (outgoing-probability profile)
//! against the simulator's cluster-local pattern, on the paper's N=544
//! organization.
//!
//! The locality points run concurrently via the runner's [`par_map`].

use cocnet::model::{evaluate_with_profile, ModelOptions, OutgoingProfile, Workload};
use cocnet::presets;
use cocnet::runner::par_map;
use cocnet::sim::{run_simulation_built, BuiltSystem, SimConfig};
use cocnet::stats::Table;
use cocnet_workloads::Pattern;

fn main() {
    let spec = presets::org_544();
    let rate = 4e-4;
    let wl = Workload {
        lambda_g: rate,
        ..presets::wl_m32_l256()
    };
    let opts = ModelOptions::default();
    let cfg = SimConfig {
        warmup: 2_000,
        measured: 20_000,
        drain: 2_000,
        seed: 55,
        ..SimConfig::default()
    };
    let built = BuiltSystem::build(&spec, wl.flit_bytes);
    println!("## N=544, M=32, Lm=256, rate={rate:.1e} — locality sweep");
    let localities = [0.0, 0.2, 0.4, 0.6, 0.8, 0.95];
    let sims = par_map(&localities, |&locality| {
        run_simulation_built(&built, &wl, Pattern::ClusterLocal { locality }, &cfg)
    });
    let mut table = Table::new(["locality", "model", "sim", "err%", "sim inter-frac"]);
    for (&locality, sim) in localities.iter().zip(&sims) {
        let profile = OutgoingProfile::cluster_local(&spec, locality).unwrap();
        let model = evaluate_with_profile(&spec, &wl, &opts, &profile).map(|o| o.latency);
        let model_cell = model
            .as_ref()
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|_| "saturated".into());
        let err = model
            .map(|m| format!("{:+.1}", (m - sim.latency.mean) / sim.latency.mean * 100.0))
            .unwrap_or_else(|_| "-".into());
        table.push_row([
            format!("{locality:.2}"),
            model_cell,
            format!("{:.2}", sim.latency.mean),
            err,
            format!("{:.3}", sim.inter_fraction()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "higher locality keeps traffic on the fast intra-cluster networks and\n\
         bypasses the concentrators: latency falls and the model error shrinks\n\
         (the documented inter-cluster offset applies only to outgoing traffic)."
    );
}
