//! Extension: non-uniform (cluster-local) traffic sweep.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::extensions` and is equally reachable as
//! `cocnet run nonuniform`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("nonuniform");
}
