//! Ablation: the Up*/Down* ascent policy under skewed destination mass.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::ablations` and is equally reachable as
//! `cocnet run ablation_routing`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("ablation_routing");
}
