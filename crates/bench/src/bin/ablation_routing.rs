//! Ablation: the Up*/Down* ascent policy under skewed destination mass.
//!
//! The analytical model assumes uniformly loaded channels (Eqs. (10),
//! (24)–(25)). That only holds if the deterministic routing spreads ascent
//! traffic across the parallel ancestors. This experiment quantifies what
//! happens when it doesn't: the `MirrorDescent` policy funnels all traffic
//! toward the four big clusters of the N=1120 organization through one ICN2
//! root, saturating it at a quarter of the predicted rate (DESIGN.md §4.2).
//!
//! The rate points run concurrently via the runner's [`par_map`]; each
//! job evaluates all three routing configurations for its rate.

use cocnet::model::Workload;
use cocnet::presets;
use cocnet::runner::par_map;
use cocnet::sim::{run_simulation_built, BuiltSystem, SimConfig};
use cocnet::stats::Table;
use cocnet::topology::AscentPolicy;
use cocnet_workloads::Pattern;

fn main() {
    let spec = presets::org_1120();
    let cfg = SimConfig {
        warmup: 2_000,
        measured: 20_000,
        drain: 2_000,
        seed: 9,
        ..SimConfig::default()
    };
    println!("## N=1120, M=32, Lm=256 — ascent-policy ablation");
    let mut table = Table::new([
        "rate",
        "trailing-digits",
        "max util",
        "mirror-descent",
        "max util",
        "adaptive (random)",
        "max util",
    ]);
    let rates = [1e-4, 1.5e-4, 2e-4, 3e-4];
    let rows = par_map(&rates, |&rate| {
        let wl = Workload {
            lambda_g: rate,
            ..presets::wl_m32_l256()
        };
        let mut cells = vec![format!("{rate:.2e}")];
        let push_run = |built: &BuiltSystem, cfg: &SimConfig, cells: &mut Vec<String>| {
            let r = run_simulation_built(built, &wl, Pattern::Uniform, cfg);
            let max_icn2 = r
                .channel_busy
                .iter()
                .enumerate()
                .filter(|(i, _)| built.network_of(*i as u32).0 == "ICN2")
                .map(|(_, &b)| b / r.sim_time)
                .fold(0.0f64, f64::max);
            cells.push(format!("{:.2}", r.latency.mean));
            cells.push(format!("{max_icn2:.3}"));
        };
        for policy in [AscentPolicy::TrailingDigits, AscentPolicy::MirrorDescent] {
            let built = BuiltSystem::build_with_policy(&spec, wl.flit_bytes, policy);
            push_run(&built, &cfg, &mut cells);
        }
        // Oblivious-adaptive: random ascent digits per message.
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let adaptive_cfg = SimConfig {
            adaptive_routing: true,
            ..cfg
        };
        push_run(&built, &adaptive_cfg, &mut cells);
        cells
    });
    for row in rows {
        table.push_row(row);
    }
    println!("{}", table.render());
    println!(
        "mirror-descent funnels every message bound for the four n=3 clusters\n\
         (~45% of inter-cluster traffic) through one root switch; the balanced\n\
         trailing-digits policy is what the model's uniform channel rates assume."
    );
}
