//! CI perf-regression gate.
//!
//! Thin wrapper over the scenario registry — the gate itself lives in
//! `cocnet::registry::perf` and is equally reachable as
//! `cocnet run perf_gate`. Runs the quick snapshot cases twice (warm-up +
//! measure) and fails on a >30% events/sec regression against the last
//! full-mode `BENCH_sim.json` entry. See `cocnet::registry::RunOpts` for
//! `--baseline`, `--threshold`, `--reps`.

fn main() {
    cocnet::registry::bin_main("perf_gate");
}
