//! Baseline comparison: the flat homogeneous queueing model (the prior art
//! the paper positions against, refs \[11\]–\[14\]) vs the paper's
//! hierarchical heterogeneous model vs simulation.
//!
//! Quantifies the paper's core motivation: a model that ignores network
//! and cluster-size heterogeneity cannot predict cluster-of-clusters
//! latency — it misses the slow ECN1 fabrics and the concentrator
//! bottleneck entirely.
//!
//! The simulation points run concurrently through the unified
//! `Scenario` runner.

use cocnet::model::{evaluate, evaluate_baseline, ModelOptions, Workload};
use cocnet::presets;
use cocnet::runner::Scenario;
use cocnet::sim::SimConfig;
use cocnet::stats::Table;

fn main() {
    let opts = ModelOptions::default();
    let cfg = SimConfig {
        warmup: 2_000,
        measured: 20_000,
        drain: 2_000,
        seed: 12,
        ..SimConfig::default()
    };
    for (name, spec, rates) in [
        ("N=1120 (Table 1)", presets::org_1120(), [1e-4, 2e-4, 3e-4]),
        ("N=544 (Table 1)", presets::org_544(), [2e-4, 4e-4, 6e-4]),
    ] {
        println!("## {name}, M=32, Lm=256");
        let mut table = Table::new([
            "rate",
            "flat baseline",
            "hierarchical model",
            "simulation",
            "baseline err%",
            "model err%",
        ]);
        let scenario = Scenario::new(name, spec.clone())
            .with_workload("Lm=256", presets::wl_m32_l256())
            .with_rates(rates.to_vec())
            .with_sim(cfg);
        let points = scenario.run_sim_detailed().remove(0);
        for point in points {
            let rate = point.rate;
            let wl = Workload {
                lambda_g: rate,
                ..presets::wl_m32_l256()
            };
            let flat = evaluate_baseline(&spec, &wl, &opts)
                .map(|b| b.latency)
                .unwrap_or(f64::NAN);
            let model = evaluate(&spec, &wl, &opts)
                .map(|o| o.latency)
                .unwrap_or(f64::NAN);
            let s = point.first().latency.mean;
            table.push_row([
                format!("{rate:.1e}"),
                format!("{flat:.2}"),
                format!("{model:.2}"),
                format!("{s:.2}"),
                format!("{:+.1}", (flat - s) / s * 100.0),
                format!("{:+.1}", (model - s) / s * 100.0),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "the flat homogeneous baseline (prior art) misses the ECN1/ICN2\n\
         hierarchy and lands at a fraction of the observed latency; the\n\
         paper's heterogeneous model closes most of that gap."
    );
}
