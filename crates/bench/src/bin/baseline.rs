//! Flat homogeneous queueing baseline vs the paper's model vs simulation.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::validation` and is equally reachable as
//! `cocnet run baseline`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("baseline");
}
