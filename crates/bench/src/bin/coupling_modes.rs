//! Ablation: the simulator's network-boundary coupling modes.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::ablations` and is equally reachable as
//! `cocnet run coupling_modes`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("coupling_modes");
}
