//! Ablation: the simulator's network-boundary coupling modes.
//!
//! The paper's model is ambivalent about what happens at the
//! concentrator/dispatcher (see DESIGN.md): Eq. (20) merges the three
//! networks into one wormhole pipe, while Eqs. (36)–(37) assume
//! full-message buffering. This experiment runs the same workload under
//! all three couplings the simulator implements and prints them against
//! the model, making the trade-off measurable: cut-through matches the
//! model at light load but saturates early; store-and-forward matches the
//! saturation point but overshoots light-load latency; virtual cut-through
//! (the default) is the compromise.
//!
//! All (rate × coupling) simulations run concurrently via the runner's
//! [`par_map`].

use cocnet::model::{evaluate, ModelOptions, Workload};
use cocnet::presets;
use cocnet::runner::par_map;
use cocnet::sim::{run_simulation, Coupling, SimConfig};
use cocnet::stats::Table;
use cocnet_workloads::Pattern;

fn main() {
    let spec = presets::org_544();
    let wl = presets::wl_m32_l256();
    let opts = ModelOptions::default();
    let base = SimConfig {
        warmup: 2_000,
        measured: 20_000,
        drain: 2_000,
        seed: 31,
        ..SimConfig::default()
    };
    let rates = [1e-4, 2e-4, 4e-4, 6e-4, 8e-4];
    let couplings = [
        Coupling::CutThrough,
        Coupling::VirtualCutThrough,
        Coupling::StoreAndForward,
    ];
    // One job per (rate, coupling); results come back in job order.
    let jobs: Vec<(f64, Coupling)> = rates
        .iter()
        .flat_map(|&rate| couplings.iter().map(move |&c| (rate, c)))
        .collect();
    let results = par_map(&jobs, |&(rate, coupling)| {
        let w = Workload {
            lambda_g: rate,
            ..wl
        };
        let cfg = SimConfig { coupling, ..base };
        let r = run_simulation(&spec, &w, Pattern::Uniform, &cfg);
        if r.completed {
            format!("{:.2}", r.latency.mean)
        } else {
            "incomplete".into()
        }
    });

    println!("## N=544, M=32, Lm=256 — coupling-mode comparison");
    let mut table = Table::new(["rate", "model", "cut-through", "virtual-ct", "store&fwd"]);
    for (i, &rate) in rates.iter().enumerate() {
        let w = Workload {
            lambda_g: rate,
            ..wl
        };
        let model = evaluate(&spec, &w, &opts)
            .map(|o| format!("{:.2}", o.latency))
            .unwrap_or_else(|_| "saturated".into());
        let row = &results[i * couplings.len()..(i + 1) * couplings.len()];
        table.push_row([
            format!("{rate:.2e}"),
            model,
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
        ]);
    }
    println!("{}", table.render());
}
