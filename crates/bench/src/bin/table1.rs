//! Regenerates Table 1 (system organizations).
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::tables` and is equally reachable as
//! `cocnet run table1`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("table1");
}
