//! Regenerates Table 1: the two system organizations used for model
//! validation, with the node algebra spelled out and checked.

use cocnet::presets;
use cocnet::stats::Table;

fn main() {
    let mut table = Table::new(["N", "C", "m", "node organizations"]);
    for spec in [presets::org_1120(), presets::org_544()] {
        // Group consecutive clusters by height.
        let mut groups: Vec<(u32, usize, usize)> = Vec::new(); // (n, from, to)
        for (i, c) in spec.clusters.iter().enumerate() {
            match groups.last_mut() {
                Some((n, _, to)) if *n == c.n && *to + 1 == i => *to = i,
                _ => groups.push((c.n, i, i)),
            }
        }
        let desc = groups
            .iter()
            .map(|(n, from, to)| format!("n_i={n} for i in [{from},{to}]"))
            .collect::<Vec<_>>()
            .join(";  ");
        table.push_row([
            spec.total_nodes().to_string(),
            spec.num_clusters().to_string(),
            spec.m.to_string(),
            desc,
        ]);
    }
    println!("Table 1. System Organizations for Model Validation");
    println!("{}", table.render());

    // The node algebra: N = Σ 2(m/2)^{n_i}.
    for spec in [presets::org_1120(), presets::org_544()] {
        let sum: usize = (0..spec.num_clusters())
            .map(|i| spec.cluster_nodes(i))
            .sum();
        assert_eq!(sum, spec.total_nodes());
        println!(
            "check: C={} clusters of m={} sum to N={} nodes; ICN2 is an m-port {}-tree",
            spec.num_clusters(),
            spec.m,
            sum,
            spec.icn2_height().unwrap()
        );
    }
}
