//! Extension: bursty (interrupted-Poisson) traffic at fixed mean rate.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::extensions` and is equally reachable as
//! `cocnet run bursty`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("bursty");
}
