//! Extension experiment: bursty (interrupted-Poisson) traffic at a fixed
//! mean rate.
//!
//! The paper's assumption 1 is per-node Poisson generation. Real parallel
//! applications emit communication in phases; this experiment holds the
//! mean rate constant and shrinks the duty cycle, showing how far the
//! Poisson-based analytical model drifts as traffic becomes bursty —
//! the time-domain counterpart of the §5 "non-uniform traffic" future work.
//!
//! The duty-cycle points run concurrently via the runner's [`par_map`].

use cocnet::model::{evaluate, ModelOptions, Workload};
use cocnet::presets;
use cocnet::runner::par_map;
use cocnet::sim::{run_simulation_arrivals, BuiltSystem, SimConfig};
use cocnet::stats::Table;
use cocnet_workloads::{ArrivalSpec, Pattern};

fn main() {
    let spec = presets::org_544();
    let rate = 4e-4;
    let wl = Workload {
        lambda_g: rate,
        ..presets::wl_m32_l256()
    };
    let opts = ModelOptions::default();
    let model = evaluate(&spec, &wl, &opts).unwrap().latency;
    let built = BuiltSystem::build(&spec, wl.flit_bytes);
    let cfg = SimConfig {
        warmup: 2_000,
        measured: 20_000,
        drain: 2_000,
        seed: 99,
        ..SimConfig::default()
    };
    println!(
        "## N=544, M=32, Lm=256, mean rate {rate:.1e} — burstiness sweep\n\
         (burst length 8 messages; duty 1.00 = the paper's Poisson assumption)"
    );
    println!("analytical model (Poisson assumption): {model:.2}\n");
    let duties = [1.0, 0.5, 0.25, 0.1];
    let runs = par_map(&duties, |&duty| {
        let arrival = ArrivalSpec::bursty(rate, duty, 8.0);
        run_simulation_arrivals(&built, &wl, Pattern::Uniform, &cfg, arrival)
    });
    let mut table = Table::new(["duty cycle", "sim latency", "vs Poisson sim", "model err%"]);
    let poisson_ref = runs[0].latency.mean;
    for (&duty, r) in duties.iter().zip(&runs) {
        let mean = r.latency.mean;
        table.push_row([
            format!("{duty:.2}"),
            if r.completed {
                format!("{mean:.2}")
            } else {
                "incomplete".into()
            },
            format!("{:+.1}%", (mean / poisson_ref - 1.0) * 100.0),
            format!("{:+.1}", (model - mean) / mean * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "burstiness raises contention at the same mean load; the Poisson-based\n\
         model grows increasingly optimistic as the duty cycle shrinks."
    );
}
