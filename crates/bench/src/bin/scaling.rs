//! Extension: cluster-count scaling study.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::extensions` and is equally reachable as
//! `cocnet run scaling`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("scaling");
}
