//! Scaling study (beyond the paper): how latency and the saturation rate
//! evolve as the system grows, holding the cluster design fixed.
//!
//! The paper evaluates two fixed organizations; the analytical model's real
//! value is sweeping a *family* of systems in milliseconds. This bin scales
//! the number of clusters (m=4, homogeneous n=3 clusters of 16 nodes,
//! Table 2 networks) through every valid ICN2 size and reports zero-load
//! latency, mid-load latency and the saturation rate — the designer's
//! capacity curve.

use cocnet::model::{evaluate, saturation_point, ModelOptions, Workload};
use cocnet::presets;
use cocnet::stats::Table;
use cocnet::topology::{ClusterSpec, SystemSpec};

fn main() {
    let opts = ModelOptions::default();
    let wl = Workload::new(0.0, 32, 256.0).unwrap();
    println!("## cluster-count scaling (m=4, uniform n=3 clusters of 16 nodes)");
    let mut table = Table::new([
        "C",
        "N",
        "n_c",
        "latency (λ→0)",
        "latency (λ=sat/2)",
        "saturation rate",
        "aggregate msg/s at sat",
    ]);
    // Valid C for m=4: 2·2^{n_c} = 4, 8, 16, 32, 64.
    for n_c in 1..=5u32 {
        let c = 2 * 2usize.pow(n_c);
        let cluster = ClusterSpec {
            n: 3,
            icn1: presets::net1(),
            ecn1: presets::net2(),
        };
        let spec = SystemSpec::new(4, vec![cluster; c], presets::net1()).unwrap();
        let zero = evaluate(&spec, &wl, &opts).unwrap().latency;
        let sat = saturation_point(&spec, &wl, &opts, 1e-4).unwrap();
        let mid = evaluate(&spec, &wl.with_rate(sat / 2.0), &opts)
            .unwrap()
            .latency;
        table.push_row([
            c.to_string(),
            spec.total_nodes().to_string(),
            spec.icn2_height().unwrap().to_string(),
            format!("{zero:.2}"),
            format!("{mid:.2}"),
            format!("{sat:.3e}"),
            format!("{:.3}", sat * spec.total_nodes() as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "per-node sustainable load shrinks as C grows (every outgoing message\n\
         still crosses one concentrator), while aggregate throughput rises\n\
         sublinearly — the fundamental cluster-of-clusters trade-off the\n\
         paper's model makes visible."
    );
}
