//! Diagnostic: predicted vs measured channel utilisation per network class.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::diagnostics` and is equally reachable as
//! `cocnet run utilization`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("utilization");
}
