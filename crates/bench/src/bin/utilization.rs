//! Predicted vs measured channel utilisation, per network class.
//!
//! Runs the analytical rate predictions (Eqs. (7), (10), (22)–(25) plus
//! `M·t_cs` holding) against the simulator's measured busy fractions on the
//! N=1120 organization. This quantifies the paper's §4 claim that the
//! inter-cluster networks, especially ICN2, are the system's bottleneck.

use cocnet::model::{network_rates, Workload};
use cocnet::presets;
use cocnet::sim::{run_simulation_built, BuiltSystem, SimConfig};
use cocnet::stats::Table;
use cocnet_workloads::Pattern;

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2e-4);
    let spec = presets::org_1120();
    let wl = Workload {
        lambda_g: rate,
        ..presets::wl_m32_l256()
    };
    let cfg = SimConfig {
        warmup: 2_000,
        measured: 20_000,
        drain: 2_000,
        seed: 3,
        ..SimConfig::default()
    };
    let built = BuiltSystem::build(&spec, wl.flit_bytes);
    let sim = run_simulation_built(&built, &wl, Pattern::Uniform, &cfg);
    let predicted = network_rates(&spec, &wl);

    // Aggregate measured busy fractions per network class.
    let mut sums: std::collections::BTreeMap<(&str, u32), (f64, f64, usize)> = Default::default();
    for (i, &b) in sim.channel_busy.iter().enumerate() {
        let (net, cluster) = built.network_of(i as u32);
        let n_height = if net == "ICN2" {
            spec.icn2_height().unwrap()
        } else {
            spec.clusters[cluster].n
        };
        let u = b / sim.sim_time;
        let e = sums.entry((net, n_height)).or_insert((0.0, 0.0, 0));
        e.0 += u;
        e.1 = e.1.max(u);
        e.2 += 1;
    }

    println!("## N=1120, M=32, Lm=256, rate={rate:.2e} — channel utilisation by network class");
    let mut table = Table::new([
        "network class",
        "mean util (sim)",
        "max util (sim)",
        "predicted util (model)",
    ]);
    for ((net, h), (sum, max, count)) in &sums {
        // A representative predicted value for the class.
        let pred = match *net {
            "ICN1" => {
                let i = (0..spec.num_clusters())
                    .find(|&i| spec.clusters[i].n == *h)
                    .unwrap();
                predicted.util_icn1[i]
            }
            "ECN1" => {
                let i = (0..spec.num_clusters())
                    .find(|&i| spec.clusters[i].n == *h)
                    .unwrap();
                predicted.util_ecn1[i]
            }
            _ => predicted.util_icn2,
        };
        table.push_row([
            format!("{net} (n={h})"),
            format!("{:.4}", sum / *count as f64),
            format!("{max:.4}"),
            format!("{pred:.4}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "mean latency {:.2} (completed={}); the ICN2 class dominates, matching\n\
         the paper's bottleneck observation.",
        sim.latency.mean, sim.completed
    );
}
