//! Channel-utilisation diagnostic: runs one simulation and prints the
//! hottest channels, supporting the paper's §4 claim that the inter-cluster
//! networks (especially ICN2) are the system bottleneck.

use cocnet_model::Workload;
use cocnet_sim::{engine::run_simulation_built, BuiltSystem, SimConfig};
use cocnet_workloads::{presets, Pattern};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rate: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.5e-4);
    let spec = presets::org_1120();
    let wl = Workload {
        lambda_g: rate,
        ..presets::wl_m32_l256()
    };
    let cfg = SimConfig {
        warmup: 2_000,
        measured: 20_000,
        drain: 2_000,
        seed: 7,
        max_events: 2_000_000_000,
        ..SimConfig::default()
    };
    let built = BuiltSystem::build(&spec, wl.flit_bytes);
    let r = run_simulation_built(&built, &wl, Pattern::Uniform, &cfg);
    println!(
        "rate={rate:.2e}  mean latency={:.2}  completed={}  sim_time={:.1}",
        r.latency.mean, r.completed, r.sim_time
    );
    let mut hot: Vec<(usize, f64)> = r
        .channel_busy
        .iter()
        .enumerate()
        .map(|(i, &b)| (i, b / r.sim_time))
        .collect();
    hot.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 15 channel utilisations:");
    for &(c, u) in hot.iter().take(15) {
        println!("  util={u:.3}  {}", built.describe_channel(c as u32));
    }
    // Aggregate by network kind.
    let mut agg: std::collections::BTreeMap<String, (f64, usize)> = Default::default();
    for (i, &b) in r.channel_busy.iter().enumerate() {
        let (net, _) = built.network_of(i as u32);
        let e = agg.entry(net.to_string()).or_insert((0.0, 0));
        e.0 += b / r.sim_time;
        e.1 += 1;
    }
    println!("mean utilisation by network:");
    for (net, (sum, n)) in agg {
        println!("  {net}: {:.4}", sum / n as f64);
    }
}
