//! Diagnostic: hottest channels of one simulation run.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::diagnostics` and is equally reachable as
//! `cocnet run hotspots`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("hotspots");
}
