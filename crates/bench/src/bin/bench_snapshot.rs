//! Perf: events/sec snapshot appended to the BENCH_sim.json trajectory.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::perf` and is equally reachable as
//! `cocnet run bench_snapshot`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("bench_snapshot");
}
