//! Ablation: the relaxing factor of Eqs. (27)-(28).
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::ablations` and is equally reachable as
//! `cocnet run ablation_relax`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("ablation_relax");
}
