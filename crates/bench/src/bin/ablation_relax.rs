//! Ablation: the relaxing factor δ of Eqs. (27)–(28).
//!
//! The paper discounts ICN2-stage waits by δ = β_ICN2/β_ECN1 because "when
//! the message flow comes into the ICN2 (with usually more bandwidth) the
//! waiting time will be decreased proportional to the capacity". This
//! ablation quantifies how much that term matters, and on which side of
//! the simulation the model lands with and without it.
//!
//! The simulation points run concurrently through the unified
//! `Scenario` runner.

use cocnet::model::{evaluate, ModelOptions, Workload};
use cocnet::presets;
use cocnet::runner::Scenario;
use cocnet::sim::SimConfig;
use cocnet::stats::Table;

fn main() {
    let with = ModelOptions::default();
    let without = ModelOptions {
        relaxing_factor: false,
        ..ModelOptions::default()
    };
    let sim_cfg = SimConfig {
        warmup: 2_000,
        measured: 20_000,
        drain: 2_000,
        seed: 17,
        ..SimConfig::default()
    };
    for (name, spec, wl, rates) in [
        (
            "N=1120, M=32, Lm=256",
            presets::org_1120(),
            presets::wl_m32_l256(),
            [1e-4, 2e-4, 3e-4, 4e-4],
        ),
        (
            "N=544, M=32, Lm=256",
            presets::org_544(),
            presets::wl_m32_l256(),
            [2e-4, 4e-4, 6e-4, 8e-4],
        ),
    ] {
        println!("## {name}");
        let mut table = Table::new([
            "rate",
            "with delta",
            "without delta",
            "delta effect%",
            "sim",
        ]);
        let scenario = Scenario::new(name, spec.clone())
            .with_workload("Lm=256", wl)
            .with_rates(rates.to_vec())
            .with_sim(sim_cfg);
        let points = scenario.run_sim_detailed().remove(0);
        for point in points {
            let rate = point.rate;
            let w = Workload {
                lambda_g: rate,
                ..wl
            };
            let a = evaluate(&spec, &w, &with).map(|o| o.latency);
            let b = evaluate(&spec, &w, &without).map(|o| o.latency);
            let fmt = |r: &Result<f64, _>| {
                r.as_ref()
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|_| "saturated".into())
            };
            let effect = match (&a, &b) {
                (Ok(x), Ok(y)) => format!("{:+.2}", (y - x) / x * 100.0),
                _ => "-".into(),
            };
            table.push_row([
                format!("{rate:.2e}"),
                fmt(&a),
                fmt(&b),
                effect,
                format!("{:.2}", point.first().latency.mean),
            ]);
        }
        println!("{}", table.render());
    }
}
