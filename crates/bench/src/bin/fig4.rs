//! Regenerates the paper's Fig. 4.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::figures` and is equally reachable as
//! `cocnet run fig4`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("fig4");
}
