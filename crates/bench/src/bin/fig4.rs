//! Regenerates the paper's Fig. 4. See `cocnet_bench::Cli` for flags.

fn main() {
    cocnet_bench::figure_main(cocnet::experiments::Figure::Fig4);
}
