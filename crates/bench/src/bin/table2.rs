//! Regenerates Table 2: the network characteristics used for model
//! validation, plus the derived per-flit service times (Eqs. (11)–(12))
//! for both flit sizes used in the figures.

use cocnet::presets;
use cocnet::stats::Table;

fn main() {
    let mut table = Table::new(["Network", "Bandwidth", "Network Latency", "Switch Latency"]);
    for (name, net) in [("Net.1", presets::net1()), ("Net.2", presets::net2())] {
        table.push_row([
            name.to_string(),
            format!("{}", net.bandwidth),
            format!("{}", net.network_latency),
            format!("{}", net.switch_latency),
        ]);
    }
    println!("Table 2. Network Characteristics for Model Validation");
    println!("{}", table.render());
    println!("wiring: ICN1, ICN2 <- Net.1;  ECN1 <- Net.2\n");

    let mut derived = Table::new(["Network", "d_m", "t_cn (Eq.11)", "t_cs (Eq.12)"]);
    for (name, net) in [("Net.1", presets::net1()), ("Net.2", presets::net2())] {
        for d_m in [256.0, 512.0] {
            derived.push_row([
                name.to_string(),
                format!("{d_m}"),
                format!("{:.4}", net.t_cn(d_m)),
                format!("{:.4}", net.t_cs(d_m)),
            ]);
        }
    }
    println!("Derived per-flit service times:");
    println!("{}", derived.render());
}
