//! Perf: route-interning scale sweep — build time, resident route-table
//! bytes and events/sec from ~1k to 10^6 endpoints.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::scale` and is equally reachable as
//! `cocnet run org_scale`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("org_scale");
}
