//! Diagnostic: pairwise inter-cluster latency matrix.
//!
//! Thin wrapper over the scenario registry — the experiment itself lives
//! in `cocnet::registry::diagnostics` and is equally reachable as
//! `cocnet run pairwise`. See `cocnet::registry::RunOpts` for the flags.

fn main() {
    cocnet::registry::bin_main("pairwise");
}
