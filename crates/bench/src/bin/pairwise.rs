//! Pairwise inter-cluster latency matrix `L_ex^{(i,j)}` (Eq. (32)) —
//! the quantity Eq. (35) averages away. Printed per cluster *class* (the
//! organizations have 3 classes), it shows how asymmetric the
//! cluster-of-clusters really is: small→small pairs pay the most because
//! both endpoints' ECN1 trees are shallow but their concentrators carry
//! proportionally more of their traffic.

use cocnet::model::inter::pair_latency;
use cocnet::model::{ModelOptions, Workload};
use cocnet::presets;
use cocnet::stats::Table;

fn main() {
    let opts = ModelOptions::default();
    for (name, spec, rate) in [
        ("N=1120", presets::org_1120(), 2e-4),
        ("N=544", presets::org_544(), 4e-4),
    ] {
        let wl = Workload {
            lambda_g: rate,
            ..presets::wl_m32_l256()
        };
        // One representative cluster per height class.
        let mut reps: Vec<usize> = Vec::new();
        for i in 0..spec.num_clusters() {
            if !reps
                .iter()
                .any(|&r| spec.clusters[r].n == spec.clusters[i].n)
            {
                reps.push(i);
            }
        }
        println!("## {name}, M=32, Lm=256, rate={rate:.1e} — L_ex by class pair");
        let mut header = vec!["src \\ dst".to_string()];
        header.extend(
            reps.iter()
                .map(|&j| format!("n={} (N={})", spec.clusters[j].n, spec.cluster_nodes(j))),
        );
        let mut table = Table::new(header);
        for &i in &reps {
            let mut row = vec![format!(
                "n={} (N={})",
                spec.clusters[i].n,
                spec.cluster_nodes(i)
            )];
            for &j in &reps {
                // Same class: pick another member of that class if it
                // exists (pair latency needs distinct clusters).
                let j_eff = if i == j {
                    (0..spec.num_clusters())
                        .find(|&x| x != i && spec.clusters[x].n == spec.clusters[j].n)
                } else {
                    Some(j)
                };
                row.push(match j_eff {
                    Some(j2) => pair_latency(&spec, &wl, i, j2, &opts)
                        .map(|p| {
                            format!("{:.1}", p.source_wait + p.network + p.tail + p.condis_wait)
                        })
                        .unwrap_or_else(|_| "sat".into()),
                    None => "-".into(),
                });
            }
            table.push_row(row);
        }
        println!("{}", table.render());
    }
    println!(
        "rows: source class; columns: destination class. The destination's\n\
         tree height sets the descent length, the pair's combined outgoing\n\
         traffic sets the concentrator load (Eq. 22-23): big<->big pairs\n\
         dominate the Eq. (35) average."
    );
}
