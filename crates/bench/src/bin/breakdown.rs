//! Latency decomposition: where does the time go as load grows?
//!
//! The model's component structure (Eqs. (4) and (39)) makes the answer
//! exact: source-queue wait, network latency, tail drain, and
//! concentrator/dispatcher wait, separately for the intra- and
//! inter-cluster populations. This is the designer's view behind Fig. 7's
//! conclusion — the component that explodes first is the concentrator
//! wait, which is why boosting ICN2 bandwidth pays off.

use cocnet::model::{evaluate, ModelOptions, Workload};
use cocnet::presets;
use cocnet::stats::Table;

fn main() {
    let opts = ModelOptions::default();
    for (name, spec, wl, rates) in [
        (
            "N=1120, M=32, Lm=256",
            presets::org_1120(),
            presets::wl_m32_l256(),
            [5e-5, 2e-4, 3.5e-4, 4.7e-4],
        ),
        (
            "N=544, M=64, Lm=256",
            presets::org_544(),
            presets::wl_m64_l256(),
            [5e-5, 2e-4, 3.5e-4, 4.7e-4],
        ),
    ] {
        println!("## {name} — population-weighted latency components");
        let mut table = Table::new([
            "rate",
            "intra W_in",
            "intra T+E",
            "inter W_ex",
            "inter T+E",
            "condis W_d",
            "total",
        ]);
        for rate in rates {
            let w = Workload {
                lambda_g: rate,
                ..wl
            };
            match evaluate(&spec, &w, &opts) {
                Ok(out) => {
                    let n = spec.total_nodes() as f64;
                    let mut acc = [0.0f64; 5];
                    for c in &out.per_cluster {
                        let share = spec.cluster_nodes(c.cluster) as f64 / n;
                        let u = c.outgoing_probability;
                        acc[0] += share * (1.0 - u) * c.intra.source_wait;
                        acc[1] += share * (1.0 - u) * (c.intra.network + c.intra.tail);
                        acc[2] += share * u * c.inter.source_wait;
                        acc[3] += share * u * (c.inter.network + c.inter.tail);
                        acc[4] += share * u * c.inter.condis_wait;
                    }
                    table.push_row([
                        format!("{rate:.2e}"),
                        format!("{:.2}", acc[0]),
                        format!("{:.2}", acc[1]),
                        format!("{:.2}", acc[2]),
                        format!("{:.2}", acc[3]),
                        format!("{:.2}", acc[4]),
                        format!("{:.2}", out.latency),
                    ]);
                }
                Err(e) => {
                    table.push_row([
                        format!("{rate:.2e}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("{e}"),
                    ]);
                }
            }
        }
        println!("{}", table.render());
    }
    println!(
        "as load approaches saturation the concentrator/dispatcher wait (W_d)\n\
         dominates the growth — the analytic restatement of the hotspots\n\
         experiment's measured bottleneck."
    );
}
