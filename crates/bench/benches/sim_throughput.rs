//! Criterion benchmark: simulator throughput.
//!
//! Measures end-to-end runs on a small heterogeneous system across three
//! contention regimes — message-dominated (light load), near-saturation
//! (contention-dominated) and inter-cluster-heavy (every message crosses
//! the ECN1/ICN2 boundary) — plus topology construction for the paper's
//! big organizations. The load cases are the speedup yardstick for the
//! zero-allocation hot path (see `bench_snapshot` for the committed
//! events/sec trajectory).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cocnet::model::Workload;
use cocnet::presets;
use cocnet::sim::{
    run_simulation, run_simulation_built, BuiltSystem, FaultAction, FaultEvent, FaultSchedule,
    SchedulerKind, ShardMode, SimConfig,
};
use cocnet::topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};
use cocnet_workloads::Pattern;

fn small_spec() -> SystemSpec {
    let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
    let c = |n| ClusterSpec {
        n,
        icn1: net1,
        ecn1: net2,
        topology: Default::default(),
    };
    SystemSpec::new(4, vec![c(2), c(2), c(3), c(3)], net1).unwrap()
}

fn bench_cfg() -> SimConfig {
    SimConfig {
        warmup: 500,
        measured: 5_000,
        drain: 500,
        seed: 1,
        ..SimConfig::default()
    }
}

fn bench_sim_run(c: &mut Criterion) {
    let spec = small_spec();
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    let cfg = bench_cfg();
    let built = BuiltSystem::build(&spec, wl.flit_bytes);
    let mut group = c.benchmark_group("sim");
    group.sample_size(20);
    group.bench_function("run_6k_messages_small_system", |b| {
        b.iter(|| run_simulation_built(black_box(&built), &wl, Pattern::Uniform, &cfg))
    });
    group.bench_function("run_including_build", |b| {
        b.iter(|| run_simulation(black_box(&spec), &wl, Pattern::Uniform, &cfg))
    });
    group.finish();
}

/// Near-saturation load: chained blocking dominates, so most events are
/// channel handoffs under contention rather than message generations.
/// This is where the hot-path rework has to pay off — each case runs
/// under both event-scheduler backends so the heap-vs-calendar delta is
/// measurable per contention regime.
fn bench_sim_load(c: &mut Criterion) {
    let spec = small_spec();
    let mut group = c.benchmark_group("sim_load");
    group.sample_size(10);

    let heavy = Workload::new(1e-3, 32, 256.0).unwrap();
    let built = BuiltSystem::build(&spec, heavy.flit_bytes);
    // Every message leaves its cluster: three segments per message, all
    // contending for the ECN1 ascent/descent and ICN2 crossing channels.
    let inter = Workload::new(4e-4, 32, 256.0).unwrap();
    let built_inter = BuiltSystem::build(&spec, inter.flit_bytes);
    let pattern = Pattern::ClusterLocal { locality: 0.0 };
    // Fault path: a timed fail/repair pulse on node 0's injection link —
    // measures drop/retry/backoff overhead against the zero-fault cases.
    let light = Workload::new(2e-4, 32, 256.0).unwrap();
    let injection_link = {
        let routes = built.route_table();
        let r = routes.route_ref(0, 1);
        routes.chan_at(routes.seg_meta(r, 0).start)
    };
    let faults = FaultSchedule {
        events: vec![
            FaultEvent {
                time: 0.0,
                link: injection_link,
                action: FaultAction::Fail,
            },
            FaultEvent {
                time: 10_000.0,
                link: injection_link,
                action: FaultAction::Repair,
            },
        ],
        max_attempts: 64,
        retry_timeout: 100.0,
        max_timeout: 800.0,
        ..FaultSchedule::default()
    };
    for scheduler in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        let cfg = SimConfig {
            scheduler,
            ..bench_cfg()
        };
        group.bench_function(format!("high_load_near_saturation/{scheduler}"), |b| {
            b.iter(|| run_simulation_built(black_box(&built), &heavy, Pattern::Uniform, &cfg))
        });
        group.bench_function(format!("inter_cluster_heavy/{scheduler}"), |b| {
            b.iter(|| run_simulation_built(black_box(&built_inter), &inter, pattern, &cfg))
        });
        let cfg_faulted = SimConfig {
            faults: faults.clone(),
            ..cfg
        };
        group.bench_function(format!("faulted_pulse_retry/{scheduler}"), |b| {
            b.iter(|| {
                run_simulation_built(black_box(&built), &light, Pattern::Uniform, &cfg_faulted)
            })
        });
        // The cluster-sharded parallel engine on the same cases: results
        // are bit-identical to the serial runs above, so any wall-clock
        // delta is pure engine overhead (or win, on multicore hosts).
        let cfg_sharded = SimConfig {
            shards: ShardMode::Auto,
            ..cfg
        };
        group.bench_function(
            format!("high_load_near_saturation/{scheduler}/sharded"),
            |b| {
                b.iter(|| {
                    run_simulation_built(black_box(&built), &heavy, Pattern::Uniform, &cfg_sharded)
                })
            },
        );
        group.bench_function(format!("inter_cluster_heavy/{scheduler}/sharded"), |b| {
            b.iter(|| run_simulation_built(black_box(&built_inter), &inter, pattern, &cfg_sharded))
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(20);
    for (name, spec) in [
        ("org_1120", presets::org_1120()),
        ("org_544", presets::org_544()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| BuiltSystem::build(black_box(&spec), 256.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_run, bench_sim_load, bench_build);
criterion_main!(benches);
