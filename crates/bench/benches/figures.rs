//! Criterion benchmark: cost of regenerating each paper figure's *analysis*
//! series (the model-side sweep; the simulation side is measured separately
//! in `sim_throughput`).
//!
//! One benchmark per figure — Figs. 3–6 sweep two flit sizes over ten rates,
//! Fig. 7 sweeps four system variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cocnet::experiments::{figure_config, run_fig7, run_figure_model, Figure};
use cocnet::model::ModelOptions;

fn bench_figures(c: &mut Criterion) {
    let opts = ModelOptions::default();
    let mut group = c.benchmark_group("figure_analysis");
    for (name, fig) in [
        ("fig3", Figure::Fig3),
        ("fig4", Figure::Fig4),
        ("fig5", Figure::Fig5),
        ("fig6", Figure::Fig6),
    ] {
        let cfg = figure_config(fig);
        group.bench_function(name, |b| {
            b.iter(|| run_figure_model(black_box(&cfg), &opts, 10))
        });
    }
    group.bench_function("fig7", |b| b.iter(|| run_fig7(black_box(&opts), 10)));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
