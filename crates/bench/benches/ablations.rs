//! Criterion benchmark: cost of the model's ablation variants and the
//! simulator's coupling modes.
//!
//! The interesting output here is not just time but the check that the
//! ablation switches stay zero-cost-ish: disabling the relaxing factor or
//! the variance term must not change evaluation complexity.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cocnet::model::{evaluate, ModelOptions, VarianceApprox, Workload};
use cocnet::presets;
use cocnet::sim::{run_simulation_built, BuiltSystem, Coupling, SimConfig};
use cocnet_workloads::Pattern;

fn bench_model_ablations(c: &mut Criterion) {
    let spec = presets::org_544();
    let wl = Workload {
        lambda_g: 4e-4,
        ..presets::wl_m32_l256()
    };
    let mut group = c.benchmark_group("model_ablations");
    for (name, opts) in [
        ("paper_defaults", ModelOptions::default()),
        (
            "no_relaxing_factor",
            ModelOptions {
                relaxing_factor: false,
                ..ModelOptions::default()
            },
        ),
        (
            "zero_variance",
            ModelOptions {
                variance: VarianceApprox::Zero,
                ..ModelOptions::default()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| evaluate(black_box(&spec), &wl, black_box(&opts)).unwrap())
        });
    }
    group.finish();
}

fn bench_coupling_modes(c: &mut Criterion) {
    let spec = presets::org_544();
    let wl = Workload {
        lambda_g: 2e-4,
        ..presets::wl_m32_l256()
    };
    let built = BuiltSystem::build(&spec, wl.flit_bytes);
    let mut group = c.benchmark_group("sim_coupling");
    group.sample_size(10);
    for (name, coupling) in [
        ("virtual_cut_through", Coupling::VirtualCutThrough),
        ("store_and_forward", Coupling::StoreAndForward),
        ("cut_through", Coupling::CutThrough),
    ] {
        let cfg = SimConfig {
            warmup: 500,
            measured: 5_000,
            drain: 500,
            seed: 3,
            coupling,
            ..SimConfig::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| run_simulation_built(black_box(&built), &wl, Pattern::Uniform, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_ablations, bench_coupling_modes);
criterion_main!(benches);
