//! Criterion benchmark: analytical model evaluation speed.
//!
//! The model's selling point over simulation is evaluation cost; this bench
//! quantifies it for both Table 1 organizations (a full Eqs. (1)–(39)
//! evaluation, all cluster classes and pair terms).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cocnet::model::{evaluate, ModelOptions, Workload};
use cocnet::presets;

fn bench_model_eval(c: &mut Criterion) {
    let opts = ModelOptions::default();
    let mut group = c.benchmark_group("model_eval");
    for (name, spec, rate) in [
        ("org_1120", presets::org_1120(), 2e-4),
        ("org_544", presets::org_544(), 4e-4),
    ] {
        let wl = Workload {
            lambda_g: rate,
            ..presets::wl_m32_l256()
        };
        group.bench_function(name, |b| {
            b.iter(|| evaluate(black_box(&spec), black_box(&wl), black_box(&opts)).unwrap())
        });
    }
    group.finish();
}

fn bench_saturation_search(c: &mut Criterion) {
    let opts = ModelOptions::default();
    let spec = presets::org_544();
    let wl = presets::wl_m32_l256();
    c.bench_function("saturation_point_org544", |b| {
        b.iter(|| {
            cocnet::model::saturation_point(black_box(&spec), black_box(&wl), &opts, 1e-3).unwrap()
        })
    });
}

criterion_group!(benches, bench_model_eval, bench_saturation_search);
criterion_main!(benches);
