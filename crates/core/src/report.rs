//! Rendering experiment output: aligned ASCII tables for the terminal and
//! JSON/CSV for machine consumption (EXPERIMENTS.md records both). This is
//! the unified output writer behind `cocnet run … --out json|csv` and the
//! figure binaries' `--json` flag.
//!
//! Two writer families share the layout: the plain one over [`Series`]
//! (fixed-replication scenarios, unchanged output since the registry
//! refactor) and the CI-bearing one over [`CiSeries`] (precision-driven
//! scenarios: every simulation point carries its confidence interval and
//! the replications it cost).

use cocnet_stats::{CiSeries, Series, Table};
use serde::{Deserialize, Serialize};

/// Machine-readable formats of the unified output writer
/// (`cocnet run … --out <format>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Pretty-printed JSON array of series (round-trips via [`from_json`]).
    Json,
    /// One CSV table over the shared rate axis, one column per series.
    Csv,
}

impl std::str::FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            other => Err(format!("unknown output format {other:?} (use json or csv)")),
        }
    }
}

/// Whether two x values coincide within float noise — the single axis-
/// alignment predicate of every writer here, plain and CI-bearing alike
/// (one definition so the two families can never align rows differently).
fn same_x(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-15 + 1e-9 * a.abs()
}

/// The union of every series' x values, deduplicated within float noise —
/// the shared axis of [`render_figure`] and [`to_csv`].
fn shared_axis(series: &[Series]) -> Vec<f64> {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| same_x(*a, *b));
    xs
}

/// The series' y value at shared-axis position `x`, if it has one.
fn value_at(s: &Series, x: f64) -> Option<f64> {
    s.points.iter().find(|p| same_x(x, p.x)).map(|p| p.y)
}

/// Renders a set of series sharing an x axis as one aligned table:
/// first column the rate, one column per series (blank where a series has
/// no point at that x, e.g. past its saturation).
pub fn render_figure(title: &str, series: &[Series]) -> String {
    let mut header = vec!["rate".to_string()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let mut table = Table::new(header);
    for &x in &shared_axis(series) {
        let mut row = vec![format!("{x:.3e}")];
        for s in series {
            row.push(
                value_at(s, x)
                    .map(|y| format!("{y:.2}"))
                    .unwrap_or_default(),
            );
        }
        table.push_row(row);
    }
    format!("## {title}\n{}", table.render())
}

/// Quotes one CSV cell per RFC 4180 (only when needed — labels like
/// `"N=544, Base"` contain commas).
fn csv_cell(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Serialises series as CSV over the shared rate axis: header
/// `rate,<label>…`, one row per rate, empty cells where a series has no
/// point (saturation). Values keep full `f64` round-trip precision.
pub fn to_csv(series: &[Series]) -> String {
    let mut out = String::from("rate");
    for s in series {
        out.push(',');
        out.push_str(&csv_cell(&s.label));
    }
    out.push('\n');
    for &x in &shared_axis(series) {
        out.push_str(&format!("{x:e}"));
        for s in series {
            out.push(',');
            if let Some(y) = value_at(s, x) {
                out.push_str(&format!("{y}"));
            }
        }
        out.push('\n');
    }
    out
}

/// The unified machine-readable writer: series in the requested format.
pub fn render_machine(series: &[Series], format: OutputFormat) -> String {
    match format {
        OutputFormat::Json => to_json(series),
        OutputFormat::Csv => to_csv(series),
    }
}

/// Serialises series to pretty JSON (the figure binaries' `--json` output).
pub fn to_json(series: &[Series]) -> String {
    serde_json::to_string_pretty(series).expect("series are serialisable")
}

/// Parses series back from JSON (round-trip for tooling).
pub fn from_json(json: &str) -> Result<Vec<Series>, serde_json::Error> {
    serde_json::from_str(json)
}

// ---- CI-bearing writers (precision-driven scenarios) -----------------------

/// The machine-readable shape of a precision-driven run: the analytical
/// series (no CI — the model is deterministic) plus the CI-bearing
/// simulation series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CiReport {
    /// Analytical series, one per workload.
    pub analysis: Vec<Series>,
    /// Simulation series with per-point CI and replication spend.
    pub simulation: Vec<CiSeries>,
}

/// The shared x axis of analysis and CI-bearing simulation series.
fn shared_axis_ci(analysis: &[Series], simulation: &[CiSeries]) -> Vec<f64> {
    let mut xs: Vec<f64> = analysis
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .chain(simulation.iter().flat_map(|s| s.points.iter().map(|p| p.x)))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| same_x(*a, *b));
    xs
}

/// The CI point of `s` at shared-axis position `x`, if it has one.
fn ci_value_at(s: &CiSeries, x: f64) -> Option<&cocnet_stats::CiPoint> {
    s.points.iter().find(|p| same_x(x, p.x))
}

/// Renders a precision-driven figure: the analysis columns as in
/// [`render_figure`], then per simulation series its mean, CI bounds and
/// replications spent (`reps`, suffixed `*` where the point tripped the
/// replication cap before converging).
pub fn render_figure_ci(title: &str, analysis: &[Series], simulation: &[CiSeries]) -> String {
    let mut header = vec!["rate".to_string()];
    header.extend(analysis.iter().map(|s| s.label.clone()));
    for s in simulation {
        header.push(s.label.clone());
        header.push("ci lo".into());
        header.push("ci hi".into());
        header.push("reps".into());
    }
    let mut table = Table::new(header);
    for &x in &shared_axis_ci(analysis, simulation) {
        let mut row = vec![format!("{x:.3e}")];
        for s in analysis {
            row.push(
                value_at(s, x)
                    .map(|y| format!("{y:.2}"))
                    .unwrap_or_default(),
            );
        }
        for s in simulation {
            match ci_value_at(s, x) {
                Some(p) => {
                    row.push(format!("{:.2}", p.y));
                    row.push(format!("{:.2}", p.lo));
                    row.push(format!("{:.2}", p.hi));
                    row.push(format!(
                        "{}{}",
                        p.replications,
                        if p.converged { "" } else { "*" }
                    ));
                }
                None => row.extend([String::new(), String::new(), String::new(), String::new()]),
            }
        }
        table.push_row(row);
    }
    let level = simulation.first().map(|s| s.level).unwrap_or(0.95);
    format!(
        "## {title}\n{}\n(CI level {level}; reps = replications spent, * = \
         replication cap tripped before the precision target was met)",
        table.render()
    )
}

/// Serialises a precision-driven run as CSV over the shared rate axis:
/// the analysis columns, then per simulation series `<label>`,
/// `<label> ci_lo`, `<label> ci_hi`, `<label> reps`, `<label> converged`.
/// Values keep full `f64` round-trip precision.
pub fn to_csv_ci(analysis: &[Series], simulation: &[CiSeries]) -> String {
    let mut out = String::from("rate");
    for s in analysis {
        out.push(',');
        out.push_str(&csv_cell(&s.label));
    }
    for s in simulation {
        for suffix in ["", " ci_lo", " ci_hi", " reps", " converged"] {
            out.push(',');
            out.push_str(&csv_cell(&format!("{}{suffix}", s.label)));
        }
    }
    out.push('\n');
    for &x in &shared_axis_ci(analysis, simulation) {
        out.push_str(&format!("{x:e}"));
        for s in analysis {
            out.push(',');
            if let Some(y) = value_at(s, x) {
                out.push_str(&format!("{y}"));
            }
        }
        for s in simulation {
            match ci_value_at(s, x) {
                Some(p) => out.push_str(&format!(
                    ",{},{},{},{},{}",
                    p.y, p.lo, p.hi, p.replications, p.converged
                )),
                None => out.push_str(",,,,,"),
            }
        }
        out.push('\n');
    }
    out
}

/// Serialises a precision-driven run to pretty JSON (a [`CiReport`]).
pub fn to_json_ci(analysis: &[Series], simulation: &[CiSeries]) -> String {
    let report = CiReport {
        analysis: analysis.to_vec(),
        simulation: simulation.to_vec(),
    };
    serde_json::to_string_pretty(&report).expect("report is serialisable")
}

/// Parses a [`CiReport`] back from JSON (round-trip for tooling).
pub fn from_json_ci(json: &str) -> Result<CiReport, serde_json::Error> {
    serde_json::from_str(json)
}

/// The unified machine-readable writer for precision-driven runs.
pub fn render_machine_ci(
    analysis: &[Series],
    simulation: &[CiSeries],
    format: OutputFormat,
) -> String {
    match format {
        OutputFormat::Json => to_json_ci(analysis, simulation),
        OutputFormat::Csv => to_csv_ci(analysis, simulation),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(label: &str, pts: &[(f64, f64)]) -> Series {
        let mut out = Series::new(label);
        for &(x, y) in pts {
            out.push(x, y);
        }
        out
    }

    #[test]
    fn renders_shared_axis() {
        let a = s("Analysis", &[(1e-4, 40.0), (2e-4, 44.0)]);
        let b = s("Simulation", &[(1e-4, 50.0)]);
        let text = render_figure("Fig. X", &[a, b]);
        assert!(text.contains("## Fig. X"));
        assert!(text.contains("Analysis"));
        assert!(text.contains("Simulation"));
        // The 2e-4 row exists but has no Simulation value.
        let row = text.lines().last().unwrap();
        assert!(row.contains("2.000e-4"));
        assert!(row.contains("44.00"));
        assert!(!row.contains("50.00"));
    }

    #[test]
    fn json_round_trip() {
        let series = vec![s("a", &[(1.0, 2.0)]), s("b", &[(3.0, 4.0)])];
        let json = to_json(&series);
        let back = from_json(&json).unwrap();
        assert_eq!(series, back);
    }

    #[test]
    fn csv_shares_axis_and_quotes_labels() {
        let a = s("N=544, Base", &[(1e-4, 40.0), (2e-4, 44.5)]);
        let b = s("plain", &[(1e-4, 50.0)]);
        let csv = to_csv(&[a, b]);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "rate,\"N=544, Base\",plain");
        assert_eq!(lines.next().unwrap(), "1e-4,40,50");
        // b has no point at 2e-4: trailing empty cell.
        assert_eq!(lines.next().unwrap(), "2e-4,44.5,");
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn output_format_parses() {
        use std::str::FromStr;
        assert_eq!(OutputFormat::from_str("json"), Ok(OutputFormat::Json));
        assert_eq!(OutputFormat::from_str("csv"), Ok(OutputFormat::Csv));
        assert!(OutputFormat::from_str("yaml").is_err());
    }

    fn ci_s(label: &str, pts: &[(f64, f64, f64, f64, usize, bool)]) -> CiSeries {
        let mut out = CiSeries::new(label, 0.95);
        for &(x, y, lo, hi, replications, converged) in pts {
            out.push(cocnet_stats::CiPoint {
                x,
                y,
                lo,
                hi,
                replications,
                converged,
            });
        }
        out
    }

    #[test]
    fn ci_figure_shows_bounds_and_spend() {
        let analysis = vec![s("Analysis (Lm=256)", &[(1e-4, 40.0), (2e-4, 44.0)])];
        let sim = vec![ci_s(
            "Simulation (Lm=256)",
            &[
                (1e-4, 41.0, 40.5, 41.5, 4, true),
                (2e-4, 45.0, 43.0, 47.0, 16, false),
            ],
        )];
        let text = render_figure_ci("Fig. X", &analysis, &sim);
        assert!(text.contains("## Fig. X"));
        assert!(text.contains("ci lo"));
        assert!(text.contains("ci hi"));
        assert!(text.contains("reps"));
        assert!(text.contains("40.50"));
        // Converged spend is bare; cap-tripped spend is starred.
        assert!(text.contains(" 4"));
        assert!(text.contains("16*"));
        assert!(text.contains("CI level 0.95"));
    }

    #[test]
    fn ci_csv_carries_full_precision_and_convergence() {
        let analysis = vec![s("Analysis", &[(1e-4, 40.0)])];
        let sim = vec![ci_s("Sim", &[(1e-4, 41.25, 40.5, 42.0, 4, true)])];
        let csv = to_csv_ci(&analysis, &sim);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "rate,Analysis,Sim,Sim ci_lo,Sim ci_hi,Sim reps,Sim converged"
        );
        assert_eq!(lines.next().unwrap(), "1e-4,40,41.25,40.5,42,4,true");
        assert_eq!(lines.next(), None);
        // A saturated simulation point leaves its cells empty.
        let sim2 = vec![ci_s("Sim", &[])];
        let analysis2 = vec![s("Analysis", &[(1e-4, 40.0)])];
        let csv2 = to_csv_ci(&analysis2, &sim2);
        assert_eq!(csv2.lines().nth(1).unwrap(), "1e-4,40,,,,,");
    }

    #[test]
    fn ci_json_round_trip() {
        let analysis = vec![s("Analysis", &[(1e-4, 40.0)])];
        let sim = vec![ci_s("Sim", &[(1e-4, 41.0, 40.0, 42.0, 8, true)])];
        let json = to_json_ci(&analysis, &sim);
        let back = from_json_ci(&json).unwrap();
        assert_eq!(back.analysis, analysis);
        assert_eq!(back.simulation, sim);
        assert_eq!(render_machine_ci(&analysis, &sim, OutputFormat::Json), json);
        assert_eq!(
            render_machine_ci(&analysis, &sim, OutputFormat::Csv),
            to_csv_ci(&analysis, &sim)
        );
    }
}
