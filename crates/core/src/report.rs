//! Rendering experiment output: aligned ASCII tables for the terminal and
//! JSON for machine consumption (EXPERIMENTS.md records both).

use cocnet_stats::{Series, Table};

/// Renders a set of series sharing an x axis as one aligned table:
/// first column the rate, one column per series (blank where a series has
/// no point at that x, e.g. past its saturation).
pub fn render_figure(title: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| (*a - *b).abs() <= 1e-15 + 1e-9 * a.abs());

    let mut header = vec!["rate".to_string()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let mut table = Table::new(header);
    for &x in &xs {
        let mut row = vec![format!("{x:.3e}")];
        for s in series {
            let cell = s
                .points
                .iter()
                .find(|p| (p.x - x).abs() <= 1e-15 + 1e-9 * x.abs())
                .map(|p| format!("{:.2}", p.y))
                .unwrap_or_default();
            row.push(cell);
        }
        table.push_row(row);
    }
    format!("## {title}\n{}", table.render())
}

/// Serialises series to pretty JSON (the figure binaries' `--json` output).
pub fn to_json(series: &[Series]) -> String {
    serde_json::to_string_pretty(series).expect("series are serialisable")
}

/// Parses series back from JSON (round-trip for tooling).
pub fn from_json(json: &str) -> Result<Vec<Series>, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(label: &str, pts: &[(f64, f64)]) -> Series {
        let mut out = Series::new(label);
        for &(x, y) in pts {
            out.push(x, y);
        }
        out
    }

    #[test]
    fn renders_shared_axis() {
        let a = s("Analysis", &[(1e-4, 40.0), (2e-4, 44.0)]);
        let b = s("Simulation", &[(1e-4, 50.0)]);
        let text = render_figure("Fig. X", &[a, b]);
        assert!(text.contains("## Fig. X"));
        assert!(text.contains("Analysis"));
        assert!(text.contains("Simulation"));
        // The 2e-4 row exists but has no Simulation value.
        let row = text.lines().last().unwrap();
        assert!(row.contains("2.000e-4"));
        assert!(row.contains("44.00"));
        assert!(!row.contains("50.00"));
    }

    #[test]
    fn json_round_trip() {
        let series = vec![s("a", &[(1.0, 2.0)]), s("b", &[(3.0, 4.0)])];
        let json = to_json(&series);
        let back = from_json(&json).unwrap();
        assert_eq!(series, back);
    }
}
