//! Rendering experiment output: aligned ASCII tables for the terminal and
//! JSON/CSV for machine consumption (EXPERIMENTS.md records both). This is
//! the unified output writer behind `cocnet run … --out json|csv` and the
//! figure binaries' `--json` flag.

use cocnet_stats::{Series, Table};

/// Machine-readable formats of the unified output writer
/// (`cocnet run … --out <format>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Pretty-printed JSON array of series (round-trips via [`from_json`]).
    Json,
    /// One CSV table over the shared rate axis, one column per series.
    Csv,
}

impl std::str::FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            other => Err(format!("unknown output format {other:?} (use json or csv)")),
        }
    }
}

/// The union of every series' x values, deduplicated within float noise —
/// the shared axis of [`render_figure`] and [`to_csv`].
fn shared_axis(series: &[Series]) -> Vec<f64> {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| (*a - *b).abs() <= 1e-15 + 1e-9 * a.abs());
    xs
}

/// The series' y value at shared-axis position `x`, if it has one.
fn value_at(s: &Series, x: f64) -> Option<f64> {
    s.points
        .iter()
        .find(|p| (p.x - x).abs() <= 1e-15 + 1e-9 * x.abs())
        .map(|p| p.y)
}

/// Renders a set of series sharing an x axis as one aligned table:
/// first column the rate, one column per series (blank where a series has
/// no point at that x, e.g. past its saturation).
pub fn render_figure(title: &str, series: &[Series]) -> String {
    let mut header = vec!["rate".to_string()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let mut table = Table::new(header);
    for &x in &shared_axis(series) {
        let mut row = vec![format!("{x:.3e}")];
        for s in series {
            row.push(
                value_at(s, x)
                    .map(|y| format!("{y:.2}"))
                    .unwrap_or_default(),
            );
        }
        table.push_row(row);
    }
    format!("## {title}\n{}", table.render())
}

/// Quotes one CSV cell per RFC 4180 (only when needed — labels like
/// `"N=544, Base"` contain commas).
fn csv_cell(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Serialises series as CSV over the shared rate axis: header
/// `rate,<label>…`, one row per rate, empty cells where a series has no
/// point (saturation). Values keep full `f64` round-trip precision.
pub fn to_csv(series: &[Series]) -> String {
    let mut out = String::from("rate");
    for s in series {
        out.push(',');
        out.push_str(&csv_cell(&s.label));
    }
    out.push('\n');
    for &x in &shared_axis(series) {
        out.push_str(&format!("{x:e}"));
        for s in series {
            out.push(',');
            if let Some(y) = value_at(s, x) {
                out.push_str(&format!("{y}"));
            }
        }
        out.push('\n');
    }
    out
}

/// The unified machine-readable writer: series in the requested format.
pub fn render_machine(series: &[Series], format: OutputFormat) -> String {
    match format {
        OutputFormat::Json => to_json(series),
        OutputFormat::Csv => to_csv(series),
    }
}

/// Serialises series to pretty JSON (the figure binaries' `--json` output).
pub fn to_json(series: &[Series]) -> String {
    serde_json::to_string_pretty(series).expect("series are serialisable")
}

/// Parses series back from JSON (round-trip for tooling).
pub fn from_json(json: &str) -> Result<Vec<Series>, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(label: &str, pts: &[(f64, f64)]) -> Series {
        let mut out = Series::new(label);
        for &(x, y) in pts {
            out.push(x, y);
        }
        out
    }

    #[test]
    fn renders_shared_axis() {
        let a = s("Analysis", &[(1e-4, 40.0), (2e-4, 44.0)]);
        let b = s("Simulation", &[(1e-4, 50.0)]);
        let text = render_figure("Fig. X", &[a, b]);
        assert!(text.contains("## Fig. X"));
        assert!(text.contains("Analysis"));
        assert!(text.contains("Simulation"));
        // The 2e-4 row exists but has no Simulation value.
        let row = text.lines().last().unwrap();
        assert!(row.contains("2.000e-4"));
        assert!(row.contains("44.00"));
        assert!(!row.contains("50.00"));
    }

    #[test]
    fn json_round_trip() {
        let series = vec![s("a", &[(1.0, 2.0)]), s("b", &[(3.0, 4.0)])];
        let json = to_json(&series);
        let back = from_json(&json).unwrap();
        assert_eq!(series, back);
    }

    #[test]
    fn csv_shares_axis_and_quotes_labels() {
        let a = s("N=544, Base", &[(1e-4, 40.0), (2e-4, 44.5)]);
        let b = s("plain", &[(1e-4, 50.0)]);
        let csv = to_csv(&[a, b]);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "rate,\"N=544, Base\",plain");
        assert_eq!(lines.next().unwrap(), "1e-4,40,50");
        // b has no point at 2e-4: trailing empty cell.
        assert_eq!(lines.next().unwrap(), "2e-4,44.5,");
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn output_format_parses() {
        use std::str::FromStr;
        assert_eq!(OutputFormat::from_str("json"), Ok(OutputFormat::Json));
        assert_eq!(OutputFormat::from_str("csv"), Ok(OutputFormat::Csv));
        assert!(OutputFormat::from_str("yaml").is_err());
    }
}
