//! Model-vs-simulation comparison utilities.

use cocnet_stats::Series;
use serde::{Deserialize, Serialize};

/// One row of a validation table: model and simulation at the same rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Traffic generation rate.
    pub rate: f64,
    /// Model prediction.
    pub model: f64,
    /// Simulated mean.
    pub sim: f64,
    /// Signed relative error `(model − sim)/sim` in percent.
    pub err_pct: f64,
}

/// Pairs up a model series and a simulation series on (approximately)
/// matching x values and computes per-point errors. Points present in only
/// one series (e.g. sim points dropped at saturation) are skipped.
pub fn compare_series(model: &Series, sim: &Series) -> Vec<ValidationRow> {
    let mut rows = Vec::new();
    for mp in &model.points {
        if let Some(sp) = sim
            .points
            .iter()
            .find(|sp| (sp.x - mp.x).abs() <= 1e-12 + 1e-6 * mp.x.abs())
        {
            if sp.y != 0.0 {
                rows.push(ValidationRow {
                    rate: mp.x,
                    model: mp.y,
                    sim: sp.y,
                    err_pct: (mp.y - sp.y) / sp.y * 100.0,
                });
            }
        }
    }
    rows
}

/// Mean absolute error (percent) over the lightest-loaded `k` rows —
/// the regime where the paper reports its 4–8 % accuracy.
pub fn light_load_error(rows: &[ValidationRow], k: usize) -> Option<f64> {
    if rows.is_empty() {
        return None;
    }
    let take = k.min(rows.len());
    Some(rows[..take].iter().map(|r| r.err_pct.abs()).sum::<f64>() / take as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(label: &str, pts: &[(f64, f64)]) -> Series {
        let mut out = Series::new(label);
        for &(x, y) in pts {
            out.push(x, y);
        }
        out
    }

    #[test]
    fn pairs_matching_points() {
        let model = s("m", &[(1e-4, 40.0), (2e-4, 44.0), (3e-4, 50.0)]);
        let sim = s("s", &[(1e-4, 50.0), (2e-4, 55.0)]);
        let rows = compare_series(&model, &sim);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].err_pct - (-20.0)).abs() < 1e-9);
    }

    #[test]
    fn skips_unmatched_and_zero() {
        let model = s("m", &[(1.0, 10.0), (2.0, 20.0)]);
        let sim = s("s", &[(2.0, 0.0), (3.0, 5.0)]);
        assert!(compare_series(&model, &sim).is_empty());
    }

    #[test]
    fn light_load_error_averages_prefix() {
        let rows = vec![
            ValidationRow {
                rate: 1.0,
                model: 1.0,
                sim: 1.0,
                err_pct: -10.0,
            },
            ValidationRow {
                rate: 2.0,
                model: 1.0,
                sim: 1.0,
                err_pct: 30.0,
            },
        ];
        assert_eq!(light_load_error(&rows, 1), Some(10.0));
        assert_eq!(light_load_error(&rows, 5), Some(20.0));
        assert_eq!(light_load_error(&[], 3), None);
    }
}
