//! cocnet — analytical modeling and simulation of heterogeneous
//! large-scale cluster-of-clusters networks.
//!
//! This is the façade crate of the cocnet workspace, a from-scratch
//! reproduction of Javadi, Abawajy, Akbari & Nahavandi, *"Analytical
//! Network Modeling of Heterogeneous Large-Scale Cluster Systems"*
//! (IEEE CLUSTER 2006). It re-exports the public API of the component
//! crates and adds the experiment harness that regenerates every table and
//! figure of the paper.
//!
//! # Quick start
//!
//! ```
//! use cocnet::prelude::*;
//!
//! // The paper's N=544 organization (Table 1) under the Fig. 5 workload.
//! let spec = cocnet::presets::org_544();
//! let wl = cocnet::presets::wl_m32_l256().with_rate(2e-4);
//!
//! // Analytical prediction (Eqs. 1–39)…
//! let predicted = evaluate(&spec, &wl, &ModelOptions::default()).unwrap();
//!
//! // …validated by discrete-event simulation.
//! let mut cfg = SimConfig::quick(7);
//! cfg.measured = 2_000;
//! let simulated = run_simulation(&spec, &wl, Pattern::Uniform, &cfg);
//!
//! let err = (predicted.latency - simulated.latency.mean) / simulated.latency.mean;
//! assert!(err.abs() < 0.5);
//! ```
//!
//! # Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`cocnet_topology`] | m-port n-trees, Up*/Down* routing, system specs |
//! | [`cocnet_model`] | the analytical latency model (the paper's contribution) |
//! | [`cocnet_sim`] | discrete-event wormhole simulator (validation substrate) |
//! | [`cocnet_workloads`] | traffic patterns and the paper's presets |
//! | [`cocnet_stats`] | statistics utilities |

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod compare;
pub mod experiments;
pub mod registry;
pub mod report;
pub mod runner;

pub use cocnet_model as model;
pub use cocnet_sim as sim;
pub use cocnet_stats as stats;
pub use cocnet_topology as topology;
pub use cocnet_workloads::presets;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::compare::{compare_series, ValidationRow};
    pub use crate::experiments::{
        figure_config, run_fig7, run_figure_model, run_figure_sim, Figure,
    };
    pub use crate::registry::RunOpts;
    pub use crate::runner::{PointSim, RateGrid, Scenario, Seeding, WorkloadEntry};
    pub use cocnet_model::{
        evaluate, saturation_point, sweep, ModelOptions, SystemLatency, VarianceApprox, Workload,
    };
    pub use cocnet_sim::{run_simulation, Coupling, SimConfig, SimResults};
    pub use cocnet_stats::{Series, Summary};
    pub use cocnet_topology::{ClusterSpec, MPortNTree, NetworkCharacteristics, SystemSpec};
    pub use cocnet_workloads::Pattern;
}
