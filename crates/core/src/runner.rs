//! The unified experiment runner: one [`Scenario`] abstraction executed
//! over a rayon pool with deterministic seeding, shared by the figure
//! harness, the CLI, and every bench binary that sweeps load.
//!
//! Before this module existed, each figure/table/ablation binary hand-rolled
//! its own serial sweep loop; a full-methodology figure regeneration kept
//! one core busy for minutes while the rest idled. A `Scenario` names the
//! whole experiment — system spec, workloads, traffic pattern, sweep grid,
//! replication count, model options, simulation config — and the runner
//! fans every (workload × rate × replication) simulation out over the
//! thread pool.
//!
//! # Determinism
//!
//! Parallel execution is bit-identical to serial execution: each job's
//! seed is a pure function of the scenario ([`Seeding`]), and results are
//! reassembled in job order regardless of completion order.
//! [`Scenario::run_sim_serial`] is the same job list evaluated with a
//! plain loop — the equality is pinned by `tests/scenario_smoke.rs`.

use cocnet_model::{sweep, ModelOptions, Workload};
use cocnet_sim::{
    run_simulation_built, summarize, validate_faults, BuiltSystem, FaultSchedule,
    ReplicationAccumulator, ReplicationSummary, SimConfig, SimResults,
};
use cocnet_stats::{CiPoint, CiSeries, ConfidenceInterval, Precision, Series};
use cocnet_topology::SystemSpec;
use cocnet_workloads::Pattern;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How per-job seeds are derived from `sim.seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Seeding {
    /// Every sweep point uses `sim.seed` as its base seed (replication `r`
    /// adds `r`). This is the historical figure-harness behaviour — the
    /// published series and the determinism tests assume it.
    #[default]
    Shared,
    /// Each (workload, point) pair gets its own base seed, mixed from
    /// `sim.seed` by a SplitMix64 step, so sweep points are statistically
    /// independent even at equal rates. Preferred for new studies.
    PerPoint,
}

/// One plotted series: a legend label plus the workload that produces it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct WorkloadEntry {
    /// Legend suffix, e.g. `"Lm=256"` (series render as `Analysis (Lm=256)`
    /// / `Simulation (Lm=256)`).
    pub label: String,
    /// The workload swept for this series (its `lambda_g` is replaced by
    /// each grid rate in turn).
    pub workload: Workload,
}

/// The sweep grid of a [`Scenario`]: either the traffic generation rates
/// spelled out in plot order, or an evenly spaced range.
///
/// In JSON a grid is *untagged*: an array is an explicit list, an object
/// `{"start": …, "stop": …, "steps": …}` is a range (`start` may be
/// omitted and defaults to 0). A range resolves to `steps` evenly spaced
/// rates in `(start, stop]` — exactly [`cocnet_model::rate_grid`] when
/// `start == 0`, so declarative scenarios reproduce the figures' grids
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub enum RateGrid {
    /// Explicit rates, in plot order.
    List(Vec<f64>),
    /// `steps` evenly spaced rates in `(start, stop]`.
    Range {
        /// Exclusive lower bound (0 = the classic figure grid).
        start: f64,
        /// Inclusive upper bound (the largest rate on the x axis).
        stop: f64,
        /// Number of grid points.
        steps: usize,
    },
}

impl Default for RateGrid {
    fn default() -> Self {
        RateGrid::List(Vec::new())
    }
}

impl RateGrid {
    /// Resolves the grid to concrete rates, in plot order.
    pub fn values(&self) -> Vec<f64> {
        match self {
            RateGrid::List(rates) => rates.clone(),
            &RateGrid::Range { start, stop, steps } => {
                if start == 0.0 {
                    // Delegate so the resolved grid is bit-identical to the
                    // historical figure grids.
                    cocnet_model::rate_grid(stop, steps)
                } else {
                    (1..=steps)
                        .map(|i| start + (stop - start) * i as f64 / steps as f64)
                        .collect()
                }
            }
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        match self {
            RateGrid::List(rates) => rates.len(),
            RateGrid::Range { steps, .. } => *steps,
        }
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy re-gridded to `steps` points. Ranges rescale; explicit lists
    /// have no generating rule, so they are truncated/kept as-is (never
    /// extended).
    pub fn with_steps(&self, steps: usize) -> RateGrid {
        match self {
            RateGrid::List(rates) => {
                RateGrid::List(rates.iter().copied().take(steps.max(1)).collect())
            }
            &RateGrid::Range { start, stop, .. } => RateGrid::Range { start, stop, steps },
        }
    }
}

impl Serialize for RateGrid {
    fn to_value(&self) -> serde::Value {
        match self {
            RateGrid::List(rates) => rates.to_value(),
            &RateGrid::Range { start, stop, steps } => serde::Value::Obj(vec![
                ("start".to_string(), start.to_value()),
                ("stop".to_string(), stop.to_value()),
                ("steps".to_string(), steps.to_value()),
            ]),
        }
    }
}

impl Deserialize for RateGrid {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Arr(_) => Ok(RateGrid::List(Vec::<f64>::from_value(v)?)),
            serde::Value::Obj(_) => {
                serde::check_unknown_fields(v, "RateGrid", &["start", "stop", "steps"])?;
                let start = match v.get("start") {
                    Some(inner) => serde::de_field_val(inner, "RateGrid", "start")?,
                    None => 0.0,
                };
                Ok(RateGrid::Range {
                    start,
                    stop: serde::de_field(v, "RateGrid", "stop")?,
                    steps: serde::de_field(v, "RateGrid", "steps")?,
                })
            }
            other => Err(serde::DeError::expected(
                "rate list or {start, stop, steps} range",
                other,
            )),
        }
    }
}

/// `#[serde(default = …)]` helper: scenarios run one replication per point
/// unless the file says otherwise.
fn default_replications() -> usize {
    1
}

/// A precision target for adaptive replication control, as declared in a
/// scenario file (`"precision": {"rel_ci": 0.05}`) or forced from the CLI
/// (`cocnet run … --rel-ci 0.05`).
///
/// With a `precision`, a scenario stops running a fixed number of
/// replications per sweep point: the runner adds replications in
/// deterministic waves until the confidence interval over the replication
/// means is tight enough ([`Scenario::run_sim_adaptive`]), or the
/// `max_replications` cap trips. `rel_ci`/`abs_ci` mirror
/// [`cocnet_stats::Precision`]'s relative/absolute half-width bounds; at
/// least one must be set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default, deny_unknown_fields)]
pub struct PrecisionSpec {
    /// Maximum relative CI half-width (`half_width / mean`), e.g. `0.05`.
    pub rel_ci: Option<f64>,
    /// Maximum absolute CI half-width, in latency time units.
    pub abs_ci: Option<f64>,
    /// Confidence level of the interval (default 0.95).
    pub level: f64,
    /// Replications every point starts with (default 2 — the fewest that
    /// yield a finite CI).
    pub min_replications: usize,
    /// Hard cap per point (default 32): a point still unconverged here is
    /// reported with `converged = false` rather than run forever.
    pub max_replications: usize,
    /// Replications added per wave after the first (default 4). Larger
    /// waves use wide pools better; smaller waves stop closer to the
    /// minimum needed.
    pub wave: usize,
}

impl Default for PrecisionSpec {
    fn default() -> Self {
        PrecisionSpec {
            rel_ci: None,
            abs_ci: None,
            level: 0.95,
            min_replications: 2,
            max_replications: 32,
            wave: 4,
        }
    }
}

impl PrecisionSpec {
    /// The equivalent [`cocnet_stats::Precision`] stopping rule.
    pub fn target(&self) -> Precision {
        Precision {
            rel: self.rel_ci,
            abs: self.abs_ci,
            level: self.level,
        }
    }

    /// Checks every invariant a deserialized precision spec must satisfy.
    pub fn validate(&self) -> Result<(), String> {
        self.target().validate()?;
        if self.min_replications < 2 {
            return Err(format!(
                "precision: min_replications must be >= 2, a single replication has no CI (got {})",
                self.min_replications
            ));
        }
        if self.max_replications < self.min_replications {
            return Err(format!(
                "precision: max_replications {} below min_replications {}",
                self.max_replications, self.min_replications
            ));
        }
        if self.wave == 0 {
            return Err("precision: wave must be >= 1".into());
        }
        Ok(())
    }
}

/// One sweep point's outcome under adaptive replication control: the
/// cross-replication summary plus how the stopping rule ended.
#[derive(Debug, Clone)]
pub struct AdaptivePoint {
    /// Traffic generation rate of this point.
    pub rate: f64,
    /// Base seed the point's replications started from (replication `r`
    /// ran at `seed + r`, exactly as in fixed mode).
    pub seed: u64,
    /// Summary over every replication spent, in seed order.
    pub summary: ReplicationSummary,
    /// Confidence interval over the replication means at the precision
    /// target's level (the interval the stopping decision was made on).
    pub ci: ConfidenceInterval,
    /// Whether the point met its precision target (as opposed to tripping
    /// `max_replications` or saturating).
    pub converged: bool,
    /// Whether a replication failed to deliver its measured population
    /// (saturation) — such points stop immediately: more replications of
    /// a saturated configuration cannot converge.
    pub saturated: bool,
    /// Replications whose MSER-5 warm-up audit flagged a too-short
    /// warm-up (0 unless `sim.audit_warmup` is set).
    pub warmup_flagged: usize,
}

impl AdaptivePoint {
    /// Replications actually spent on this point.
    pub fn replications(&self) -> usize {
        self.summary.attempted
    }
}

/// One fully specified experiment: everything needed to regenerate a
/// latency-vs-load figure (or any rate sweep) from both the analytical
/// model and the simulator.
///
/// A `Scenario` is pure data — it serializes to/from JSON (see the
/// `scenarios/` directory for the committed paper experiments), so new
/// experiments can be authored and run through `cocnet run file.json`
/// without recompiling. Only `spec`, `workloads` and `rates` are required
/// in a file; everything else has the documented default.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Scenario {
    /// Human-readable title (used by reports; never by execution).
    #[serde(default)]
    pub name: String,
    /// The system organization under study.
    pub spec: SystemSpec,
    /// The plotted series; each label/workload pair produces one.
    pub workloads: Vec<WorkloadEntry>,
    /// Destination traffic pattern for the simulator (default: uniform).
    #[serde(default)]
    pub pattern: Pattern,
    /// The sweep grid: traffic generation rates, in plot order.
    pub rates: RateGrid,
    /// Independent replications per sweep point (≥ 1, default 1). Ignored
    /// by the adaptive path when `precision` is set.
    #[serde(default = "default_replications")]
    pub replications: usize,
    /// Optional precision target: when set, `cocnet run` replicates each
    /// point adaptively until the latency CI meets the target (see
    /// [`PrecisionSpec`]); when absent, the scenario runs exactly
    /// `replications` per point as always.
    #[serde(default)]
    pub precision: Option<PrecisionSpec>,
    /// Seed-derivation policy (default: the historical shared seed).
    #[serde(default)]
    pub seeding: Seeding,
    /// Analytical-model options (default: the paper's).
    #[serde(default)]
    pub opts: ModelOptions,
    /// Simulation configuration (default: the paper's §4 methodology).
    #[serde(default)]
    pub sim: SimConfig,
}

/// One sweep point's simulation outcome: the raw per-replication results
/// plus the rate they were run at. Detailed enough for binaries that
/// report more than the mean (intra/inter splits, channel utilisation).
#[derive(Debug, Clone)]
pub struct PointSim {
    /// Traffic generation rate of this point.
    pub rate: f64,
    /// Base seed the point's replications started from.
    pub seed: u64,
    /// Per-replication results, in seed order.
    pub runs: Vec<SimResults>,
}

impl PointSim {
    /// Whether every replication delivered its measured population.
    pub fn completed(&self) -> bool {
        self.runs.iter().all(|r| r.completed)
    }

    /// Cross-replication summary (mean of means, CI), identical to what
    /// [`cocnet_sim::replicate()`] would report.
    pub fn summary(&self) -> ReplicationSummary {
        summarize(&self.runs, self.runs.len())
    }

    /// The first replication's full results (convenient when
    /// `replications == 1`).
    pub fn first(&self) -> &SimResults {
        &self.runs[0]
    }

    /// Total engine events across the point's replications — the
    /// numerator of the events/sec throughput metric (`bench_snapshot`).
    pub fn events_total(&self) -> u64 {
        self.runs.iter().map(|r| r.events_processed).sum()
    }

    /// Total messages generated across the point's replications.
    pub fn messages_total(&self) -> u64 {
        self.runs.iter().map(|r| r.generated).sum()
    }

    /// Largest message-slab high-water mark across the replications: the
    /// peak number of concurrently live messages any single run held.
    pub fn peak_live_msgs(&self) -> u64 {
        self.runs
            .iter()
            .map(|r| r.peak_live_msgs)
            .max()
            .unwrap_or(0)
    }

    /// Total transmissions dropped at failed channels across replications.
    pub fn dropped_total(&self) -> u64 {
        self.runs.iter().map(|r| r.dropped).sum()
    }

    /// Total retransmissions across the point's replications.
    pub fn retransmits_total(&self) -> u64 {
        self.runs.iter().map(|r| r.retransmits).sum()
    }

    /// Total messages written off as unreachable across replications.
    pub fn unreachable_total(&self) -> u64 {
        self.runs.iter().map(|r| r.unreachable).sum()
    }

    /// Fraction of generated messages fully delivered, pooled over the
    /// point's replications — the degradation sweep's y-axis.
    pub fn delivered_fraction(&self) -> f64 {
        let gen: u64 = self.runs.iter().map(|r| r.generated).sum();
        if gen == 0 {
            1.0
        } else {
            self.runs.iter().map(|r| r.delivered_total).sum::<u64>() as f64 / gen as f64
        }
    }
}

/// A single schedulable unit: one simulation run.
#[derive(Debug, Clone, Copy)]
struct Job {
    workload: usize,
    point: usize,
    replication: usize,
    rate: f64,
    seed: u64,
}

/// SplitMix64 output function — the seed mixer behind [`Seeding::PerPoint`].
fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_add(b.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Scenario {
    /// A scenario with the given title and system, no workloads or rates
    /// yet, uniform traffic, one replication, shared seeding, and default
    /// model/sim options. Chain the `with_*` builders to fill it in.
    pub fn new(name: impl Into<String>, spec: SystemSpec) -> Self {
        Scenario {
            name: name.into(),
            spec,
            workloads: Vec::new(),
            pattern: Pattern::Uniform,
            rates: RateGrid::default(),
            replications: 1,
            precision: None,
            seeding: Seeding::default(),
            opts: ModelOptions::default(),
            sim: SimConfig::default(),
        }
    }

    /// Adds one `(legend suffix, workload)` series.
    pub fn with_workload(mut self, label: impl Into<String>, wl: Workload) -> Self {
        self.workloads.push(WorkloadEntry {
            label: label.into(),
            workload: wl,
        });
        self
    }

    /// Sets the sweep grid to an explicit rate list.
    pub fn with_rates(mut self, rates: Vec<f64>) -> Self {
        self.rates = RateGrid::List(rates);
        self
    }

    /// Sets an evenly spaced grid of `points` rates over `(0, max]`.
    pub fn with_grid(mut self, max: f64, points: usize) -> Self {
        self.rates = RateGrid::Range {
            start: 0.0,
            stop: max,
            steps: points,
        };
        self
    }

    /// Sets the traffic pattern.
    pub fn with_pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the per-point replication count.
    pub fn with_replications(mut self, replications: usize) -> Self {
        assert!(replications > 0, "need at least one replication");
        self.replications = replications;
        self
    }

    /// Sets the seeding policy.
    pub fn with_seeding(mut self, seeding: Seeding) -> Self {
        self.seeding = seeding;
        self
    }

    /// Sets the precision target, switching `cocnet run` (and
    /// [`Scenario::run_sim_adaptive`]) to adaptive replication control.
    pub fn with_precision(mut self, precision: PrecisionSpec) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Sets the model options.
    pub fn with_opts(mut self, opts: ModelOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the simulation configuration.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the fault-injection schedule (see [`FaultSchedule`]).
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.sim.faults = faults;
        self
    }

    /// The base seed of one (workload, point) pair under the scenario's
    /// seeding policy. Replication `r` runs at `point_seed + r`.
    pub fn point_seed(&self, workload: usize, point: usize) -> u64 {
        match self.seeding {
            Seeding::Shared => self.sim.seed,
            Seeding::PerPoint => mix_seed(self.sim.seed, (workload as u64) << 32 | point as u64),
        }
    }

    /// Checks every invariant a deserialized scenario file must satisfy
    /// before it can execute: a valid system and workloads, a non-empty
    /// positive finite rate grid, at least one replication, pattern
    /// parameters in range, and a terminating simulation config. The
    /// builder methods cannot construct most of these violations; `cocnet
    /// validate` and `cocnet run <file>` call this on every loaded file.
    pub fn validate(&self) -> Result<(), String> {
        self.spec.validate().map_err(|e| format!("spec: {e}"))?;
        if self.workloads.is_empty() {
            return Err("scenario needs at least one workload".into());
        }
        for entry in &self.workloads {
            entry
                .workload
                .validate()
                .map_err(|e| format!("workload {:?}: {e}", entry.label))?;
        }
        if let RateGrid::Range { start, stop, steps } = self.rates {
            if !(start.is_finite() && start >= 0.0 && stop.is_finite() && stop > start) {
                return Err(format!(
                    "rates: range needs finite 0 <= start < stop (got start={start}, stop={stop})"
                ));
            }
            if steps == 0 {
                return Err("rates: range needs at least one step".into());
            }
        }
        let rates = self.rates.values();
        if rates.is_empty() {
            return Err("scenario needs at least one rate".into());
        }
        for &rate in &rates {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(format!(
                    "rates: every rate must be finite and > 0 (got {rate})"
                ));
            }
        }
        if self.replications == 0 {
            return Err("replications must be >= 1".into());
        }
        if let Some(precision) = &self.precision {
            precision.validate()?;
        }
        let unit = |x: f64, what: &str| {
            if (0.0..=1.0).contains(&x) {
                Ok(())
            } else {
                Err(format!("pattern: {what} must lie in [0, 1] (got {x})"))
            }
        };
        match self.pattern {
            Pattern::Uniform | Pattern::Complement => {}
            Pattern::Hotspot { hotspot, fraction } => {
                unit(fraction, "hotspot fraction")?;
                if hotspot >= self.spec.total_nodes() {
                    return Err(format!(
                        "pattern: hotspot node {hotspot} outside the {}-node system",
                        self.spec.total_nodes()
                    ));
                }
            }
            Pattern::ClusterLocal { locality } => unit(locality, "locality")?,
            Pattern::ClusterShift { shift } => {
                if shift == 0 || shift >= self.spec.num_clusters() {
                    return Err(format!(
                        "pattern: shift must lie in 1..{} (got {shift})",
                        self.spec.num_clusters()
                    ));
                }
            }
        }
        if self.sim.measured == 0 {
            return Err("sim: need at least one measured message".into());
        }
        if self.sim.max_events == 0 {
            return Err("sim: max_events of 0 can never terminate a run".into());
        }
        if self.sim.adaptive_routing {
            // Engine-level adaptive routing draws per-hop digits against the
            // fat-tree's free-ascent structure; a scenario pairing it with a
            // non-tree backend would otherwise panic deep inside the engine.
            self.spec
                .adaptive_routing_supported()
                .map_err(|e| format!("sim: {e}"))?;
        }
        validate_faults(&self.spec, &self.sim.faults).map_err(|e| format!("faults: {e}"))?;
        Ok(())
    }

    /// The analytical series: one per workload, produced by
    /// [`cocnet_model::sweep()`] over the scenario grid. Rates past the
    /// stability boundary yield no point, as in the paper's figures.
    pub fn run_model(&self) -> Vec<Series> {
        let rates = self.rates.values();
        self.workloads
            .iter()
            .map(|entry| {
                sweep(
                    &self.spec,
                    &entry.workload,
                    &rates,
                    &self.opts,
                    format!("Analysis ({})", entry.label),
                )
            })
            .collect()
    }

    /// The simulation series: one per workload, each point the mean over
    /// the point's replications. Points whose replications fail to
    /// complete (saturation) are omitted, mirroring how the paper's
    /// simulation points stop at saturation. All (workload × rate ×
    /// replication) runs execute concurrently on the rayon pool.
    pub fn run_sim(&self) -> Vec<Series> {
        self.sim_series(&self.run_sim_detailed())
    }

    /// Serial reference for [`Scenario::run_sim`]: the identical job list evaluated
    /// with a plain loop. Exists for determinism tests and for measuring
    /// the parallel speedup; results are bit-identical to [`Scenario::run_sim`].
    pub fn run_sim_serial(&self) -> Vec<Series> {
        self.sim_series(&self.run_sim_detailed_serial())
    }

    /// Full per-point results (per workload, in grid order), run in
    /// parallel. Use this instead of [`Scenario::run_sim`] when a binary needs more
    /// than the latency mean.
    pub fn run_sim_detailed(&self) -> Vec<Vec<PointSim>> {
        let rates = self.rates.values();
        let jobs = self.jobs(&rates);
        let builts = self.build_all();
        let results: Vec<SimResults> = jobs
            .par_iter()
            .map(|job| self.run_job(&builts, job))
            .collect();
        self.assemble(&rates, &jobs, results)
    }

    /// Serial reference for [`Scenario::run_sim_detailed`]; bit-identical results.
    pub fn run_sim_detailed_serial(&self) -> Vec<Vec<PointSim>> {
        let rates = self.rates.values();
        let jobs = self.jobs(&rates);
        let builts = self.build_all();
        let results: Vec<SimResults> = jobs.iter().map(|job| self.run_job(&builts, job)).collect();
        self.assemble(&rates, &jobs, results)
    }

    /// The flattened job list, in (workload, point, replication) order.
    fn jobs(&self, rates: &[f64]) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.workloads.len() * rates.len() * self.replications);
        for w in 0..self.workloads.len() {
            for (p, &rate) in rates.iter().enumerate() {
                let base = self.point_seed(w, p);
                for r in 0..self.replications {
                    jobs.push(Job {
                        workload: w,
                        point: p,
                        replication: r,
                        rate,
                        seed: base.wrapping_add(r as u64),
                    });
                }
            }
        }
        jobs
    }

    /// One built system per workload (flit size differs per workload);
    /// building once and sharing it across the pool avoids redundant
    /// route-table construction per sweep point.
    fn build_all(&self) -> Vec<BuiltSystem> {
        self.workloads
            .iter()
            .map(|entry| {
                BuiltSystem::try_build_full(
                    &self.spec,
                    entry.workload.flit_bytes,
                    cocnet_topology::AscentPolicy::default(),
                    &self.sim.faults,
                    self.sim.interning,
                )
                .unwrap_or_else(|e| {
                    panic!("scenario fault schedule invalid (validate() catches this): {e}")
                })
            })
            .collect()
    }

    /// Executes one job. Pure: output depends only on (scenario, job).
    fn run_job(&self, builts: &[BuiltSystem], job: &Job) -> SimResults {
        let wl = &self.workloads[job.workload].workload;
        let cfg = SimConfig {
            seed: job.seed,
            ..self.sim.clone()
        };
        run_simulation_built(
            &builts[job.workload],
            &wl.with_rate(job.rate),
            self.pattern,
            &cfg,
        )
    }

    /// Groups flat job results back into per-workload, per-point buckets.
    fn assemble(
        &self,
        rates: &[f64],
        jobs: &[Job],
        results: Vec<SimResults>,
    ) -> Vec<Vec<PointSim>> {
        let mut out: Vec<Vec<PointSim>> = (0..self.workloads.len())
            .map(|w| {
                (0..rates.len())
                    .map(|p| PointSim {
                        rate: rates[p],
                        seed: self.point_seed(w, p),
                        runs: Vec::with_capacity(self.replications),
                    })
                    .collect()
            })
            .collect();
        for (job, result) in jobs.iter().zip(results) {
            debug_assert_eq!(out[job.workload][job.point].runs.len(), job.replication);
            out[job.workload][job.point].runs.push(result);
        }
        out
    }

    /// Adaptive (precision-driven) simulation: per sweep point, runs
    /// replications in deterministic waves on the rayon pool until the
    /// latency CI over the replication means meets the scenario's
    /// [`PrecisionSpec`] or its `max_replications` cap trips, and records
    /// how many replications each point actually spent.
    ///
    /// # Determinism
    ///
    /// Replication `r` of a point runs at seed `point_seed + r` — exactly
    /// the fixed-mode seed schedule — and a wave's results are absorbed in
    /// job order before any stopping decision is made, so the converged
    /// result is a pure function of the scenario: independent of core
    /// count and bit-identical to [`Scenario::run_sim_adaptive_serial`].
    ///
    /// # Panics
    ///
    /// Panics when the scenario has no `precision` (callers decide the
    /// mode; [`crate::registry::run_scenario`] dispatches on the field).
    pub fn run_sim_adaptive(&self) -> Vec<Vec<AdaptivePoint>> {
        self.run_adaptive_impl(false)
    }

    /// Serial reference for [`Scenario::run_sim_adaptive`]: the identical
    /// wave schedule evaluated with a plain loop; bit-identical results.
    pub fn run_sim_adaptive_serial(&self) -> Vec<Vec<AdaptivePoint>> {
        self.run_adaptive_impl(true)
    }

    fn run_adaptive_impl(&self, serial: bool) -> Vec<Vec<AdaptivePoint>> {
        let spec = self
            .precision
            .expect("adaptive run needs Scenario.precision");
        let target = spec.target();
        let rates = self.rates.values();
        let builts = self.build_all();

        /// Per-point wave state.
        struct St {
            acc: ReplicationAccumulator,
            converged: bool,
            saturated: bool,
            stop: bool,
        }
        let mut state: Vec<St> = (0..self.workloads.len() * rates.len())
            .map(|_| St {
                acc: ReplicationAccumulator::new(),
                converged: false,
                saturated: false,
                stop: false,
            })
            .collect();
        let flat = |w: usize, p: usize| w * rates.len() + p;

        loop {
            // Schedule the wave: every still-running point contributes its
            // next replication indices (the first wave seeds each point
            // with `min_replications`, later waves add `wave` more, capped
            // at `max_replications`).
            let mut jobs = Vec::new();
            for w in 0..self.workloads.len() {
                for (p, &rate) in rates.iter().enumerate() {
                    let st = &state[flat(w, p)];
                    if st.stop {
                        continue;
                    }
                    let have = st.acc.attempted();
                    let want = if have == 0 {
                        spec.min_replications
                    } else {
                        spec.wave
                    }
                    .min(spec.max_replications - have);
                    let base = self.point_seed(w, p);
                    for r in have..have + want {
                        jobs.push(Job {
                            workload: w,
                            point: p,
                            replication: r,
                            rate,
                            seed: base.wrapping_add(r as u64),
                        });
                    }
                }
            }
            if jobs.is_empty() {
                break;
            }
            let results: Vec<SimResults> = if serial {
                jobs.iter().map(|job| self.run_job(&builts, job)).collect()
            } else {
                jobs.par_iter()
                    .map(|job| self.run_job(&builts, job))
                    .collect()
            };
            // Absorb the whole wave in job order, then decide stopping —
            // never mid-wave, so the schedule is independent of completion
            // order.
            for (job, result) in jobs.iter().zip(&results) {
                let st = &mut state[flat(job.workload, job.point)];
                if !result.completed {
                    st.saturated = true;
                }
                st.acc.absorb(result);
            }
            for st in &mut state {
                if st.stop {
                    continue;
                }
                if st.saturated {
                    // Replicating a saturated configuration cannot
                    // converge; stop spending cores on it.
                    st.stop = true;
                } else if st.acc.attempted() >= spec.min_replications && st.acc.meets(&target) {
                    st.converged = true;
                    st.stop = true;
                } else if st.acc.attempted() >= spec.max_replications {
                    st.stop = true;
                }
            }
        }

        (0..self.workloads.len())
            .map(|w| {
                rates
                    .iter()
                    .enumerate()
                    .map(|(p, &rate)| {
                        let st = &state[flat(w, p)];
                        AdaptivePoint {
                            rate,
                            seed: self.point_seed(w, p),
                            summary: st.acc.summary(),
                            ci: st.acc.ci(spec.level),
                            converged: st.converged,
                            saturated: st.saturated,
                            warmup_flagged: st.acc.warmup_flagged(),
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Builds the CI-bearing `Simulation (…)` series from adaptive
    /// results: one [`CiSeries`] per workload, saturated points omitted
    /// (mirroring how fixed-mode series stop at saturation).
    pub fn adaptive_series(&self, detailed: &[Vec<AdaptivePoint>]) -> Vec<CiSeries> {
        let level = self.precision.map(|p| p.level).unwrap_or(0.95);
        self.workloads
            .iter()
            .zip(detailed)
            .map(|(entry, points)| {
                let mut series = CiSeries::new(format!("Simulation ({})", entry.label), level);
                for point in points {
                    if !point.saturated {
                        series.push(CiPoint {
                            x: point.rate,
                            y: point.summary.mean,
                            lo: point.ci.lo(),
                            hi: point.ci.hi(),
                            replications: point.summary.attempted,
                            converged: point.converged,
                        });
                    }
                }
                series
            })
            .collect()
    }

    /// Builds the `Simulation (…)` series from detailed results — public
    /// so harnesses that need both the per-point counters (fault
    /// accounting) and the latency series can run the sweep once.
    pub fn sim_series(&self, detailed: &[Vec<PointSim>]) -> Vec<Series> {
        self.workloads
            .iter()
            .zip(detailed)
            .map(|(entry, points)| {
                let mut series = Series::new(format!("Simulation ({})", entry.label));
                for point in points {
                    if point.completed() {
                        series.push(point.rate, point.summary().mean);
                    }
                }
                series
            })
            .collect()
    }
}

/// Order-preserving parallel map over arbitrary experiment jobs — for
/// binaries whose sweep axis is not a rate grid (locality, duty cycle,
/// buffer depth…). Results arrive in input order; panics propagate.
pub fn par_map<J: Sync, R: Send>(jobs: &[J], f: impl Fn(&J) -> R + Sync) -> Vec<R> {
    jobs.par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};

    fn small_spec() -> SystemSpec {
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
            topology: Default::default(),
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net1).unwrap()
    }

    fn quick_sim(seed: u64) -> SimConfig {
        SimConfig {
            warmup: 200,
            measured: 2_000,
            drain: 200,
            seed,
            ..SimConfig::default()
        }
    }

    fn scenario() -> Scenario {
        Scenario::new("test", small_spec())
            .with_workload("Lm=256", Workload::new(0.0, 16, 256.0).unwrap())
            .with_grid(6e-4, 4)
            .with_sim(quick_sim(11))
    }

    #[test]
    fn validate_rejects_adaptive_routing_on_non_tree_specs() {
        use cocnet_topology::{TopoSpec, TorusShape};

        let mut s = scenario();
        s.sim.adaptive_routing = true;
        s.validate().unwrap();
        s.spec.clusters[1].n = 0;
        s.spec.clusters[1].topology = TopoSpec::Torus(TorusShape::new(&[2, 2]).unwrap());
        let err = s.validate().unwrap_err();
        assert!(
            err.contains("torus") && err.contains("adaptive"),
            "unexpected error: {err}"
        );
        s.sim.adaptive_routing = false;
        s.validate().unwrap();
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        for seeding in [Seeding::Shared, Seeding::PerPoint] {
            let s = scenario().with_seeding(seeding).with_replications(2);
            let par = s.run_sim_detailed();
            let ser = s.run_sim_detailed_serial();
            assert_eq!(par.len(), ser.len());
            for (pw, sw) in par.iter().zip(&ser) {
                for (pp, sp) in pw.iter().zip(sw) {
                    assert_eq!(pp.seed, sp.seed);
                    assert_eq!(pp.runs.len(), sp.runs.len());
                    for (pr, sr) in pp.runs.iter().zip(&sp.runs) {
                        assert_eq!(pr.latency, sr.latency);
                        assert_eq!(pr.generated, sr.generated);
                        assert_eq!(pr.sim_time, sr.sim_time);
                    }
                }
            }
        }
    }

    #[test]
    fn shared_seeding_matches_plain_run_simulation() {
        let s = scenario();
        let series = s.run_sim();
        assert_eq!(series.len(), 1);
        for point in &series[0].points {
            let r = cocnet_sim::run_simulation(
                &s.spec,
                &s.workloads[0].workload.with_rate(point.x),
                Pattern::Uniform,
                &s.sim,
            );
            assert_eq!(r.latency.mean, point.y, "rate {}", point.x);
        }
    }

    #[test]
    fn per_point_seeds_are_distinct_and_stable() {
        let s = scenario()
            .with_seeding(Seeding::PerPoint)
            .with_grid(6e-4, 8);
        let mut seen = std::collections::HashSet::new();
        for p in 0..8 {
            let seed = s.point_seed(0, p);
            assert!(seen.insert(seed), "seed collision at point {p}");
            assert_eq!(seed, s.point_seed(0, p), "seed must be pure");
        }
    }

    #[test]
    fn replications_summarized_like_replicate() {
        let s = scenario().with_replications(3);
        let detailed = s.run_sim_detailed();
        let wl = s.workloads[0].workload.with_rate(s.rates.values()[0]);
        let cfg = SimConfig {
            seed: s.point_seed(0, 0),
            ..s.sim
        };
        let reference = cocnet_sim::replicate(&s.spec, &wl, Pattern::Uniform, &cfg, 3);
        let got = detailed[0][0].summary();
        assert_eq!(got.replication_means, reference.replication_means);
        assert_eq!(got.mean, reference.mean);
    }

    #[test]
    fn point_throughput_counters_aggregate_runs() {
        let s = scenario().with_replications(2);
        let detailed = s.run_sim_detailed();
        let point = &detailed[0][0];
        assert_eq!(
            point.events_total(),
            point.runs.iter().map(|r| r.events_processed).sum::<u64>()
        );
        assert!(point.events_total() > 0);
        assert_eq!(
            point.messages_total(),
            point.runs.iter().map(|r| r.generated).sum::<u64>()
        );
        let peak = point.peak_live_msgs();
        assert!(peak >= 1);
        assert!(point.runs.iter().all(|r| r.peak_live_msgs <= peak));
    }

    #[test]
    fn par_map_preserves_order() {
        let jobs: Vec<u64> = (0..40).collect();
        let out = par_map(&jobs, |&j| j * j);
        assert_eq!(out, jobs.iter().map(|j| j * j).collect::<Vec<_>>());
    }

    #[test]
    fn rate_grid_single_point_and_zero_start_edges() {
        // A 1-point zero-start range is the 1-point figure grid: just the
        // stop rate.
        let one = RateGrid::Range {
            start: 0.0,
            stop: 4e-4,
            steps: 1,
        };
        assert_eq!(one.len(), 1);
        assert!(!one.is_empty());
        assert_eq!(one.values(), vec![4e-4]);
        // A zero-start range must resolve through `rate_grid` bit-for-bit.
        let grid = RateGrid::Range {
            start: 0.0,
            stop: 1e-3,
            steps: 10,
        };
        assert_eq!(grid.values(), cocnet_model::rate_grid(1e-3, 10));
        // A nonzero start excludes the start itself and includes the stop.
        let shifted = RateGrid::Range {
            start: 2e-4,
            stop: 6e-4,
            steps: 4,
        };
        let vals = shifted.values();
        assert_eq!(vals.len(), 4);
        assert!(vals[0] > 2e-4);
        assert_eq!(*vals.last().unwrap(), 6e-4);
        // A 1-point explicit list survives with_steps unchanged; lists
        // never grow.
        let list = RateGrid::List(vec![3e-4]);
        assert_eq!(list.with_steps(1).values(), vec![3e-4]);
        assert_eq!(list.with_steps(5).values(), vec![3e-4]);
        // Ranges re-grid exactly.
        assert_eq!(grid.with_steps(1).values(), vec![1e-3]);
        assert_eq!(
            grid.with_steps(5).values(),
            cocnet_model::rate_grid(1e-3, 5)
        );
    }

    #[test]
    fn precision_spec_validation() {
        assert!(PrecisionSpec::default().validate().is_err(), "no bound set");
        let rel = PrecisionSpec {
            rel_ci: Some(0.05),
            ..PrecisionSpec::default()
        };
        assert!(rel.validate().is_ok());
        assert!(PrecisionSpec {
            min_replications: 1,
            ..rel
        }
        .validate()
        .is_err());
        assert!(PrecisionSpec {
            max_replications: 1,
            ..rel
        }
        .validate()
        .is_err());
        assert!(PrecisionSpec { wave: 0, ..rel }.validate().is_err());
        assert!(PrecisionSpec { level: 1.5, ..rel }.validate().is_err());
        // Scenario::validate threads the precision check through.
        let bad = scenario().with_precision(PrecisionSpec::default());
        assert!(bad.validate().is_err());
        let good = scenario().with_precision(rel);
        assert!(good.validate().is_ok());
    }

    fn adaptive_scenario(rel: f64, max: usize) -> Scenario {
        scenario().with_grid(6e-4, 2).with_precision(PrecisionSpec {
            rel_ci: Some(rel),
            min_replications: 2,
            max_replications: max,
            wave: 2,
            ..PrecisionSpec::default()
        })
    }

    #[test]
    fn adaptive_parallel_equals_serial_bitwise() {
        let s = adaptive_scenario(0.1, 12);
        let par = s.run_sim_adaptive();
        let ser = s.run_sim_adaptive_serial();
        assert_eq!(par.len(), ser.len());
        for (pw, sw) in par.iter().zip(&ser) {
            assert_eq!(pw.len(), sw.len());
            for (pp, sp) in pw.iter().zip(sw) {
                assert_eq!(pp.seed, sp.seed);
                assert_eq!(pp.replications(), sp.replications());
                assert_eq!(pp.converged, sp.converged);
                assert_eq!(pp.summary.replication_means, sp.summary.replication_means);
                assert_eq!(pp.summary.mean, sp.summary.mean);
                assert_eq!(pp.ci, sp.ci);
            }
        }
    }

    #[test]
    fn adaptive_converges_within_target_and_reports_spend() {
        let s = adaptive_scenario(0.2, 16);
        let detailed = s.run_sim_adaptive();
        for point in &detailed[0] {
            assert!(!point.saturated);
            assert!(point.converged, "rate {} did not converge", point.rate);
            assert!(point.replications() >= 2);
            assert!(point.replications() <= 16);
            assert!(point.ci.half_width / point.summary.mean <= 0.2);
        }
        // The CI series carries the spend through to the report layer.
        let series = s.adaptive_series(&detailed);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].level, 0.95);
        assert!(series[0].all_converged());
        for p in &series[0].points {
            assert!(p.lo <= p.y && p.y <= p.hi);
            assert!(p.replications >= 2);
        }
    }

    #[test]
    fn adaptive_cap_trips_on_unreachable_target() {
        // A 0.01% relative target cannot be met in 4 replications: every
        // point must stop at the cap, unconverged.
        let s = adaptive_scenario(1e-4, 4);
        let detailed = s.run_sim_adaptive();
        for point in &detailed[0] {
            assert!(!point.converged);
            assert_eq!(point.replications(), 4);
        }
    }

    #[test]
    fn adaptive_seed_schedule_matches_fixed_mode() {
        // The first k adaptive replications of a point reuse exactly the
        // fixed-mode seeds, so adaptive results are comparable with (and
        // reproducible as) fixed runs.
        let s = adaptive_scenario(0.2, 8);
        let detailed = s.run_sim_adaptive();
        let spent = detailed[0][0].replications();
        let fixed = s.clone().with_replications(spent);
        let fixed_detailed = fixed.run_sim_detailed();
        assert_eq!(
            detailed[0][0].summary.replication_means,
            fixed_detailed[0][0].summary().replication_means
        );
    }
}
