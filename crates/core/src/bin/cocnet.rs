//! `cocnet` — command-line front end for the model, the simulator and the
//! scenario registry.
//!
//! ```text
//! cocnet model    [spec flags] --rate 2e-4            analytic evaluation
//! cocnet sim      [spec flags] --rate 2e-4 [--seed N] discrete-event run
//! cocnet saturate [spec flags]                        stability boundary
//! cocnet sweep    [spec flags] --max-rate 1e-3        latency-vs-load table+plot
//! cocnet figure   --fig fig3|fig4|fig5|fig6           a paper figure (analysis side)
//!
//! cocnet list                                         every registry entry
//! cocnet describe <name> [--json]                     one entry (+ scenario JSON)
//! cocnet validate <path>                              check scenario file(s)
//! cocnet run <name|path> [--quick] [--points N] [--replications N]
//!                        [--rel-ci X] [--max-replications N]
//!                        [--scheduler heap|calendar] [--shards off|auto|K]
//!                        [--serial] [--json] [--no-sim] [--out json|csv]
//!                                                     run a registry entry or a
//!                                                     scenario JSON file
//!                                                     (--rel-ci X replicates each
//!                                                     point adaptively until the
//!                                                     latency CI is within X;
//!                                                     --scheduler picks the
//!                                                     future-event-list backend,
//!                                                     --shards runs the cluster-
//!                                                     sharded parallel engine —
//!                                                     results are bit-identical,
//!                                                     only speed changes)
//!
//! spec flags:
//!   --org 1120|544          a Table 1 organization (default: 544), or
//!   --m M --heights 2,2,3,3 a custom system (ICN1/ICN2 = Net.1, ECN1 = Net.2)
//! workload flags:
//!   --rate λ  --flits M  --flit-bytes D   (defaults 1e-4, 32, 256)
//! sim flags:
//!   --seed S  --measured N  --locality ψ
//! ```

use cocnet::experiments::{figure_config, run_figure_model, Figure};
use cocnet::model::{
    evaluate_with_profile, saturation_point, sweep, ModelOptions, OutgoingProfile, Workload,
};
use cocnet::presets;
use cocnet::registry::{self, RunOpts};
use cocnet::report::render_figure;
use cocnet::runner::Scenario;
use cocnet::sim::{run_simulation, SimConfig};
use cocnet::stats::{scatter, Series, Table};
use cocnet::topology::{ClusterSpec, SystemSpec};
use cocnet_workloads::Pattern;
use std::collections::HashMap;
use std::path::Path;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: cocnet <model|sim|saturate|sweep|figure> [--org 1120|544] \
         [--m M --heights a,b,c] [--rate λ] [--flits M] [--flit-bytes D] \
         [--seed S] [--measured N] [--locality ψ] [--max-rate λ] [--points P]\n\
         \x20      cocnet list\n\
         \x20      cocnet describe <name> [--json]\n\
         \x20      cocnet validate <path>\n\
         \x20      cocnet run <name|path> [--quick] [--points N] [--replications N] \
         [--rel-ci X] [--max-replications N] [--scheduler heap|calendar] \
         [--shards off|auto|K] [--serial] [--json] [--no-sim] [--out json|csv]"
    );
    exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().cloned().unwrap_or_else(|| {
                eprintln!("flag --{name} needs a value");
                usage()
            });
            flags.insert(name.to_string(), value);
        } else {
            eprintln!("unexpected argument {a:?}");
            usage();
        }
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("could not parse --{key} value {v:?}");
            usage()
        }),
    }
}

fn build_spec(flags: &HashMap<String, String>) -> SystemSpec {
    if let Some(org) = flags.get("org") {
        return match org.as_str() {
            "1120" => presets::org_1120(),
            "544" => presets::org_544(),
            other => {
                eprintln!("unknown --org {other:?}; use 1120 or 544");
                usage();
            }
        };
    }
    if let Some(heights) = flags.get("heights") {
        let m: u32 = get(flags, "m", 4);
        let clusters: Vec<ClusterSpec> = heights
            .split(',')
            .map(|h| {
                let n = h.trim().parse().unwrap_or_else(|_| {
                    eprintln!("bad height {h:?}");
                    usage()
                });
                ClusterSpec {
                    n,
                    icn1: presets::net1(),
                    ecn1: presets::net2(),
                    topology: Default::default(),
                }
            })
            .collect();
        return SystemSpec::new(m, clusters, presets::net1()).unwrap_or_else(|e| {
            eprintln!("invalid system: {e}");
            exit(2);
        });
    }
    presets::org_544()
}

fn build_workload(flags: &HashMap<String, String>) -> Workload {
    Workload::new(
        get(flags, "rate", 1e-4),
        get(flags, "flits", 32),
        get(flags, "flit-bytes", 256.0),
    )
    .unwrap_or_else(|e| {
        eprintln!("invalid workload: {e}");
        exit(2);
    })
}

fn profile(flags: &HashMap<String, String>, spec: &SystemSpec) -> OutgoingProfile {
    match flags.get("locality") {
        None => OutgoingProfile::uniform(spec),
        Some(v) => {
            let psi: f64 = v.parse().unwrap_or_else(|_| usage());
            OutgoingProfile::cluster_local(spec, psi).unwrap_or_else(|e| {
                eprintln!("{e}");
                exit(2);
            })
        }
    }
}

fn cmd_model(flags: &HashMap<String, String>) {
    let spec = build_spec(flags);
    let wl = build_workload(flags);
    let prof = profile(flags, &spec);
    match evaluate_with_profile(&spec, &wl, &ModelOptions::default(), &prof) {
        Ok(out) => {
            println!(
                "system: C={} N={} m={}   workload: λ={:.3e} M={} d_m={}",
                spec.num_clusters(),
                spec.total_nodes(),
                spec.m,
                wl.lambda_g,
                wl.msg_flits,
                wl.flit_bytes
            );
            println!("mean message latency: {:.4}", out.latency);
            let mut table = Table::new(["cluster", "N_i", "U_i", "L_in", "L_out", "mean"]);
            for c in &out.per_cluster {
                table.push_row([
                    c.cluster.to_string(),
                    spec.cluster_nodes(c.cluster).to_string(),
                    format!("{:.4}", c.outgoing_probability),
                    format!("{:.2}", c.intra.total()),
                    format!("{:.2}", c.inter.total()),
                    format!("{:.2}", c.mean),
                ]);
            }
            println!("{}", table.render());
        }
        Err(e) => {
            eprintln!("model: {e}");
            exit(1);
        }
    }
}

fn cmd_sim(flags: &HashMap<String, String>) {
    let spec = build_spec(flags);
    let wl = build_workload(flags);
    let pattern = match flags.get("locality") {
        None => Pattern::Uniform,
        Some(v) => Pattern::ClusterLocal {
            locality: v.parse().unwrap_or_else(|_| usage()),
        },
    };
    let cfg = SimConfig {
        warmup: get(flags, "measured", 20_000u64) / 10,
        measured: get(flags, "measured", 20_000u64),
        drain: get(flags, "measured", 20_000u64) / 10,
        seed: get(flags, "seed", 1u64),
        ..SimConfig::default()
    };
    let r = run_simulation(&spec, &wl, pattern, &cfg);
    println!(
        "completed={}  generated={}  sim_time={:.1}",
        r.completed, r.generated, r.sim_time
    );
    println!("latency: {}", r.latency);
    println!("intra:   {}", r.intra);
    println!("inter:   {}", r.inter);
    if !r.completed {
        exit(1);
    }
}

fn cmd_saturate(flags: &HashMap<String, String>) {
    let spec = build_spec(flags);
    let wl = build_workload(flags);
    match saturation_point(&spec, &wl, &ModelOptions::default(), 1e-5) {
        Ok(sat) => println!("saturation rate: {sat:.6e} messages/node/time-unit"),
        Err(e) => {
            eprintln!("saturate: {e}");
            exit(1);
        }
    }
}

fn cmd_sweep(flags: &HashMap<String, String>) {
    let spec = build_spec(flags);
    let wl = build_workload(flags);
    let max: f64 = get(flags, "max-rate", 1e-3);
    let points: usize = get(flags, "points", 12);
    let rates: Vec<f64> = (1..=points)
        .map(|i| max * i as f64 / points as f64)
        .collect();
    let series: Series = sweep(&spec, &wl, &rates, &ModelOptions::default(), "Analysis");
    let mut table = Table::new(["rate", "latency"]);
    for p in &series.points {
        table.push_row([format!("{:.3e}", p.x), format!("{:.2}", p.y)]);
    }
    println!("{}", table.render());
    println!("{}", scatter(std::slice::from_ref(&series), 60, 16));
}

fn cmd_figure(flags: &HashMap<String, String>) {
    let fig = match flags.get("fig").map(String::as_str) {
        Some("fig3") => Figure::Fig3,
        Some("fig4") => Figure::Fig4,
        Some("fig5") => Figure::Fig5,
        Some("fig6") => Figure::Fig6,
        other => {
            eprintln!("--fig must be one of fig3|fig4|fig5|fig6 (got {other:?})");
            exit(2);
        }
    };
    let points: usize = get(flags, "points", 10);
    let cfg = figure_config(fig);
    let series = run_figure_model(&cfg, &ModelOptions::default(), points);
    println!("{}", render_figure(&cfg.title, &series));
    println!("{}", scatter(&series, 60, 16));
}

/// `cocnet list`: every registry entry, grouped the way the paper groups
/// its artefacts.
fn cmd_list() {
    let mut table = Table::new(["name", "group", "paper", "kind", "summary"]);
    for entry in registry::all() {
        table.push_row([
            entry.name.to_string(),
            entry.group.to_string(),
            entry.paper_ref.to_string(),
            match entry.kind {
                registry::Kind::Declarative(_) => "scenario".to_string(),
                registry::Kind::Custom(_) => "custom".to_string(),
            },
            entry.summary.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "run one with `cocnet run <name>`; scenario-kind entries also live as\n\
         JSON twins under scenarios/ and run via `cocnet run scenarios/<name>.json`."
    );
}

/// `cocnet describe <name> [--json]`: one entry's metadata; for
/// declarative entries also (or, with `--json`, only) the scenario JSON —
/// the exact content of its committed `scenarios/` twin.
fn cmd_describe(name: &str, json_only: bool) {
    let Some(entry) = registry::find(name) else {
        eprintln!("unknown registry entry {name:?}; `cocnet list` shows all");
        exit(2);
    };
    let scenario = entry.scenario();
    if json_only {
        match &scenario {
            Some(s) => {
                println!("{}", serde_json::to_string_pretty(s).expect("serialisable"));
                return;
            }
            None => {
                eprintln!("{name} is a custom entry: it has no scenario JSON form");
                exit(1);
            }
        }
    }
    println!("name:     {}", entry.name);
    println!("group:    {}", entry.group);
    println!("paper:    {}", entry.paper_ref);
    println!("summary:  {}", entry.summary);
    match &scenario {
        Some(s) => {
            println!(
                "kind:     declarative scenario (twin: scenarios/{}.json)",
                entry.name
            );
            match cocnet::model::coverage(&s.spec) {
                cocnet::model::ModelCoverage::Full => {
                    println!("coverage: analytical model + simulation");
                }
                cocnet::model::ModelCoverage::SimOnly { reason } => {
                    println!("coverage: simulation only ({reason})");
                }
            }
            println!("{}", serde_json::to_string_pretty(s).expect("serialisable"));
        }
        None => println!("kind:     custom experiment code"),
    }
}

/// Loads and validates one scenario file.
fn load_scenario(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let scenario: Scenario =
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    scenario
        .validate()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(scenario)
}

/// `cocnet validate <path>`: parse + validate one scenario file, or every
/// `*.json` under a directory. Exit 1 if any file fails.
fn cmd_validate(path: &str) {
    let path = Path::new(path);
    let files: Vec<std::path::PathBuf> = if path.is_dir() {
        let mut files: Vec<_> = std::fs::read_dir(path)
            .unwrap_or_else(|e| {
                eprintln!("{}: {e}", path.display());
                exit(2);
            })
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        files.sort();
        files
    } else {
        vec![path.to_path_buf()]
    };
    if files.is_empty() {
        eprintln!("{}: no scenario files found", path.display());
        exit(2);
    }
    let mut failures = 0usize;
    for file in &files {
        match load_scenario(file) {
            Ok(scenario) => println!(
                "ok    {} ({:?}: {} workloads x {} rates x {} reps)",
                file.display(),
                scenario.name,
                scenario.workloads.len(),
                scenario.rates.len(),
                scenario.replications,
            ),
            Err(e) => {
                println!("FAIL  {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} of {} scenario file(s) invalid", files.len());
        exit(1);
    }
}

/// `cocnet run <name|path> [flags]`: a registry entry by name, or any
/// scenario JSON file through the same declarative execution path.
fn cmd_run(target: &str, opt_args: &[String]) {
    let opts = RunOpts::parse(opt_args).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2);
    });
    let result = if let Some(entry) = registry::find(target) {
        registry::run(entry, &opts)
    } else if Path::new(target).exists() {
        load_scenario(Path::new(target)).and_then(|s| registry::run_scenario(&s, &opts))
    } else {
        eprintln!(
            "{target:?} is neither a registry entry nor a scenario file; \
             `cocnet list` shows the entries"
        );
        exit(2);
    };
    if let Err(e) = result {
        eprintln!("{e}");
        exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage()
    };
    // Registry subcommands take a positional argument; the classic
    // model/sim commands are pure-flag.
    match cmd.as_str() {
        "list" => {
            if !rest.is_empty() {
                usage();
            }
            return cmd_list();
        }
        "describe" => {
            let Some((name, flags)) = rest.split_first() else {
                usage()
            };
            let json_only = match flags {
                [] => false,
                [flag] if flag == "--json" => true,
                _ => usage(),
            };
            return cmd_describe(name, json_only);
        }
        "validate" => {
            let [path] = rest else { usage() };
            return cmd_validate(path);
        }
        "run" => {
            let Some((target, opt_args)) = rest.split_first() else {
                usage()
            };
            return cmd_run(target, opt_args);
        }
        _ => {}
    }
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "model" => cmd_model(&flags),
        "sim" => cmd_sim(&flags),
        "saturate" => cmd_saturate(&flags),
        "sweep" => cmd_sweep(&flags),
        "figure" => cmd_figure(&flags),
        _ => usage(),
    }
}
