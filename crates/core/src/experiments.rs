//! The experiment harness: everything needed to regenerate the paper's
//! figures and tables.
//!
//! Figures 3–6 plot mean message latency against the traffic generation
//! rate for the two Table 1 organizations under two message lengths, each
//! with an `Analysis` and a `Simulation` series per flit size. Figure 7 is
//! an analysis-only design-space study that raises the ICN2 bandwidth by
//! 20 %. [`figure_config`] returns the exact parameters; [`run_figure_model`]
//! and [`run_figure_sim`] produce the series.

use crate::runner::Scenario;
use cocnet_model::{rate_grid, sweep, ModelOptions, Workload};
use cocnet_stats::Series;
use cocnet_topology::SystemSpec;
use cocnet_workloads::presets;

/// The paper's latency-vs-load figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Figure {
    /// Fig. 3: N=1120, M=32 flits, flit sizes 256/512 B, λ up to 5·10⁻⁴.
    Fig3,
    /// Fig. 4: N=1120, M=64, λ up to 2.5·10⁻⁴.
    Fig4,
    /// Fig. 5: N=544, M=32, λ up to 1·10⁻³.
    Fig5,
    /// Fig. 6: N=544, M=64, λ up to 5·10⁻⁴.
    Fig6,
}

/// Everything needed to regenerate one figure.
#[derive(Debug, Clone)]
pub struct FigureConfig {
    /// Paper-style title, e.g. `"N=1120, m=8, M=32"`.
    pub title: String,
    /// The system organization.
    pub spec: SystemSpec,
    /// `(legend suffix, workload)` pairs — the figures plot two flit sizes.
    pub workloads: Vec<(String, Workload)>,
    /// Largest traffic generation rate on the x axis.
    pub max_rate: f64,
}

/// Returns the exact configuration of a paper figure.
pub fn figure_config(fig: Figure) -> FigureConfig {
    let (spec, m_label, wls, max_rate) = match fig {
        Figure::Fig3 => (
            presets::org_1120(),
            "N=1120, m=8, M=32",
            vec![presets::wl_m32_l256(), presets::wl_m32_l512()],
            presets::rates::FIG3_MAX,
        ),
        Figure::Fig4 => (
            presets::org_1120(),
            "N=1120, m=8, M=64",
            vec![presets::wl_m64_l256(), presets::wl_m64_l512()],
            presets::rates::FIG4_MAX,
        ),
        Figure::Fig5 => (
            presets::org_544(),
            "N=544, m=4, M=32",
            vec![presets::wl_m32_l256(), presets::wl_m32_l512()],
            presets::rates::FIG5_MAX,
        ),
        Figure::Fig6 => (
            presets::org_544(),
            "N=544, m=4, M=64",
            vec![presets::wl_m64_l256(), presets::wl_m64_l512()],
            presets::rates::FIG6_MAX,
        ),
    };
    FigureConfig {
        title: m_label.to_string(),
        spec,
        workloads: wls
            .into_iter()
            .map(|w| (format!("Lm={}", w.flit_bytes as u64), w))
            .collect(),
        max_rate,
    }
}

/// The [`Scenario`] equivalent of a [`FigureConfig`]: the figure's spec
/// and workloads over an evenly spaced `points`-rate grid, ready for the
/// unified runner. The historical shared-seed policy is kept so published
/// series stay reproducible.
pub fn figure_scenario(cfg: &FigureConfig, sim: &cocnet_sim::SimConfig, points: usize) -> Scenario {
    let mut scenario = Scenario::new(cfg.title.clone(), cfg.spec.clone())
        .with_grid(cfg.max_rate, points)
        .with_sim(sim.clone());
    for (suffix, wl) in &cfg.workloads {
        scenario = scenario.with_workload(suffix.clone(), *wl);
    }
    scenario
}

/// Produces the figure's `Analysis (…)` series from the analytical model.
pub fn run_figure_model(cfg: &FigureConfig, opts: &ModelOptions, points: usize) -> Vec<Series> {
    figure_scenario(cfg, &cocnet_sim::SimConfig::default(), points)
        .with_opts(*opts)
        .run_model()
}

/// Produces the figure's `Simulation (…)` series via the unified
/// [`Scenario`] runner: every rate point of every workload runs
/// concurrently on the rayon pool. Points whose run fails to complete
/// (saturation) are omitted, mirroring how the paper's simulation points
/// stop at saturation.
pub fn run_figure_sim(
    cfg: &FigureConfig,
    sim: &cocnet_sim::SimConfig,
    points: usize,
) -> Vec<Series> {
    figure_scenario(cfg, sim, points).run_sim()
}

/// Fig. 7: the ICN2 bandwidth design-space study. Returns four analysis
/// series: base and +20 % ICN2 bandwidth for both Table 1 organizations,
/// with the paper's `M=128`, `d_m=256` workload.
pub fn run_fig7(opts: &ModelOptions, points: usize) -> Vec<Series> {
    let wl = presets::wl_m128_l256();
    let rates = rate_grid(presets::rates::FIG7_MAX, points);
    let mut out = Vec::with_capacity(4);
    for (label, spec) in [
        ("N=544, Base", presets::org_544()),
        (
            "N=544, Increased",
            presets::with_boosted_icn2(&presets::org_544(), 1.2),
        ),
        ("N=1120, Base", presets::org_1120()),
        (
            "N=1120, Increased",
            presets::with_boosted_icn2(&presets::org_1120(), 1.2),
        ),
    ] {
        out.push(sweep(&spec, &wl, &rates, opts, label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_configs_match_paper() {
        let f3 = figure_config(Figure::Fig3);
        assert_eq!(f3.spec.total_nodes(), 1120);
        assert_eq!(f3.workloads.len(), 2);
        assert_eq!(f3.workloads[0].1.msg_flits, 32);
        assert_eq!(f3.workloads[0].0, "Lm=256");
        assert_eq!(f3.workloads[1].0, "Lm=512");
        assert_eq!(f3.max_rate, 5e-4);

        let f6 = figure_config(Figure::Fig6);
        assert_eq!(f6.spec.total_nodes(), 544);
        assert_eq!(f6.workloads[0].1.msg_flits, 64);
        assert_eq!(f6.max_rate, 5e-4);
    }

    #[test]
    fn model_series_have_points_and_monotonicity() {
        let cfg = figure_config(Figure::Fig5);
        let series = run_figure_model(&cfg, &ModelOptions::default(), 10);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert!(!s.is_empty());
            assert!(s.is_monotone_non_decreasing(), "{}", s.label);
        }
        // The 512-byte-flit series must sit above the 256-byte one.
        let l256 = &series[0];
        let l512 = &series[1];
        let x = l512.points[0].x;
        assert!(l512.points[0].y > l256.interpolate(x).unwrap());
    }

    #[test]
    fn fig7_boost_reduces_latency() {
        let series = run_fig7(&ModelOptions::default(), 8);
        assert_eq!(series.len(), 4);
        // At every shared x, "Increased" must not exceed "Base".
        for pair in [(0usize, 1usize), (2, 3)] {
            let base = &series[pair.0];
            let boosted = &series[pair.1];
            for p in &boosted.points {
                if let Some(base_y) = base.interpolate(p.x) {
                    assert!(p.y <= base_y + 1e-9, "boost must help at x={}", p.x);
                }
            }
            // And strictly helps at the highest common rate.
            let last = boosted.points.last().unwrap();
            if let Some(base_y) = base.interpolate(last.x) {
                assert!(last.y < base_y);
            }
        }
    }
}
