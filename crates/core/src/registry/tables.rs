//! Tables 1–2 of the paper as registry entries: the validated system
//! organizations and network characteristics, with the derived quantities
//! spelled out and checked.

use super::RunOpts;
use cocnet_stats::Table;
use cocnet_workloads::presets;

/// Table 1: the two system organizations used for model validation, with
/// the node algebra spelled out and checked.
pub fn table1(_opts: &RunOpts) {
    let mut table = Table::new(["N", "C", "m", "node organizations"]);
    for spec in [presets::org_1120(), presets::org_544()] {
        // Group consecutive clusters by height.
        let mut groups: Vec<(u32, usize, usize)> = Vec::new(); // (n, from, to)
        for (i, c) in spec.clusters.iter().enumerate() {
            match groups.last_mut() {
                Some((n, _, to)) if *n == c.n && *to + 1 == i => *to = i,
                _ => groups.push((c.n, i, i)),
            }
        }
        let desc = groups
            .iter()
            .map(|(n, from, to)| format!("n_i={n} for i in [{from},{to}]"))
            .collect::<Vec<_>>()
            .join(";  ");
        table.push_row([
            spec.total_nodes().to_string(),
            spec.num_clusters().to_string(),
            spec.m.to_string(),
            desc,
        ]);
    }
    println!("Table 1. System Organizations for Model Validation");
    println!("{}", table.render());

    // The node algebra: N = Σ 2(m/2)^{n_i}.
    for spec in [presets::org_1120(), presets::org_544()] {
        let sum: usize = (0..spec.num_clusters())
            .map(|i| spec.cluster_nodes(i))
            .sum();
        assert_eq!(sum, spec.total_nodes());
        println!(
            "check: C={} clusters of m={} sum to N={} nodes; ICN2 is an m-port {}-tree",
            spec.num_clusters(),
            spec.m,
            sum,
            spec.icn2_height().unwrap()
        );
    }
}

/// Table 2: the network characteristics used for model validation, plus
/// the derived per-flit service times (Eqs. (11)–(12)) for both flit sizes
/// used in the figures.
pub fn table2(_opts: &RunOpts) {
    let mut table = Table::new(["Network", "Bandwidth", "Network Latency", "Switch Latency"]);
    for (name, net) in [("Net.1", presets::net1()), ("Net.2", presets::net2())] {
        table.push_row([
            name.to_string(),
            format!("{}", net.bandwidth),
            format!("{}", net.network_latency),
            format!("{}", net.switch_latency),
        ]);
    }
    println!("Table 2. Network Characteristics for Model Validation");
    println!("{}", table.render());
    println!("wiring: ICN1, ICN2 <- Net.1;  ECN1 <- Net.2\n");

    let mut derived = Table::new(["Network", "d_m", "t_cn (Eq.11)", "t_cs (Eq.12)"]);
    for (name, net) in [("Net.1", presets::net1()), ("Net.2", presets::net2())] {
        for d_m in [256.0, 512.0] {
            derived.push_row([
                name.to_string(),
                format!("{d_m}"),
                format!("{:.4}", net.t_cn(d_m)),
                format!("{:.4}", net.t_cs(d_m)),
            ]);
        }
    }
    println!("Derived per-flit service times:");
    println!("{}", derived.render());
}
