//! Ablations: switching individual model/simulator mechanisms off to
//! quantify what each contributes (and where the paper's approximations
//! bite).

use super::{scaled, RunOpts};
use crate::runner::{par_map, Scenario};
use cocnet_model::{evaluate, ModelOptions, VarianceApprox, Workload};
use cocnet_sim::{run_simulation, run_simulation_built, BuiltSystem, SimConfig};
use cocnet_stats::Table;
use cocnet_topology::AscentPolicy;
use cocnet_workloads::{presets, Pattern};

/// Ablation: the relaxing factor δ of Eqs. (27)–(28).
///
/// The paper discounts ICN2-stage waits by δ = β_ICN2/β_ECN1 because "when
/// the message flow comes into the ICN2 (with usually more bandwidth) the
/// waiting time will be decreased proportional to the capacity". This
/// ablation quantifies how much that term matters, and on which side of
/// the simulation the model lands with and without it.
pub fn ablation_relax(opts: &RunOpts) {
    let with = ModelOptions::default();
    let without = ModelOptions {
        relaxing_factor: false,
        ..ModelOptions::default()
    };
    let sim_cfg = scaled(
        &SimConfig {
            warmup: 2_000,
            measured: 20_000,
            drain: 2_000,
            seed: 17,
            ..SimConfig::default()
        },
        opts,
    );
    for (name, spec, wl, rates) in [
        (
            "N=1120, M=32, Lm=256",
            presets::org_1120(),
            presets::wl_m32_l256(),
            [1e-4, 2e-4, 3e-4, 4e-4],
        ),
        (
            "N=544, M=32, Lm=256",
            presets::org_544(),
            presets::wl_m32_l256(),
            [2e-4, 4e-4, 6e-4, 8e-4],
        ),
    ] {
        println!("## {name}");
        let mut table = Table::new([
            "rate",
            "with delta",
            "without delta",
            "delta effect%",
            "sim",
        ]);
        let scenario = Scenario::new(name, spec.clone())
            .with_workload("Lm=256", wl)
            .with_rates(rates.to_vec())
            .with_sim(sim_cfg.clone());
        let points = scenario.run_sim_detailed().remove(0);
        for point in points {
            let rate = point.rate;
            let w = Workload {
                lambda_g: rate,
                ..wl
            };
            let a = evaluate(&spec, &w, &with).map(|o| o.latency);
            let b = evaluate(&spec, &w, &without).map(|o| o.latency);
            let fmt = |r: &Result<f64, _>| {
                r.as_ref()
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|_| "saturated".into())
            };
            let effect = match (&a, &b) {
                (Ok(x), Ok(y)) => format!("{:+.2}", (y - x) / x * 100.0),
                _ => "-".into(),
            };
            table.push_row([
                format!("{rate:.2e}"),
                fmt(&a),
                fmt(&b),
                effect,
                format!("{:.2}", point.first().latency.mean),
            ]);
        }
        println!("{}", table.render());
    }
}

/// Ablation: the Up*/Down* ascent policy under skewed destination mass.
///
/// The analytical model assumes uniformly loaded channels (Eqs. (10),
/// (24)–(25)). That only holds if the deterministic routing spreads ascent
/// traffic across the parallel ancestors. This experiment quantifies what
/// happens when it doesn't: the `MirrorDescent` policy funnels all traffic
/// toward the four big clusters of the N=1120 organization through one ICN2
/// root, saturating it at a quarter of the predicted rate (DESIGN.md §4.2).
///
/// The rate points run concurrently via the runner's [`par_map`]; each
/// job evaluates all three routing configurations for its rate.
pub fn ablation_routing(opts: &RunOpts) {
    let spec = presets::org_1120();
    let cfg = scaled(
        &SimConfig {
            warmup: 2_000,
            measured: 20_000,
            drain: 2_000,
            seed: 9,
            ..SimConfig::default()
        },
        opts,
    );
    println!("## N=1120, M=32, Lm=256 — ascent-policy ablation");
    let mut table = Table::new([
        "rate",
        "trailing-digits",
        "max util",
        "mirror-descent",
        "max util",
        "adaptive (random)",
        "max util",
    ]);
    let rates = [1e-4, 1.5e-4, 2e-4, 3e-4];
    let rows = par_map(&rates, |&rate| {
        let wl = Workload {
            lambda_g: rate,
            ..presets::wl_m32_l256()
        };
        let mut cells = vec![format!("{rate:.2e}")];
        let push_run = |built: &BuiltSystem, cfg: &SimConfig, cells: &mut Vec<String>| {
            let r = run_simulation_built(built, &wl, Pattern::Uniform, cfg);
            let max_icn2 = r
                .channel_busy
                .iter()
                .enumerate()
                .filter(|(i, _)| built.network_of(*i as u32).0 == "ICN2")
                .map(|(_, &b)| b / r.sim_time)
                .fold(0.0f64, f64::max);
            cells.push(format!("{:.2}", r.latency.mean));
            cells.push(format!("{max_icn2:.3}"));
        };
        for policy in [AscentPolicy::TrailingDigits, AscentPolicy::MirrorDescent] {
            let built = BuiltSystem::build_with_policy(&spec, wl.flit_bytes, policy);
            push_run(&built, &cfg, &mut cells);
        }
        // Oblivious-adaptive: random ascent digits per message.
        let built = BuiltSystem::build(&spec, wl.flit_bytes);
        let adaptive_cfg = SimConfig {
            adaptive_routing: true,
            ..cfg.clone()
        };
        push_run(&built, &adaptive_cfg, &mut cells);
        cells
    });
    for row in rows {
        table.push_row(row);
    }
    println!("{}", table.render());
    println!(
        "mirror-descent funnels every message bound for the four n=3 clusters\n\
         (~45% of inter-cluster traffic) through one root switch; the balanced\n\
         trailing-digits policy is what the model's uniform channel rates assume."
    );
}

/// Ablation: the service-variance approximation of Eq. (17)/(36).
///
/// The paper singles out the variance approximation ("a factor of the model
/// inaccuracy") when explaining the discrepancy near saturation. This
/// ablation compares the Draper–Ghosh-style approximation against a
/// deterministic-service (σ² = 0) model across the load range.
pub fn ablation_variance(_opts: &RunOpts) {
    let dg = ModelOptions::default();
    let zero = ModelOptions {
        variance: VarianceApprox::Zero,
        ..ModelOptions::default()
    };
    for (name, spec, wl, max) in [
        (
            "N=1120, M=32, Lm=256",
            presets::org_1120(),
            presets::wl_m32_l256(),
            presets::rates::FIG3_MAX,
        ),
        (
            "N=544, M=64, Lm=256",
            presets::org_544(),
            presets::wl_m64_l256(),
            presets::rates::FIG6_MAX,
        ),
    ] {
        println!("## {name}");
        let mut table = Table::new(["rate", "DraperGhosh", "sigma2=0", "gap%"]);
        for i in 1..=8 {
            let rate = max * i as f64 / 8.0;
            let w = Workload {
                lambda_g: rate,
                ..wl
            };
            let a = evaluate(&spec, &w, &dg).map(|o| o.latency);
            let b = evaluate(&spec, &w, &zero).map(|o| o.latency);
            let fmt = |r: &Result<f64, _>| {
                r.as_ref()
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|_| "saturated".into())
            };
            let gap = match (&a, &b) {
                (Ok(x), Ok(y)) => format!("{:+.2}", (x - y) / y * 100.0),
                _ => "-".into(),
            };
            table.push_row([format!("{rate:.2e}"), fmt(&a), fmt(&b), gap]);
        }
        println!("{}", table.render());
    }
    println!(
        "note: the variance term only affects the M/G/1 waits (source queues and\n\
         concentrators); it grows with load, which is exactly where the paper\n\
         reports its model diverging from simulation."
    );
}

/// Ablation: the simulator's network-boundary coupling modes.
///
/// The paper's model is ambivalent about what happens at the
/// concentrator/dispatcher (see DESIGN.md): Eq. (20) merges the three
/// networks into one wormhole pipe, while Eqs. (36)–(37) assume
/// full-message buffering. This experiment runs the same workload under
/// all three couplings the simulator implements and prints them against
/// the model, making the trade-off measurable.
///
/// All (rate × coupling) simulations run concurrently via the runner's
/// [`par_map`].
pub fn coupling_modes(opts: &RunOpts) {
    use cocnet_sim::Coupling;
    let spec = presets::org_544();
    let wl = presets::wl_m32_l256();
    let model_opts = ModelOptions::default();
    let base = scaled(
        &SimConfig {
            warmup: 2_000,
            measured: 20_000,
            drain: 2_000,
            seed: 31,
            ..SimConfig::default()
        },
        opts,
    );
    let rates = [1e-4, 2e-4, 4e-4, 6e-4, 8e-4];
    let couplings = [
        Coupling::CutThrough,
        Coupling::VirtualCutThrough,
        Coupling::StoreAndForward,
    ];
    // One job per (rate, coupling); results come back in job order.
    let jobs: Vec<(f64, Coupling)> = rates
        .iter()
        .flat_map(|&rate| couplings.iter().map(move |&c| (rate, c)))
        .collect();
    let results = par_map(&jobs, |&(rate, coupling)| {
        let w = Workload {
            lambda_g: rate,
            ..wl
        };
        let cfg = SimConfig {
            coupling,
            ..base.clone()
        };
        let r = run_simulation(&spec, &w, Pattern::Uniform, &cfg);
        if r.completed {
            format!("{:.2}", r.latency.mean)
        } else {
            "incomplete".into()
        }
    });

    println!("## N=544, M=32, Lm=256 — coupling-mode comparison");
    let mut table = Table::new(["rate", "model", "cut-through", "virtual-ct", "store&fwd"]);
    for (i, &rate) in rates.iter().enumerate() {
        let w = Workload {
            lambda_g: rate,
            ..wl
        };
        let model = evaluate(&spec, &w, &model_opts)
            .map(|o| format!("{:.2}", o.latency))
            .unwrap_or_else(|_| "saturated".into());
        let row = &results[i * couplings.len()..(i + 1) * couplings.len()];
        table.push_row([
            format!("{rate:.2e}"),
            model,
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
        ]);
    }
    println!("{}", table.render());
}
