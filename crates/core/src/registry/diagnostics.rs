//! Single-run diagnostics and model decompositions: where the time goes,
//! which channels are hot, and how asymmetric the cluster pairs are.

use super::{scaled, RunOpts};
use cocnet_model::inter::pair_latency;
use cocnet_model::{evaluate, network_rates, ModelOptions, Workload};
use cocnet_sim::{run_simulation_built, BuiltSystem, SimConfig};
use cocnet_stats::Table;
use cocnet_workloads::{presets, Pattern};

/// Channel-utilisation diagnostic: runs one simulation and prints the
/// hottest channels, supporting the paper's §4 claim that the inter-cluster
/// networks (especially ICN2) are the system bottleneck. `--rate` sets the
/// traffic rate (default 1.5e-4).
pub fn hotspots(opts: &RunOpts) {
    let rate = opts.rate.unwrap_or(1.5e-4);
    let spec = presets::org_1120();
    let wl = Workload {
        lambda_g: rate,
        ..presets::wl_m32_l256()
    };
    let cfg = scaled(
        &SimConfig {
            warmup: 2_000,
            measured: 20_000,
            drain: 2_000,
            seed: 7,
            max_events: 2_000_000_000,
            ..SimConfig::default()
        },
        opts,
    );
    let built = BuiltSystem::build(&spec, wl.flit_bytes);
    let r = run_simulation_built(&built, &wl, Pattern::Uniform, &cfg);
    println!(
        "rate={rate:.2e}  mean latency={:.2}  completed={}  sim_time={:.1}",
        r.latency.mean, r.completed, r.sim_time
    );
    let mut hot: Vec<(usize, f64)> = r
        .channel_busy
        .iter()
        .enumerate()
        .map(|(i, &b)| (i, b / r.sim_time))
        .collect();
    hot.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 15 channel utilisations:");
    for &(c, u) in hot.iter().take(15) {
        println!("  util={u:.3}  {}", built.describe_channel(c as u32));
    }
    // Aggregate by network kind.
    let mut agg: std::collections::BTreeMap<String, (f64, usize)> = Default::default();
    for (i, &b) in r.channel_busy.iter().enumerate() {
        let (net, _) = built.network_of(i as u32);
        let e = agg.entry(net.to_string()).or_insert((0.0, 0));
        e.0 += b / r.sim_time;
        e.1 += 1;
    }
    println!("mean utilisation by network:");
    for (net, (sum, n)) in agg {
        println!("  {net}: {:.4}", sum / n as f64);
    }
}

/// Predicted vs measured channel utilisation, per network class.
///
/// Runs the analytical rate predictions (Eqs. (7), (10), (22)–(25) plus
/// `M·t_cs` holding) against the simulator's measured busy fractions on the
/// N=1120 organization. `--rate` sets the traffic rate (default 2e-4).
pub fn utilization(opts: &RunOpts) {
    let rate = opts.rate.unwrap_or(2e-4);
    let spec = presets::org_1120();
    let wl = Workload {
        lambda_g: rate,
        ..presets::wl_m32_l256()
    };
    let cfg = scaled(
        &SimConfig {
            warmup: 2_000,
            measured: 20_000,
            drain: 2_000,
            seed: 3,
            ..SimConfig::default()
        },
        opts,
    );
    let built = BuiltSystem::build(&spec, wl.flit_bytes);
    let sim = run_simulation_built(&built, &wl, Pattern::Uniform, &cfg);
    let predicted = network_rates(&spec, &wl);

    // Aggregate measured busy fractions per network class.
    let mut sums: std::collections::BTreeMap<(&str, u32), (f64, f64, usize)> = Default::default();
    for (i, &b) in sim.channel_busy.iter().enumerate() {
        let (net, cluster) = built.network_of(i as u32);
        let n_height = if net == "ICN2" {
            spec.icn2_height().unwrap()
        } else {
            spec.clusters[cluster].n
        };
        let u = b / sim.sim_time;
        let e = sums.entry((net, n_height)).or_insert((0.0, 0.0, 0));
        e.0 += u;
        e.1 = e.1.max(u);
        e.2 += 1;
    }

    println!("## N=1120, M=32, Lm=256, rate={rate:.2e} — channel utilisation by network class");
    let mut table = Table::new([
        "network class",
        "mean util (sim)",
        "max util (sim)",
        "predicted util (model)",
    ]);
    for ((net, h), (sum, max, count)) in &sums {
        // A representative predicted value for the class.
        let pred = match *net {
            "ICN1" => {
                let i = (0..spec.num_clusters())
                    .find(|&i| spec.clusters[i].n == *h)
                    .unwrap();
                predicted.util_icn1[i]
            }
            "ECN1" => {
                let i = (0..spec.num_clusters())
                    .find(|&i| spec.clusters[i].n == *h)
                    .unwrap();
                predicted.util_ecn1[i]
            }
            _ => predicted.util_icn2,
        };
        table.push_row([
            format!("{net} (n={h})"),
            format!("{:.4}", sum / *count as f64),
            format!("{max:.4}"),
            format!("{pred:.4}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "mean latency {:.2} (completed={}); the ICN2 class dominates, matching\n\
         the paper's bottleneck observation.",
        sim.latency.mean, sim.completed
    );
}

/// Latency decomposition: where does the time go as load grows?
///
/// The model's component structure (Eqs. (4) and (39)) makes the answer
/// exact: source-queue wait, network latency, tail drain, and
/// concentrator/dispatcher wait, separately for the intra- and
/// inter-cluster populations. This is the designer's view behind Fig. 7's
/// conclusion — the component that explodes first is the concentrator
/// wait, which is why boosting ICN2 bandwidth pays off.
pub fn breakdown(_opts: &RunOpts) {
    let opts = ModelOptions::default();
    for (name, spec, wl, rates) in [
        (
            "N=1120, M=32, Lm=256",
            presets::org_1120(),
            presets::wl_m32_l256(),
            [5e-5, 2e-4, 3.5e-4, 4.7e-4],
        ),
        (
            "N=544, M=64, Lm=256",
            presets::org_544(),
            presets::wl_m64_l256(),
            [5e-5, 2e-4, 3.5e-4, 4.7e-4],
        ),
    ] {
        println!("## {name} — population-weighted latency components");
        let mut table = Table::new([
            "rate",
            "intra W_in",
            "intra T+E",
            "inter W_ex",
            "inter T+E",
            "condis W_d",
            "total",
        ]);
        for rate in rates {
            let w = Workload {
                lambda_g: rate,
                ..wl
            };
            match evaluate(&spec, &w, &opts) {
                Ok(out) => {
                    let n = spec.total_nodes() as f64;
                    let mut acc = [0.0f64; 5];
                    for c in &out.per_cluster {
                        let share = spec.cluster_nodes(c.cluster) as f64 / n;
                        let u = c.outgoing_probability;
                        acc[0] += share * (1.0 - u) * c.intra.source_wait;
                        acc[1] += share * (1.0 - u) * (c.intra.network + c.intra.tail);
                        acc[2] += share * u * c.inter.source_wait;
                        acc[3] += share * u * (c.inter.network + c.inter.tail);
                        acc[4] += share * u * c.inter.condis_wait;
                    }
                    table.push_row([
                        format!("{rate:.2e}"),
                        format!("{:.2}", acc[0]),
                        format!("{:.2}", acc[1]),
                        format!("{:.2}", acc[2]),
                        format!("{:.2}", acc[3]),
                        format!("{:.2}", acc[4]),
                        format!("{:.2}", out.latency),
                    ]);
                }
                Err(e) => {
                    table.push_row([
                        format!("{rate:.2e}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("{e}"),
                    ]);
                }
            }
        }
        println!("{}", table.render());
    }
    println!(
        "as load approaches saturation the concentrator/dispatcher wait (W_d)\n\
         dominates the growth — the analytic restatement of the hotspots\n\
         experiment's measured bottleneck."
    );
}

/// Pairwise inter-cluster latency matrix `L_ex^{(i,j)}` (Eq. (32)) —
/// the quantity Eq. (35) averages away. Printed per cluster *class* (the
/// organizations have 3 classes), it shows how asymmetric the
/// cluster-of-clusters really is: small→small pairs pay the most because
/// both endpoints' ECN1 trees are shallow but their concentrators carry
/// proportionally more of their traffic.
pub fn pairwise(_opts: &RunOpts) {
    let opts = ModelOptions::default();
    for (name, spec, rate) in [
        ("N=1120", presets::org_1120(), 2e-4),
        ("N=544", presets::org_544(), 4e-4),
    ] {
        let wl = Workload {
            lambda_g: rate,
            ..presets::wl_m32_l256()
        };
        // One representative cluster per height class.
        let mut reps: Vec<usize> = Vec::new();
        for i in 0..spec.num_clusters() {
            if !reps
                .iter()
                .any(|&r| spec.clusters[r].n == spec.clusters[i].n)
            {
                reps.push(i);
            }
        }
        println!("## {name}, M=32, Lm=256, rate={rate:.1e} — L_ex by class pair");
        let mut header = vec!["src \\ dst".to_string()];
        header.extend(
            reps.iter()
                .map(|&j| format!("n={} (N={})", spec.clusters[j].n, spec.cluster_nodes(j))),
        );
        let mut table = Table::new(header);
        for &i in &reps {
            let mut row = vec![format!(
                "n={} (N={})",
                spec.clusters[i].n,
                spec.cluster_nodes(i)
            )];
            for &j in &reps {
                // Same class: pick another member of that class if it
                // exists (pair latency needs distinct clusters).
                let j_eff = if i == j {
                    (0..spec.num_clusters())
                        .find(|&x| x != i && spec.clusters[x].n == spec.clusters[j].n)
                } else {
                    Some(j)
                };
                row.push(match j_eff {
                    Some(j2) => pair_latency(&spec, &wl, i, j2, &opts)
                        .map(|p| {
                            format!("{:.1}", p.source_wait + p.network + p.tail + p.condis_wait)
                        })
                        .unwrap_or_else(|_| "sat".into()),
                    None => "-".into(),
                });
            }
            table.push_row(row);
        }
        println!("{}", table.render());
    }
    println!(
        "rows: source class; columns: destination class. The destination's\n\
         tree height sets the descent length, the pair's combined outgoing\n\
         traffic sets the concentrator load (Eq. 22-23): big<->big pairs\n\
         dominate the Eq. (35) average."
    );
}
