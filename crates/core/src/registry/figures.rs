//! The paper's latency-vs-load figures as registry entries.
//!
//! Figs. 3–6 are fully declarative: each is a [`Scenario`] whose JSON twin
//! is committed under `scenarios/` (the golden test pins the two
//! bit-identical). Fig. 7 compares four *different* system specs in one
//! chart, which the one-spec scenario shape cannot express, so it stays a
//! custom entry. Two extension entries demonstrate what the declarative
//! layer buys: the same figures under non-uniform traffic or replicated
//! per-point seeding, with no new execution code.

use super::RunOpts;
use crate::experiments::{figure_config, figure_scenario, run_fig7, Figure};
use crate::report::{render_figure, to_json};
use crate::runner::{PrecisionSpec, Scenario, Seeding};
use cocnet_sim::SimConfig;
use cocnet_workloads::Pattern;

/// The shared shape of Figs. 3–6: the figure's spec/workloads over a
/// 10-point grid, full §4 methodology, the historical seed 2006.
fn figure(fig: Figure) -> Scenario {
    let sim = SimConfig {
        seed: 2006,
        ..SimConfig::default()
    };
    figure_scenario(&figure_config(fig), &sim, 10)
}

/// Fig. 3: N=1120, M=32.
pub fn fig3() -> Scenario {
    figure(Figure::Fig3)
}

/// Fig. 4: N=1120, M=64.
pub fn fig4() -> Scenario {
    figure(Figure::Fig4)
}

/// Fig. 5: N=544, M=32.
pub fn fig5() -> Scenario {
    figure(Figure::Fig5)
}

/// Fig. 6: N=544, M=64.
pub fn fig6() -> Scenario {
    figure(Figure::Fig6)
}

/// Extension: Fig. 5 under cluster-local traffic (ψ = 0.8) — most
/// messages stay on the fast intra-cluster networks, so the simulation
/// series sits far below Fig. 5's. The analysis series is the *uniform*
/// model (a scenario's `run_model` is pattern-unaware); the gap between
/// the two is the point of the entry — the `nonuniform` custom entry
/// closes it with the generalized outgoing-probability profile.
pub fn fig5_local() -> Scenario {
    let mut scenario = figure(Figure::Fig5).with_pattern(Pattern::ClusterLocal { locality: 0.8 });
    scenario.name = "N=544, m=4, M=32, psi=0.8".to_string();
    scenario
}

/// Extension: Fig. 3 with statistically independent sweep points
/// ([`Seeding::PerPoint`]) and three replications per point.
pub fn fig3_perpoint() -> Scenario {
    let mut scenario = figure(Figure::Fig3)
        .with_seeding(Seeding::PerPoint)
        .with_replications(3);
    scenario.name = "N=1120, m=8, M=32 (3 reps, per-point seeds)".to_string();
    scenario
}

/// Extension: Fig. 5 under a 5 % relative-CI precision target. Instead of
/// a fixed replication count, every sweep point spends replications in
/// deterministic waves until its latency CI half-width is within 5 % of
/// the mean at 95 % confidence (cap 16), with per-point seeds so the
/// points are statistically independent and MSER-5 warm-up auditing on
/// every run. The CLI reports CI bounds and per-point replications spent.
pub fn fig5_precision() -> Scenario {
    let mut scenario = figure(Figure::Fig5)
        .with_seeding(Seeding::PerPoint)
        .with_precision(PrecisionSpec {
            rel_ci: Some(0.05),
            max_replications: 16,
            wave: 2,
            ..PrecisionSpec::default()
        });
    scenario.sim.audit_warmup = true;
    scenario.name = "N=544, m=4, M=32 (5% rel CI)".to_string();
    scenario
}

/// Fig. 7: the ICN2 bandwidth design-space study (analysis only; four
/// specs in one chart, hence custom).
pub fn fig7(opts: &RunOpts) {
    let series = run_fig7(&Default::default(), opts.points.unwrap_or(10));
    println!(
        "{}",
        render_figure("Fig. 7 — ICN2 bandwidth +20% (M=128, Lm=256)", &series)
    );
    if opts.json {
        println!("{}", to_json(&series));
    }
}
