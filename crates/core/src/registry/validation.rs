//! Accuracy studies: the paper's §4 model-vs-simulation validation, the
//! flat-baseline comparison it argues against, and the worm-vs-flit engine
//! cross-check.

use super::{scaled, small_spec_48, RunOpts};
use crate::runner::Scenario;
use cocnet_model::{evaluate, evaluate_baseline, ModelOptions, Workload};
use cocnet_sim::{run_simulation, run_simulation_flit, Coupling, SimConfig};
use cocnet_stats::Table;
use cocnet_workloads::{presets, Pattern};

/// Model-vs-simulation validation across the paper's configurations
/// (the §4 accuracy claim: 4–8 % error at light load).
///
/// Prints, per traffic rate: the model's predicted mean latency, the
/// simulated mean, the relative error, and the same split into intra- and
/// inter-cluster populations. The simulation points run concurrently
/// through the unified `Scenario` runner.
pub fn validation(opts: &RunOpts) {
    let model_opts = ModelOptions::default();
    let cfg = scaled(
        &SimConfig {
            warmup: 2_000,
            measured: 20_000,
            drain: 2_000,
            seed: 42,
            ..SimConfig::default()
        },
        opts,
    );
    for (name, spec, wl, rates) in [
        (
            "N=1120 M=32 Lm=256",
            presets::org_1120(),
            presets::wl_m32_l256(),
            vec![5e-5, 1e-4, 2e-4, 3e-4],
        ),
        (
            "N=544 M=32 Lm=256",
            presets::org_544(),
            presets::wl_m32_l256(),
            vec![1e-4, 2e-4, 4e-4, 6e-4],
        ),
    ] {
        println!("--- {name}");
        println!(
            "{:>10} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
            "rate",
            "model",
            "sim",
            "err%",
            "model-in",
            "sim-in",
            "err%",
            "model-ex",
            "sim-ex",
            "err%"
        );
        let scenario = Scenario::new(name, spec.clone())
            .with_workload("Lm=256", wl)
            .with_rates(rates)
            .with_sim(cfg.clone());
        let points = scenario.run_sim_detailed().remove(0);
        for point in points {
            let rate = point.rate;
            let sim = point.first();
            let w = Workload {
                lambda_g: rate,
                ..wl
            };
            match evaluate(&spec, &w, &model_opts) {
                Ok(out) => {
                    // Population-weighted model means for the intra/inter splits.
                    let n = spec.total_nodes() as f64;
                    let mut w_in = 0.0;
                    let mut w_ex = 0.0;
                    let mut m_in = 0.0;
                    let mut m_ex = 0.0;
                    for c in &out.per_cluster {
                        let share = spec.cluster_nodes(c.cluster) as f64 / n;
                        let u = c.outgoing_probability;
                        w_in += share * (1.0 - u);
                        w_ex += share * u;
                        m_in += share * (1.0 - u) * c.intra.total();
                        m_ex += share * u * c.inter.total();
                    }
                    m_in /= w_in;
                    m_ex /= w_ex;
                    let err = |m: f64, s: f64| (m - s) / s * 100.0;
                    println!(
                        "{rate:>10.2e} {:>9.2} {:>9.2} {:>7.2} | {:>9.2} {:>9.2} {:>7.2} | {:>9.2} {:>9.2} {:>7.2}",
                        out.latency,
                        sim.latency.mean,
                        err(out.latency, sim.latency.mean),
                        m_in,
                        sim.intra.mean,
                        err(m_in, sim.intra.mean),
                        m_ex,
                        sim.inter.mean,
                        err(m_ex, sim.inter.mean),
                    );
                }
                Err(e) => println!("{rate:>10.2e} model saturated: {e}"),
            }
        }
    }
}

/// Baseline comparison: the flat homogeneous queueing model (the prior art
/// the paper positions against, refs \[11\]–\[14\]) vs the paper's
/// hierarchical heterogeneous model vs simulation.
pub fn baseline(opts: &RunOpts) {
    let model_opts = ModelOptions::default();
    let cfg = scaled(
        &SimConfig {
            warmup: 2_000,
            measured: 20_000,
            drain: 2_000,
            seed: 12,
            ..SimConfig::default()
        },
        opts,
    );
    for (name, spec, rates) in [
        ("N=1120 (Table 1)", presets::org_1120(), [1e-4, 2e-4, 3e-4]),
        ("N=544 (Table 1)", presets::org_544(), [2e-4, 4e-4, 6e-4]),
    ] {
        println!("## {name}, M=32, Lm=256");
        let mut table = Table::new([
            "rate",
            "flat baseline",
            "hierarchical model",
            "simulation",
            "baseline err%",
            "model err%",
        ]);
        let scenario = Scenario::new(name, spec.clone())
            .with_workload("Lm=256", presets::wl_m32_l256())
            .with_rates(rates.to_vec())
            .with_sim(cfg.clone());
        let points = scenario.run_sim_detailed().remove(0);
        for point in points {
            let rate = point.rate;
            let wl = Workload {
                lambda_g: rate,
                ..presets::wl_m32_l256()
            };
            let flat = evaluate_baseline(&spec, &wl, &model_opts)
                .map(|b| b.latency)
                .unwrap_or(f64::NAN);
            let model = evaluate(&spec, &wl, &model_opts)
                .map(|o| o.latency)
                .unwrap_or(f64::NAN);
            let s = point.first().latency.mean;
            table.push_row([
                format!("{rate:.1e}"),
                format!("{flat:.2}"),
                format!("{model:.2}"),
                format!("{s:.2}"),
                format!("{:+.1}", (flat - s) / s * 100.0),
                format!("{:+.1}", (model - s) / s * 100.0),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "the flat homogeneous baseline (prior art) misses the ECN1/ICN2\n\
         hierarchy and lands at a fraction of the observed latency; the\n\
         paper's heterogeneous model closes most of that gap."
    );
}

/// Cross-validation experiment: worm engine vs flit-level reference engine
/// over a load sweep (store-and-forward boundaries on both so the
/// comparison isolates the worm engine's within-segment approximation).
/// Both engines collect exact percentiles, so the comparison covers the
/// median as well as the mean — a mean can agree by cancellation while the
/// distributions diverge.
///
/// Deliberately **not** parallelised over the runner: the final column is a
/// wall-clock cost comparison between the two engines, and concurrent
/// sibling simulations would contaminate each run's timing with scheduler
/// contention. Each engine pair runs alone, back to back.
pub fn engine_agreement(opts: &RunOpts) {
    let spec = small_spec_48();
    let cfg = scaled(
        &SimConfig {
            warmup: 1_000,
            measured: 10_000,
            drain: 1_000,
            seed: 77,
            coupling: Coupling::StoreAndForward,
            collect_percentiles: true,
            ..SimConfig::default()
        },
        opts,
    );
    println!("## worm engine vs flit-level reference (N=48, M=32, Lm=256)");
    let mut table = Table::new([
        "rate",
        "worm",
        "flit",
        "gap%",
        "worm p50",
        "flit p50",
        "p50 gap%",
        "worm events/flit events",
    ]);
    for rate in [5e-5, 2e-4, 5e-4, 1e-3, 1.5e-3] {
        let wl = Workload::new(rate, 32, 256.0).unwrap();
        let t0 = std::time::Instant::now();
        let worm = run_simulation(&spec, &wl, Pattern::Uniform, &cfg);
        let t_worm = t0.elapsed();
        let t1 = std::time::Instant::now();
        let flit = run_simulation_flit(&spec, &wl, Pattern::Uniform, &cfg);
        let t_flit = t1.elapsed();
        let gap = (worm.latency.mean - flit.latency.mean) / flit.latency.mean * 100.0;
        let (worm_p50, _, _) = worm.percentiles.expect("percentiles collected");
        let (flit_p50, _, _) = flit.percentiles.expect("percentiles collected");
        let p50_gap = (worm_p50 - flit_p50) / flit_p50 * 100.0;
        table.push_row([
            format!("{rate:.2e}"),
            format!("{:.2}", worm.latency.mean),
            format!("{:.2}", flit.latency.mean),
            format!("{gap:+.2}"),
            format!("{worm_p50:.2}"),
            format!("{flit_p50:.2}"),
            format!("{p50_gap:+.2}"),
            format!("{:.0?} vs {:.0?}", t_worm, t_flit),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the worm engine's message-level drain approximation tracks the\n\
         flit-exact reference while processing ~M x fewer events."
    );
}
