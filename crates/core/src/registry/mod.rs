//! The scenario registry: every figure, table, ablation and extension
//! experiment of this repository, reified as a named entry behind one
//! uniform interface.
//!
//! Before this module existed each experiment was a hand-coded binary
//! under `crates/bench/src/bin/`; adding a scenario meant recompiling the
//! workspace. The registry splits every experiment into its two real
//! parts:
//!
//! * **what to run** — a declarative [`Scenario`] (pure data, JSON-round-
//!   trippable; the committed twins live under `scenarios/`), or, for the
//!   studies whose sweep axis is not a rate grid (coupling modes, buffer
//!   depth, burstiness…), a parameterised run function;
//! * **how to present it** — the unified output writer in
//!   [`crate::report`] plus each entry's renderer.
//!
//! The `cocnet` CLI exposes the registry as `list` / `describe <name>` /
//! `run <name|path>`, and every former bench binary is now a one-line
//! wrapper over [`bin_main`]. Entirely new latency-vs-load scenarios need
//! no Rust at all: author a JSON file and `cocnet run path/to/file.json`.

pub mod ablations;
pub mod diagnostics;
pub mod extensions;
pub mod figures;
pub mod perf;
pub mod scale;
pub mod tables;
pub mod validation;

use crate::report::{
    render_figure, render_figure_ci, render_machine, render_machine_ci, to_json, to_json_ci,
    OutputFormat,
};
use crate::runner::Scenario;
use cocnet_sim::{InternMode, SchedulerKind, ShardMode, SimConfig};
use cocnet_topology::{ClusterSpec, SystemSpec};
use cocnet_workloads::presets;

/// Paper-facing grouping of registry entries (drives `cocnet list`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// The paper's latency-vs-load figures (Figs. 3–7).
    Figure,
    /// The paper's parameter tables (Tables 1–2).
    Table,
    /// Model-vs-simulation accuracy studies.
    Validation,
    /// Ablations of individual model/simulator mechanisms.
    Ablation,
    /// Beyond-the-paper extension experiments (§5 future work).
    Extension,
    /// Single-run diagnostics and model decompositions.
    Diagnostic,
    /// Performance measurement of the simulator itself.
    Perf,
}

impl std::fmt::Display for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Group::Figure => "figure",
            Group::Table => "table",
            Group::Validation => "validation",
            Group::Ablation => "ablation",
            Group::Extension => "extension",
            Group::Diagnostic => "diagnostic",
            Group::Perf => "perf",
        })
    }
}

/// Options shared by `cocnet run` and every thin bench binary. Each flag
/// is honoured where it makes sense for the entry being run; entries
/// ignore flags that cannot apply to them (e.g. `--points` on a table).
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// Scaled-down simulation populations for a fast smoke run.
    pub quick: bool,
    /// Run rate sweeps on the runner's serial reference path.
    pub serial: bool,
    /// Also print the series as JSON after the human-readable output.
    pub json: bool,
    /// Skip the simulation series (analysis only).
    pub no_sim: bool,
    /// Override the number of x-axis points.
    pub points: Option<usize>,
    /// Override the per-point replication count.
    pub replications: Option<usize>,
    /// Relative CI half-width target: switches a declarative scenario to
    /// adaptive replication control (or overrides its `precision.rel_ci`).
    pub rel_ci: Option<f64>,
    /// Override the adaptive replication cap (`precision.max_replications`).
    pub max_replications: Option<usize>,
    /// Emit *only* machine-readable output in this format.
    pub out: Option<OutputFormat>,
    /// Traffic rate override for single-run diagnostics
    /// (`hotspots`, `utilization`).
    pub rate: Option<f64>,
    /// Wall-clock repetitions per case for `bench_snapshot`.
    pub reps: Option<usize>,
    /// Output path override for `bench_snapshot`.
    pub out_file: Option<String>,
    /// Future-event-list backend override (`--scheduler heap|calendar`):
    /// applied to the simulation config wherever one is run. Never
    /// changes results — both backends pop in the identical order.
    pub scheduler: Option<SchedulerKind>,
    /// Intra-run sharding override (`--shards off|auto|<k>`): partitions
    /// the worm event loop by cluster with conservative lookahead sync.
    /// Never changes results — sharded runs are bit-identical to serial.
    pub shards: Option<ShardMode>,
    /// Baseline trajectory path for `perf_gate` (default `BENCH_sim.json`).
    pub baseline: Option<String>,
    /// Relative events/sec regression tolerance for `perf_gate`
    /// (default 0.30 = fail on >30% slowdown).
    pub threshold: Option<f64>,
    /// Measurement date (`YYYY-MM-DD`) stamped into `bench_snapshot`
    /// entries — pass `--stamp $(date -u +%F)` (or let CI do it) so the
    /// committed trajectory never records a `null` date.
    pub stamp: Option<String>,
    /// Static fault injection: fail this fraction of links (drawn
    /// deterministically from the schedule's `fault_seed`) in every
    /// simulation the entry runs (`--fail-links 0.1`).
    pub fail_links: Option<f64>,
    /// Route-interning mode override (`--interning classed|eager`):
    /// classed (the default) materializes routes lazily per equivalence
    /// class; eager is the all-pairs golden oracle (≤ 65535 nodes).
    /// Never changes results — only build time and resident bytes.
    pub interning: Option<InternMode>,
}

impl RunOpts {
    /// Parses a flag list. Unknown flags are an error — a typo silently
    /// ignored is a benchmark silently run with the wrong parameters.
    pub fn parse(args: &[String]) -> Result<RunOpts, String> {
        let mut opts = RunOpts::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--serial" => opts.serial = true,
                "--json" => opts.json = true,
                "--no-sim" => opts.no_sim = true,
                "--points" => {
                    opts.points = Some(parse_num(&take("--points", &mut it)?, "--points")?)
                }
                "--replications" => {
                    opts.replications = Some(parse_num(
                        &take("--replications", &mut it)?,
                        "--replications",
                    )?)
                }
                "--rel-ci" => {
                    opts.rel_ci = Some(parse_num(&take("--rel-ci", &mut it)?, "--rel-ci")?)
                }
                "--max-replications" => {
                    opts.max_replications = Some(parse_num(
                        &take("--max-replications", &mut it)?,
                        "--max-replications",
                    )?)
                }
                "--out" => opts.out = Some(take("--out", &mut it)?.parse()?),
                "--rate" => opts.rate = Some(parse_num(&take("--rate", &mut it)?, "--rate")?),
                "--reps" => opts.reps = Some(parse_num(&take("--reps", &mut it)?, "--reps")?),
                "--out-file" => opts.out_file = Some(take("--out-file", &mut it)?),
                "--scheduler" => {
                    opts.scheduler = Some(take("--scheduler", &mut it)?.parse()?);
                }
                "--shards" => {
                    opts.shards = Some(take("--shards", &mut it)?.parse()?);
                }
                "--baseline" => opts.baseline = Some(take("--baseline", &mut it)?),
                "--threshold" => {
                    opts.threshold = Some(parse_num(&take("--threshold", &mut it)?, "--threshold")?)
                }
                "--stamp" => opts.stamp = Some(take("--stamp", &mut it)?),
                "--fail-links" => {
                    opts.fail_links =
                        Some(parse_num(&take("--fail-links", &mut it)?, "--fail-links")?)
                }
                "--interning" => {
                    opts.interning = Some(take("--interning", &mut it)?.parse()?);
                }
                other => {
                    return Err(format!(
                        "unknown argument {other:?} (flags: --quick --serial --json --no-sim \
                         --points N --replications N --rel-ci X --max-replications N \
                         --out json|csv --rate λ --reps N --out-file PATH \
                         --scheduler heap|calendar --shards off|auto|K --baseline PATH \
                         --threshold X --stamp DATE --fail-links F \
                         --interning classed|eager)"
                    ))
                }
            }
        }
        // Zero overrides would silently degenerate list-grid scenarios
        // (a range grid at least fails validation); reject them here so
        // both grid kinds behave the same.
        if opts.points == Some(0) {
            return Err("--points must be >= 1".into());
        }
        if opts.replications == Some(0) {
            return Err("--replications must be >= 1".into());
        }
        if let Some(rel) = opts.rel_ci {
            if !(rel.is_finite() && rel > 0.0) {
                return Err(format!("--rel-ci must be finite and > 0 (got {rel})"));
            }
        }
        if opts.max_replications == Some(0) {
            return Err("--max-replications must be >= 1".into());
        }
        if let Some(threshold) = opts.threshold {
            // A relative slowdown is bounded by -100%, so a threshold of
            // 1.0 or more can never trip — a silently vacuous gate.
            if !(threshold.is_finite() && threshold > 0.0 && threshold < 1.0) {
                return Err(format!(
                    "--threshold is a regression fraction in (0, 1), e.g. 0.3 \
                     for 30% (got {threshold})"
                ));
            }
        }
        if let Some(f) = opts.fail_links {
            if !(f.is_finite() && (0.0..=1.0).contains(&f)) {
                return Err(format!(
                    "--fail-links is a link fraction in [0, 1] (got {f})"
                ));
            }
        }
        if let Some(stamp) = &opts.stamp {
            let bytes = stamp.as_bytes();
            let shaped = bytes.len() == 10
                && bytes.iter().enumerate().all(|(i, b)| match i {
                    4 | 7 => *b == b'-',
                    _ => b.is_ascii_digit(),
                });
            if !shaped {
                return Err(format!("--stamp must be YYYY-MM-DD (got {stamp:?})"));
            }
        }
        Ok(opts)
    }

    /// The flag transformation of a simulation config: `--quick` caps the
    /// population sizes at the historical 2k/20k/2k smoke values and
    /// `--scheduler` selects the future-event-list backend; everything
    /// else (seed, coupling…) stays untouched.
    pub fn sim_config(&self, base: &SimConfig) -> SimConfig {
        let mut cfg = if self.quick {
            quick_sim(base)
        } else {
            base.clone()
        };
        if let Some(scheduler) = self.scheduler {
            cfg.scheduler = scheduler;
        }
        if let Some(shards) = self.shards {
            cfg.shards = shards;
        }
        if let Some(fraction) = self.fail_links {
            cfg.faults.link_fraction = fraction;
        }
        if let Some(interning) = self.interning {
            cfg.interning = interning;
        }
        cfg
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse {flag} value {s:?}"))
}

/// Consumes one flag value from the argument iterator.
fn take<'a>(flag: &str, it: &mut impl Iterator<Item = &'a String>) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("flag {flag} needs a value"))
}

/// `--quick`: populations *capped* at the 2k/20k/2k smoke sizes (the
/// historical quick figures, 1/5 of the paper's 10k/100k/10k). Scenarios
/// already smaller than the cap are left alone — quick never makes a run
/// larger.
pub fn quick_sim(base: &SimConfig) -> SimConfig {
    SimConfig {
        warmup: base.warmup.min(2_000),
        measured: base.measured.min(20_000),
        drain: base.drain.min(2_000),
        ..base.clone()
    }
}

/// Scales a custom experiment's fixed simulation config down 10× under
/// `--quick` (the custom entries already run reduced populations by
/// default; `--quick` makes them CI-smoke cheap) and applies the
/// `--scheduler` backend override.
pub fn scaled(base: &SimConfig, opts: &RunOpts) -> SimConfig {
    let mut cfg = if opts.quick {
        SimConfig {
            warmup: (base.warmup / 10).max(1),
            measured: (base.measured / 10).max(1),
            drain: (base.drain / 10).max(1),
            ..base.clone()
        }
    } else {
        base.clone()
    };
    if let Some(scheduler) = opts.scheduler {
        cfg.scheduler = scheduler;
    }
    if let Some(shards) = opts.shards {
        cfg.shards = shards;
    }
    if let Some(fraction) = opts.fail_links {
        cfg.faults.link_fraction = fraction;
    }
    if let Some(interning) = opts.interning {
        cfg.interning = interning;
    }
    cfg
}

/// The 48-node benchmark system shared by `engine_agreement`,
/// `buffer_depth` and `bench_snapshot`: four m=4 clusters (two of 8
/// nodes, two of 16) on the Table 2 networks — big enough to exercise
/// every network tier, small enough that a sweep costs seconds.
pub fn small_spec_48() -> SystemSpec {
    let cluster = |n| ClusterSpec {
        n,
        icn1: presets::net1(),
        ecn1: presets::net2(),
        topology: Default::default(),
    };
    SystemSpec::new(
        4,
        vec![cluster(2), cluster(2), cluster(3), cluster(3)],
        presets::net1(),
    )
    .expect("static spec is valid")
}

/// How a registry entry executes.
pub enum Kind {
    /// The entry *is* a [`Scenario`]: pure data run by [`run_scenario`].
    /// Its JSON twin is committed under `scenarios/<name>.json`.
    Declarative(fn() -> Scenario),
    /// A code-backed experiment whose sweep axis or report does not fit
    /// the generic latency-vs-load shape.
    Custom(fn(&RunOpts)),
}

/// One named experiment.
pub struct Entry {
    /// Registry key (`cocnet run <name>`; also the bench binary's name).
    pub name: &'static str,
    /// Grouping for `cocnet list`.
    pub group: Group,
    /// Which paper artefact the entry reproduces (`-` for extensions).
    pub paper_ref: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Execution behind the name.
    pub kind: Kind,
}

impl Entry {
    /// The declarative scenario behind the entry, if it has one.
    pub fn scenario(&self) -> Option<Scenario> {
        match self.kind {
            Kind::Declarative(build) => Some(build()),
            Kind::Custom(_) => None,
        }
    }
}

/// Every registry entry, in `cocnet list` order.
pub static ENTRIES: &[Entry] = &[
    Entry {
        name: "fig3",
        group: Group::Figure,
        paper_ref: "Fig. 3",
        summary: "N=1120, M=32: latency vs load, analysis + simulation, Lm=256/512",
        kind: Kind::Declarative(figures::fig3),
    },
    Entry {
        name: "fig4",
        group: Group::Figure,
        paper_ref: "Fig. 4",
        summary: "N=1120, M=64: latency vs load, analysis + simulation, Lm=256/512",
        kind: Kind::Declarative(figures::fig4),
    },
    Entry {
        name: "fig5",
        group: Group::Figure,
        paper_ref: "Fig. 5",
        summary: "N=544, M=32: latency vs load, analysis + simulation, Lm=256/512",
        kind: Kind::Declarative(figures::fig5),
    },
    Entry {
        name: "fig6",
        group: Group::Figure,
        paper_ref: "Fig. 6",
        summary: "N=544, M=64: latency vs load, analysis + simulation, Lm=256/512",
        kind: Kind::Declarative(figures::fig6),
    },
    Entry {
        name: "fig7",
        group: Group::Figure,
        paper_ref: "Fig. 7",
        summary: "ICN2 bandwidth +20% design-space study (analysis only)",
        kind: Kind::Custom(figures::fig7),
    },
    Entry {
        name: "fig5_local",
        group: Group::Figure,
        paper_ref: "-",
        summary: "Fig. 5 under cluster-local traffic (psi=0.8) — declarative extension",
        kind: Kind::Declarative(figures::fig5_local),
    },
    Entry {
        name: "fig3_perpoint",
        group: Group::Figure,
        paper_ref: "-",
        summary: "Fig. 3 with per-point seeds and 3 replications — declarative extension",
        kind: Kind::Declarative(figures::fig3_perpoint),
    },
    Entry {
        name: "fig5_precision",
        group: Group::Figure,
        paper_ref: "-",
        summary: "Fig. 5 with a 5% relative-CI target — adaptive replications per point",
        kind: Kind::Declarative(figures::fig5_precision),
    },
    Entry {
        name: "table1",
        group: Group::Table,
        paper_ref: "Table 1",
        summary: "the two validated system organizations, node algebra checked",
        kind: Kind::Custom(tables::table1),
    },
    Entry {
        name: "table2",
        group: Group::Table,
        paper_ref: "Table 2",
        summary: "network characteristics + derived per-flit service times",
        kind: Kind::Custom(tables::table2),
    },
    Entry {
        name: "validation",
        group: Group::Validation,
        paper_ref: "§4",
        summary: "model vs simulation error across rates, intra/inter split",
        kind: Kind::Custom(validation::validation),
    },
    Entry {
        name: "baseline",
        group: Group::Validation,
        paper_ref: "§1",
        summary: "flat homogeneous queueing baseline vs hierarchical model vs sim",
        kind: Kind::Custom(validation::baseline),
    },
    Entry {
        name: "engine_agreement",
        group: Group::Validation,
        paper_ref: "§4",
        summary: "worm engine vs flit-level reference (deliberately serial)",
        kind: Kind::Custom(validation::engine_agreement),
    },
    Entry {
        name: "ablation_relax",
        group: Group::Ablation,
        paper_ref: "Eqs. 27-28",
        summary: "the relaxing factor delta: model with/without vs simulation",
        kind: Kind::Custom(ablations::ablation_relax),
    },
    Entry {
        name: "ablation_routing",
        group: Group::Ablation,
        paper_ref: "Eq. 10",
        summary: "Up*/Down* ascent policy under skewed destination mass",
        kind: Kind::Custom(ablations::ablation_routing),
    },
    Entry {
        name: "ablation_variance",
        group: Group::Ablation,
        paper_ref: "Eqs. 17/36",
        summary: "Draper-Ghosh service-variance approximation vs sigma²=0",
        kind: Kind::Custom(ablations::ablation_variance),
    },
    Entry {
        name: "coupling_modes",
        group: Group::Ablation,
        paper_ref: "Eq. 20 vs 36-37",
        summary: "concentrator coupling: cut-through / virtual-ct / store&forward",
        kind: Kind::Custom(ablations::coupling_modes),
    },
    Entry {
        name: "buffer_depth",
        group: Group::Extension,
        paper_ref: "assumption 6",
        summary: "flit-buffer-depth sweep in the flit-level engine",
        kind: Kind::Custom(extensions::buffer_depth),
    },
    Entry {
        name: "bursty",
        group: Group::Extension,
        paper_ref: "§5",
        summary: "interrupted-Poisson traffic at fixed mean rate (duty sweep)",
        kind: Kind::Custom(extensions::bursty),
    },
    Entry {
        name: "nonuniform",
        group: Group::Extension,
        paper_ref: "§5",
        summary: "cluster-locality sweep: generalized model vs simulation",
        kind: Kind::Custom(extensions::nonuniform),
    },
    Entry {
        name: "scaling",
        group: Group::Extension,
        paper_ref: "-",
        summary: "cluster-count scaling: latency and saturation vs system size",
        kind: Kind::Custom(extensions::scaling),
    },
    Entry {
        name: "degradation",
        group: Group::Extension,
        paper_ref: "-",
        summary: "graceful degradation: latency and delivered fraction vs failed-link fraction",
        kind: Kind::Custom(extensions::degradation),
    },
    Entry {
        name: "torus_sweep",
        group: Group::Extension,
        paper_ref: "-",
        summary: "4x 4x4-torus clusters under an m=4 ICN2 tree: sim-only latency vs load",
        kind: Kind::Declarative(extensions::torus_sweep),
    },
    Entry {
        name: "hotspots",
        group: Group::Diagnostic,
        paper_ref: "§4",
        summary: "hottest channels of one run (ICN2 bottleneck evidence)",
        kind: Kind::Custom(diagnostics::hotspots),
    },
    Entry {
        name: "utilization",
        group: Group::Diagnostic,
        paper_ref: "§4",
        summary: "predicted vs measured channel utilisation per network class",
        kind: Kind::Custom(diagnostics::utilization),
    },
    Entry {
        name: "breakdown",
        group: Group::Diagnostic,
        paper_ref: "Eqs. 4/39",
        summary: "latency decomposition: where the time goes as load grows",
        kind: Kind::Custom(diagnostics::breakdown),
    },
    Entry {
        name: "pairwise",
        group: Group::Diagnostic,
        paper_ref: "Eq. 32",
        summary: "pairwise inter-cluster latency matrix by cluster class",
        kind: Kind::Custom(diagnostics::pairwise),
    },
    Entry {
        name: "org_scale",
        group: Group::Perf,
        paper_ref: "-",
        summary:
            "route-interning scale sweep: build ms / table bytes / events/sec, 1k to 10^6 endpoints",
        kind: Kind::Custom(scale::org_scale),
    },
    Entry {
        name: "bench_snapshot",
        group: Group::Perf,
        paper_ref: "-",
        summary: "events/sec snapshot appended to the BENCH_sim.json trajectory",
        kind: Kind::Custom(perf::bench_snapshot),
    },
    Entry {
        name: "perf_gate",
        group: Group::Perf,
        paper_ref: "-",
        summary: "CI regression gate: quick snapshot vs the last full BENCH_sim.json entry",
        kind: Kind::Custom(perf::perf_gate),
    },
];

/// All entries, in listing order.
pub fn all() -> &'static [Entry] {
    ENTRIES
}

/// Looks an entry up by its registry key.
pub fn find(name: &str) -> Option<&'static Entry> {
    ENTRIES.iter().find(|e| e.name == name)
}

/// Executes one entry under the given options.
pub fn run(entry: &Entry, opts: &RunOpts) -> Result<(), String> {
    match entry.kind {
        Kind::Declarative(build) => run_scenario(&build(), opts),
        Kind::Custom(f) => {
            // Machine output is only defined for the generic series shape;
            // succeeding while printing a human table would hand a parser
            // garbage with exit code 0.
            if opts.out.is_some() {
                return Err(format!(
                    "{} is a custom entry: --out json|csv applies only to declarative \
                     scenarios (use --json where the entry supports it)",
                    entry.name
                ));
            }
            // Likewise adaptive replication control: a silently ignored
            // precision flag is a benchmark run with the wrong statistics.
            if opts.rel_ci.is_some() || opts.max_replications.is_some() {
                return Err(format!(
                    "{} is a custom entry: --rel-ci/--max-replications apply only to \
                     declarative scenarios",
                    entry.name
                ));
            }
            f(opts);
            Ok(())
        }
    }
}

/// The analytical series of a scenario, or an empty set when the spec uses
/// a topology backend outside the paper's model coverage (the caveat goes
/// to stderr so machine output stays parseable). The simulation series are
/// unaffected: every backend simulates; only the equations are tree-only.
fn model_series(scenario: &Scenario) -> Vec<cocnet_stats::Series> {
    match cocnet_model::coverage(&scenario.spec) {
        cocnet_model::ModelCoverage::Full => scenario.run_model(),
        cocnet_model::ModelCoverage::SimOnly { reason } => {
            eprintln!("[sim-only scenario: {reason}; skipping the analytical series]");
            Vec::new()
        }
    }
}

/// Executes a declarative scenario: the analytical series, the simulation
/// series over the rayon pool (unless `--no-sim`), and the unified output
/// writer. This is the single execution path behind every `Declarative`
/// entry *and* every user-authored scenario file.
pub fn run_scenario(scenario: &Scenario, opts: &RunOpts) -> Result<(), String> {
    let mut scenario = scenario.clone();
    if let Some(points) = opts.points {
        match &scenario.rates {
            crate::runner::RateGrid::Range { .. } => {
                scenario.rates = scenario.rates.with_steps(points);
            }
            // An explicit list has no generating rule — re-gridding it
            // would silently run a different sweep than the file says.
            crate::runner::RateGrid::List(rates) if rates.len() != points => {
                return Err(format!(
                    "scenario {:?}: --points {points} cannot re-grid an explicit \
                     {}-rate list; edit the file or use a {{start, stop, steps}} range",
                    scenario.name,
                    rates.len()
                ));
            }
            crate::runner::RateGrid::List(_) => {}
        }
    }
    if let Some(rel) = opts.rel_ci {
        let mut precision = scenario.precision.unwrap_or_default();
        precision.rel_ci = Some(rel);
        scenario.precision = Some(precision);
    }
    if let Some(cap) = opts.max_replications {
        match &mut scenario.precision {
            Some(precision) => precision.max_replications = cap,
            None => {
                return Err(
                    "--max-replications needs a precision target: pass --rel-ci or declare \
                     a `precision` field in the scenario"
                        .into(),
                )
            }
        }
    }
    if opts.replications.is_some() && scenario.precision.is_some() {
        return Err(format!(
            "scenario {:?}: --replications fixes the replication count, which conflicts \
             with adaptive precision control; use --max-replications to bound the spend",
            scenario.name
        ));
    }
    if let Some(replications) = opts.replications {
        scenario.replications = replications;
    }
    scenario.sim = opts.sim_config(&scenario.sim);
    scenario
        .validate()
        .map_err(|e| format!("scenario {:?}: {e}", scenario.name))?;

    // Precision-driven scenarios take the adaptive path: CI-bearing
    // simulation series and writers. Fixed-replication scenarios keep the
    // historical (byte-identical) output below.
    if scenario.precision.is_some() && !opts.no_sim {
        return run_scenario_adaptive(&scenario, opts);
    }

    let mut series = model_series(&scenario);
    let mut detailed = Vec::new();
    if !opts.no_sim {
        let start = std::time::Instant::now();
        detailed = if opts.serial {
            scenario.run_sim_detailed_serial()
        } else {
            scenario.run_sim_detailed()
        };
        let jobs = scenario.workloads.len() * scenario.rates.len() * scenario.replications;
        eprintln!(
            "[sweep: {jobs} simulations in {:.2?} ({})]",
            start.elapsed(),
            if opts.serial {
                "serial".to_string()
            } else {
                format!("{} threads", rayon::current_num_threads())
            },
        );
        series.extend(scenario.sim_series(&detailed));
    }
    if let Some(format) = opts.out {
        print!("{}", render_machine(&series, format));
        return Ok(());
    }
    println!("{}", render_figure(&scenario.name, &series));
    println!("{}", cocnet_stats::scatter(&series, 64, 20));
    if !scenario.sim.faults.is_inert() && !detailed.is_empty() {
        println!("{}", fault_report(&scenario, &detailed));
    }
    if opts.json {
        println!("{}", to_json(&series));
    }
    Ok(())
}

/// Fault-accounting table for a faulted scenario run: one row per
/// (workload, rate) point with the delivered fraction and the
/// drop/retry/write-off counters — the graceful-degradation view the
/// latency series alone cannot show (undelivered messages have no
/// latency).
fn fault_report(scenario: &Scenario, detailed: &[Vec<crate::runner::PointSim>]) -> String {
    let mut table = cocnet_stats::Table::new([
        "workload",
        "rate",
        "delivered frac",
        "dropped",
        "retransmits",
        "unreachable",
        "stop",
    ]);
    for (entry, points) in scenario.workloads.iter().zip(detailed) {
        for point in points {
            table.push_row([
                entry.label.clone(),
                format!("{:.3e}", point.rate),
                format!("{:.3}", point.delivered_fraction()),
                point.dropped_total().to_string(),
                point.retransmits_total().to_string(),
                point.unreachable_total().to_string(),
                point.first().stop.to_string(),
            ]);
        }
    }
    format!("fault accounting (per sweep point):\n{}", table.render())
}

/// The adaptive arm of [`run_scenario`]: waves of replications per point
/// until the precision target converges, then the CI-bearing writers.
fn run_scenario_adaptive(scenario: &Scenario, opts: &RunOpts) -> Result<(), String> {
    let analysis = model_series(scenario);
    let start = std::time::Instant::now();
    let detailed = if opts.serial {
        scenario.run_sim_adaptive_serial()
    } else {
        scenario.run_sim_adaptive()
    };
    let spent: usize = detailed
        .iter()
        .flatten()
        .map(|point| point.replications())
        .sum();
    let converged = detailed.iter().flatten().filter(|p| p.converged).count();
    let points = detailed.iter().map(Vec::len).sum::<usize>();
    eprintln!(
        "[adaptive sweep: {spent} simulations over {points} points ({converged} converged) \
         in {:.2?} ({})]",
        start.elapsed(),
        if opts.serial {
            "serial".to_string()
        } else {
            format!("{} threads", rayon::current_num_threads())
        },
    );
    let flagged: usize = detailed
        .iter()
        .flatten()
        .map(|point| point.warmup_flagged)
        .sum();
    if flagged > 0 {
        eprintln!(
            "[warning: the MSER-5 audit flagged {flagged} replication(s) whose transient \
             outlasted the configured warm-up — consider raising sim.warmup]"
        );
    }
    let simulation = scenario.adaptive_series(&detailed);
    if let Some(format) = opts.out {
        print!("{}", render_machine_ci(&analysis, &simulation, format));
        return Ok(());
    }
    println!(
        "{}",
        render_figure_ci(&scenario.name, &analysis, &simulation)
    );
    let mut scatter_series = analysis.clone();
    scatter_series.extend(simulation.iter().map(cocnet_stats::CiSeries::mean_series));
    println!("{}", cocnet_stats::scatter(&scatter_series, 64, 20));
    if opts.json {
        println!("{}", to_json_ci(&analysis, &simulation));
    }
    Ok(())
}

/// The entire `main` of a thin bench binary: parse flags, find the entry,
/// run it. Exit code 2 for usage errors, 1 for execution failures.
pub fn bin_main(name: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = RunOpts::parse(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let entry =
        find(name).unwrap_or_else(|| panic!("binary {name:?} has no registry entry — fix ENTRIES"));
    if let Err(e) = run(entry, &opts) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_find_works() {
        let mut seen = std::collections::HashSet::new();
        for entry in all() {
            assert!(seen.insert(entry.name), "duplicate entry {}", entry.name);
            assert!(std::ptr::eq(find(entry.name).unwrap(), entry));
        }
        assert!(find("no_such_experiment").is_none());
    }

    #[test]
    fn every_declarative_entry_validates() {
        for entry in all() {
            if let Some(scenario) = entry.scenario() {
                scenario
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            }
        }
    }

    #[test]
    fn run_opts_parse_and_reject() {
        let ok = RunOpts::parse(&["--quick".into(), "--points".into(), "6".into()]).unwrap();
        assert!(ok.quick);
        assert_eq!(ok.points, Some(6));
        assert!(RunOpts::parse(&["--pionts".into(), "6".into()]).is_err());
        assert!(RunOpts::parse(&["--points".into()]).is_err());
        assert!(RunOpts::parse(&["--out".into(), "yaml".into()]).is_err());
    }

    #[test]
    fn quick_scales_populations_only() {
        let base = SimConfig {
            seed: 99,
            ..SimConfig::default()
        };
        let q = quick_sim(&base);
        assert_eq!((q.warmup, q.measured, q.drain), (2_000, 20_000, 2_000));
        assert_eq!(q.seed, 99);
        // Quick never makes a run larger than its scenario asked for.
        let small = SimConfig {
            warmup: 200,
            measured: 2_000,
            drain: 200,
            ..SimConfig::default()
        };
        assert_eq!(quick_sim(&small), small);
        let quick = RunOpts {
            quick: true,
            ..RunOpts::default()
        };
        let s = scaled(&base, &quick);
        assert_eq!((s.warmup, s.measured, s.drain), (1_000, 10_000, 1_000));
        assert_eq!(scaled(&base, &RunOpts::default()), base);
    }

    #[test]
    fn scheduler_flag_threads_into_sim_configs() {
        let opts = RunOpts::parse(&["--scheduler".into(), "calendar".into()]).unwrap();
        assert_eq!(opts.scheduler, Some(SchedulerKind::Calendar));
        let base = SimConfig::default();
        assert_eq!(opts.sim_config(&base).scheduler, SchedulerKind::Calendar);
        assert_eq!(scaled(&base, &opts).scheduler, SchedulerKind::Calendar);
        // Everything else stays untouched, and no flag means no override.
        assert_eq!(opts.sim_config(&base).seed, base.seed);
        assert_eq!(
            RunOpts::default().sim_config(&base).scheduler,
            SchedulerKind::Heap
        );
        assert!(RunOpts::parse(&["--scheduler".into(), "ladder".into()]).is_err());
    }

    #[test]
    fn shards_flag_threads_into_sim_configs() {
        let opts = RunOpts::parse(&["--shards".into(), "auto".into()]).unwrap();
        assert_eq!(opts.shards, Some(ShardMode::Auto));
        let base = SimConfig::default();
        assert_eq!(opts.sim_config(&base).shards, ShardMode::Auto);
        assert_eq!(scaled(&base, &opts).shards, ShardMode::Auto);
        let k = RunOpts::parse(&["--shards".into(), "4".into()]).unwrap();
        assert_eq!(scaled(&base, &k).shards, ShardMode::N(4));
        // No flag means no override: serial stays the default engine.
        assert_eq!(RunOpts::default().sim_config(&base).shards, ShardMode::Off);
        assert!(RunOpts::parse(&["--shards".into(), "many".into()]).is_err());
    }

    #[test]
    fn gate_flags_validate_at_parse_time() {
        let ok = RunOpts::parse(&[
            "--baseline".into(),
            "BENCH_sim.json".into(),
            "--threshold".into(),
            "0.3".into(),
            "--stamp".into(),
            "2026-07-30".into(),
        ])
        .unwrap();
        assert_eq!(ok.baseline.as_deref(), Some("BENCH_sim.json"));
        assert_eq!(ok.threshold, Some(0.3));
        assert_eq!(ok.stamp.as_deref(), Some("2026-07-30"));
        assert!(RunOpts::parse(&["--threshold".into(), "0".into()]).is_err());
        assert!(RunOpts::parse(&["--threshold".into(), "nan".into()]).is_err());
        // A threshold >= 1.0 could never trip (slowdowns bottom out at
        // -100%) — reject the vacuous gate instead of running it.
        assert!(RunOpts::parse(&["--threshold".into(), "1.0".into()]).is_err());
        assert!(RunOpts::parse(&["--threshold".into(), "30".into()]).is_err());
        assert!(RunOpts::parse(&["--stamp".into(), "July 30".into()]).is_err());
        assert!(RunOpts::parse(&["--stamp".into(), "2026-7-30".into()]).is_err());
    }

    #[test]
    fn zero_overrides_rejected_at_parse_time() {
        assert!(RunOpts::parse(&["--points".into(), "0".into()]).is_err());
        assert!(RunOpts::parse(&["--replications".into(), "0".into()]).is_err());
    }
}
